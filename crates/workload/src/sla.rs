//! Service-level agreements and their evaluation.
//!
//! Performance objectives are "normally derived from a formal service level
//! agreement" and "described in averages or percentiles, such as the average
//! response time of transactions in an OLTP workload, or x% queries in a
//! workload complete in y time units or less". This module expresses those
//! objective forms — plus *request execution velocity* (the ratio of
//! expected execution time to total time in system) — and evaluates them
//! against measured samples.

use serde::{Deserialize, Serialize};
use wlm_dbsim::metrics::{percentile, summarize};

/// One performance objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerformanceObjective {
    /// Mean response time must not exceed `target_secs`.
    AvgResponseTime {
        /// Goal, seconds.
        target_secs: f64,
    },
    /// `percent`% of requests must complete within `target_secs`.
    Percentile {
        /// The x in "x% within y" (0–100).
        percent: f64,
        /// The y in "x% within y", seconds.
        target_secs: f64,
    },
    /// Mean execution velocity (expected execution time / actual time in
    /// system, in `(0, 1]`) must be at least `min_velocity`.
    Velocity {
        /// Goal velocity in `(0, 1]`.
        min_velocity: f64,
    },
    /// Completions per second must be at least `min_per_sec`.
    Throughput {
        /// Goal throughput.
        min_per_sec: f64,
    },
}

impl PerformanceObjective {
    /// Short description for reports.
    pub fn describe(&self) -> String {
        match self {
            PerformanceObjective::AvgResponseTime { target_secs } => {
                format!("avg response <= {target_secs}s")
            }
            PerformanceObjective::Percentile {
                percent,
                target_secs,
            } => format!("{percent}% within {target_secs}s"),
            PerformanceObjective::Velocity { min_velocity } => {
                format!("velocity >= {min_velocity}")
            }
            PerformanceObjective::Throughput { min_per_sec } => {
                format!("throughput >= {min_per_sec}/s")
            }
        }
    }
}

/// The SLA of one workload: a set of objectives. (Business importance lives
/// on the workload definition; the SLA holds only measurable goals.)
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceLevelAgreement {
    /// All objectives; the SLA is met when every one is.
    pub objectives: Vec<PerformanceObjective>,
}

impl ServiceLevelAgreement {
    /// An SLA with a single average-response-time goal.
    pub fn avg_response(target_secs: f64) -> Self {
        ServiceLevelAgreement {
            objectives: vec![PerformanceObjective::AvgResponseTime { target_secs }],
        }
    }

    /// An SLA with a single percentile goal.
    pub fn percentile(percent: f64, target_secs: f64) -> Self {
        ServiceLevelAgreement {
            objectives: vec![PerformanceObjective::Percentile {
                percent,
                target_secs,
            }],
        }
    }

    /// An SLA with a single velocity goal.
    pub fn velocity(min_velocity: f64) -> Self {
        ServiceLevelAgreement {
            objectives: vec![PerformanceObjective::Velocity { min_velocity }],
        }
    }

    /// A no-goal SLA (non-goal workloads: best effort).
    pub fn best_effort() -> Self {
        ServiceLevelAgreement::default()
    }

    /// Whether this SLA carries any objective.
    pub fn has_goals(&self) -> bool {
        !self.objectives.is_empty()
    }

    /// Evaluate the SLA against measurements.
    ///
    /// * `responses_secs` — response-time samples (arrival to completion);
    /// * `velocities` — per-request execution velocities, if velocity goals
    ///   are present (may be empty otherwise);
    /// * `elapsed_secs` — measurement-window length, for throughput goals.
    pub fn evaluate(
        &self,
        responses_secs: &[f64],
        velocities: &[f64],
        elapsed_secs: f64,
    ) -> SlaEvaluation {
        let mut sorted = responses_secs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let summary = summarize(responses_secs);
        let mut results = Vec::with_capacity(self.objectives.len());
        for obj in &self.objectives {
            let (met, measured) = match *obj {
                PerformanceObjective::AvgResponseTime { target_secs } => {
                    let measured = summary.mean;
                    (
                        !responses_secs.is_empty() && measured <= target_secs,
                        measured,
                    )
                }
                PerformanceObjective::Percentile {
                    percent,
                    target_secs,
                } => {
                    let measured = percentile(&sorted, percent);
                    (!sorted.is_empty() && measured <= target_secs, measured)
                }
                PerformanceObjective::Velocity { min_velocity } => {
                    if velocities.is_empty() {
                        (false, 0.0)
                    } else {
                        let mean = velocities.iter().sum::<f64>() / velocities.len() as f64;
                        (mean >= min_velocity, mean)
                    }
                }
                PerformanceObjective::Throughput { min_per_sec } => {
                    let measured = if elapsed_secs > 0.0 {
                        responses_secs.len() as f64 / elapsed_secs
                    } else {
                        0.0
                    };
                    (measured >= min_per_sec, measured)
                }
            };
            results.push(ObjectiveResult {
                objective: *obj,
                met,
                measured,
            });
        }
        SlaEvaluation { results }
    }
}

/// Measured outcome of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveResult {
    /// The objective evaluated.
    pub objective: PerformanceObjective,
    /// Whether it was met.
    pub met: bool,
    /// The measured value compared against the goal (seconds, velocity or
    /// per-second rate depending on the objective kind).
    pub measured: f64,
}

/// Outcome of evaluating a full SLA.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlaEvaluation {
    /// Per-objective outcomes.
    pub results: Vec<ObjectiveResult>,
}

impl SlaEvaluation {
    /// The SLA is met when every objective is (vacuously true for no-goal
    /// workloads).
    pub fn met(&self) -> bool {
        self.results.iter().all(|r| r.met)
    }
}

/// Request execution velocity: `expected execution time / actual time in
/// system`. Close to 1 means negligible delay; close to 0 means the request
/// spent most of its life waiting. The expected time comes from historical
/// observations in the system's steady state.
pub fn velocity(expected_exec_secs: f64, actual_total_secs: f64) -> f64 {
    if actual_total_secs <= 0.0 {
        return 1.0;
    }
    (expected_exec_secs / actual_total_secs).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_response_objective() {
        let sla = ServiceLevelAgreement::avg_response(1.0);
        assert!(sla.evaluate(&[0.5, 0.9, 1.1], &[], 10.0).met());
        assert!(!sla.evaluate(&[2.0, 2.0], &[], 10.0).met());
        // No samples: a goal with nothing measured is not met.
        assert!(!sla.evaluate(&[], &[], 10.0).met());
    }

    #[test]
    fn percentile_objective() {
        let sla = ServiceLevelAgreement::percentile(90.0, 1.0);
        let mostly_fast: Vec<f64> = (0..100).map(|i| if i < 95 { 0.5 } else { 5.0 }).collect();
        assert!(sla.evaluate(&mostly_fast, &[], 10.0).met());
        let mostly_slow: Vec<f64> = (0..100).map(|i| if i < 50 { 0.5 } else { 5.0 }).collect();
        assert!(!sla.evaluate(&mostly_slow, &[], 10.0).met());
    }

    #[test]
    fn velocity_objective_and_helper() {
        assert!((velocity(1.0, 4.0) - 0.25).abs() < 1e-9);
        assert_eq!(velocity(2.0, 1.0), 1.0, "clamped at 1");
        assert_eq!(velocity(1.0, 0.0), 1.0);
        let sla = ServiceLevelAgreement::velocity(0.5);
        assert!(sla.evaluate(&[], &[0.6, 0.7], 1.0).met());
        assert!(!sla.evaluate(&[], &[0.1, 0.2], 1.0).met());
        assert!(!sla.evaluate(&[], &[], 1.0).met());
    }

    #[test]
    fn throughput_objective() {
        let sla = ServiceLevelAgreement {
            objectives: vec![PerformanceObjective::Throughput { min_per_sec: 2.0 }],
        };
        let thirty = vec![0.1; 30];
        assert!(sla.evaluate(&thirty, &[], 10.0).met());
        assert!(!sla.evaluate(&thirty, &[], 100.0).met());
    }

    #[test]
    fn best_effort_is_vacuously_met() {
        let sla = ServiceLevelAgreement::best_effort();
        assert!(!sla.has_goals());
        assert!(sla.evaluate(&[], &[], 0.0).met());
    }

    #[test]
    fn combined_objectives_require_all() {
        let sla = ServiceLevelAgreement {
            objectives: vec![
                PerformanceObjective::AvgResponseTime { target_secs: 1.0 },
                PerformanceObjective::Throughput { min_per_sec: 100.0 },
            ],
        };
        let eval = sla.evaluate(&[0.1, 0.1], &[], 10.0);
        assert!(eval.results[0].met);
        assert!(!eval.results[1].met);
        assert!(!eval.met());
    }

    #[test]
    fn describe_is_informative() {
        assert!(ServiceLevelAgreement::percentile(90.0, 2.0).objectives[0]
            .describe()
            .contains("90"));
    }
}
