//! Composite, time-varying workload mixes.
//!
//! Server consolidation puts "multiple types of workloads simultaneously
//! present on a single database server", and the mix "can fluctuate rapidly"
//! — which is why static threshold tuning fails and dynamic workload
//! management is needed. [`MixedSource`] merges several sources into one
//! arrival stream, preserving global arrival order.

use crate::generators::Source;
use crate::request::{Request, RequestId};
use wlm_dbsim::time::SimTime;

/// Several sources merged into one stream.
pub struct MixedSource {
    sources: Vec<Box<dyn Source>>,
    label: String,
}

impl MixedSource {
    /// Empty mix.
    pub fn new() -> Self {
        MixedSource {
            sources: Vec::new(),
            label: "mixed".into(),
        }
    }

    /// Add a source.
    pub fn push(&mut self, source: Box<dyn Source>) {
        self.sources.push(source);
    }

    /// Builder-style add.
    pub fn with(mut self, source: Box<dyn Source>) -> Self {
        self.push(source);
        self
    }

    /// Number of member sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the mix has no members.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl Default for MixedSource {
    fn default() -> Self {
        Self::new()
    }
}

impl Source for MixedSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        let mut all: Vec<Request> = self
            .sources
            .iter_mut()
            .flat_map(|s| s.poll(from, to))
            .collect();
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sources {
            s.on_completion(label, at);
        }
    }

    fn on_request_completion(&mut self, request: RequestId, label: &str, at: SimTime) {
        for s in &mut self.sources {
            s.on_request_completion(request, label, at);
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{BiSource, OltpSource};
    use wlm_dbsim::time::SimDuration;

    #[test]
    fn merge_preserves_arrival_order() {
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(20.0, 1)))
            .with(Box::new(BiSource::new(2.0, 2)));
        assert_eq!(mix.len(), 2);
        let reqs = mix.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(10));
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let labels: std::collections::HashSet<&str> = reqs.iter().map(|r| r.label()).collect();
        assert!(labels.contains("oltp"));
        assert!(labels.contains("bi"));
    }

    #[test]
    fn empty_mix_is_empty() {
        let mut mix = MixedSource::default();
        assert!(mix.is_empty());
        assert!(mix.poll(SimTime::ZERO, SimTime(1_000_000)).is_empty());
    }
}
