//! # wlm-workload — database workload model and generators
//!
//! A *database workload* is "a set of requests that have some common
//! characteristics such as application, source of request, type of query,
//! business priority, and/or performance objectives" (Zhang et al.). This
//! crate supplies:
//!
//! * the [`request::Request`] model — a query plus its origin ("who"),
//!   statement type ("what") and business importance;
//! * [`sla`] — service-level agreements expressed as average response time,
//!   percentile goals (*x% complete within y*), execution velocity or
//!   throughput floors;
//! * [`generators`] — synthetic OLTP, BI, batch-report, ad-hoc and
//!   administrative-utility workload sources with Poisson, bursty and
//!   closed-loop arrival processes, all seeded and deterministic;
//! * [`mix`] — time-varying compositions for server-consolidation
//!   scenarios;
//! * [`trace`] — a DBQL-style query log consumed by workload analyzers.

pub mod catalog_workloads;
pub mod generators;
pub mod mix;
pub mod request;
pub mod sla;
pub mod trace;

pub use catalog_workloads::CatalogSource;
pub use generators::{
    AdHocSource, BatchReportSource, BiSource, BurstySource, ClosedLoopOltpSource, OltpSource,
    PoisonSource, Source, SurgeHandle, SurgeRamp, SurgeSource, UniformSource, UtilitySource,
};
pub use mix::MixedSource;
pub use request::{Importance, Origin, Request, RequestId};
pub use sla::{PerformanceObjective, ServiceLevelAgreement, SlaEvaluation};
pub use trace::{QueryLog, QueryLogEntry};
