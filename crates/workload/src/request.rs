//! Requests and their identification attributes.
//!
//! Workload definition approaches map arriving requests to workloads using
//! the request's *origin* ("who is making the request": application name,
//! user, session id, client IP) and *type* ("what the request is":
//! statement class, estimated cost, estimated cardinality). This module
//! carries those attributes; classification itself lives in
//! `wlm-core::characterize`.

use serde::{Deserialize, Serialize};
use wlm_dbsim::plan::QuerySpec;
use wlm_dbsim::time::SimTime;

/// Identifies a request across the whole workload-management pipeline
/// (assigned by the generator, preserved through admission, queueing and
/// execution).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

/// "Who" is making the request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Origin {
    /// Application name (e.g. `"pos_terminal"`, `"report_studio"`).
    pub application: String,
    /// Authenticated user.
    pub user: String,
    /// Connection/session id.
    pub session_id: u64,
    /// Client IPv4 address.
    pub client_ip: [u8; 4],
}

impl Origin {
    /// Convenience constructor.
    pub fn new(application: &str, user: &str, session_id: u64) -> Self {
        Origin {
            application: application.into(),
            user: user.into(),
            session_id,
            client_ip: [10, 0, 0, 1],
        }
    }
}

/// Business importance levels assigned from the SLA. Workload management
/// maps these to resource-access priorities; the mapping is policy, which is
/// why the levels themselves carry no numeric weight.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Importance {
    /// Best-effort (ad-hoc exploration, routine reports).
    Low,
    /// Normal business work.
    #[default]
    Medium,
    /// Revenue-generating or executive work.
    High,
    /// Must never miss its objective.
    Critical,
}

impl Importance {
    /// All levels, ascending.
    pub const ALL: [Importance; 4] = [
        Importance::Low,
        Importance::Medium,
        Importance::High,
        Importance::Critical,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Importance::Low => "Low",
            Importance::Medium => "Medium",
            Importance::High => "High",
            Importance::Critical => "Critical",
        }
    }

    /// A default fair-share weight embodying the common
    /// "high gets roughly double the access of the level below" rule of
    /// thumb. Policies may override this freely.
    pub fn default_weight(self) -> f64 {
        match self {
            Importance::Low => 1.0,
            Importance::Medium => 2.0,
            Importance::High => 4.0,
            Importance::Critical => 8.0,
        }
    }

    /// One step less important (saturating) — used by priority aging.
    pub fn demoted(self) -> Importance {
        match self {
            Importance::Low | Importance::Medium => Importance::Low,
            Importance::High => Importance::Medium,
            Importance::Critical => Importance::High,
        }
    }

    /// One step more important (saturating).
    pub fn promoted(self) -> Importance {
        match self {
            Importance::Low => Importance::Medium,
            Importance::Medium => Importance::High,
            Importance::High | Importance::Critical => Importance::Critical,
        }
    }
}

/// One arriving request: a query plan plus its identification attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// When the request arrived at the database server.
    pub arrival: SimTime,
    /// Who submitted it.
    pub origin: Origin,
    /// The query itself (plan, statement type, lock keys, working set).
    pub spec: QuerySpec,
    /// Business importance from the submitting workload's SLA.
    pub importance: Importance,
    /// Data partition the request touches, when the workload is
    /// partitionable (`None` for scatter work). A cluster front-end's
    /// affinity router keys on this; single-node pipelines ignore it.
    #[serde(default)]
    pub shard_key: Option<u64>,
}

impl Request {
    /// The generator label carried on the spec (workload tag).
    pub fn label(&self) -> &str {
        &self.spec.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_ordering_and_steps() {
        assert!(Importance::Critical > Importance::High);
        assert!(Importance::High > Importance::Medium);
        assert!(Importance::Medium > Importance::Low);
        assert_eq!(Importance::Low.demoted(), Importance::Low);
        assert_eq!(Importance::Critical.promoted(), Importance::Critical);
        assert_eq!(Importance::High.demoted(), Importance::Medium);
        assert_eq!(Importance::Medium.promoted(), Importance::High);
    }

    #[test]
    fn weights_are_monotone() {
        let w: Vec<f64> = Importance::ALL.iter().map(|i| i.default_weight()).collect();
        assert!(w.windows(2).all(|p| p[0] < p[1]));
    }
}
