//! Synthetic workload sources.
//!
//! Each source models one of the workload types the paper's introduction
//! motivates: OLTP ("short and efficient transactions that may require only
//! milliseconds of CPU time"), Business Intelligence ("longer, more complex
//! and resource-intensive queries"), batch report generation, ad-hoc
//! exploration and online administrative utilities. All randomness is
//! seeded, so a given source configuration always produces the same request
//! stream.

use crate::request::{Importance, Origin, Request, RequestId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wlm_dbsim::optimizer::rand_distr_free::sample_lognormal;
use wlm_dbsim::plan::{OperatorKind, PlanBuilder, StatementType};
use wlm_dbsim::time::{SimDuration, SimTime};

/// A stream of requests over simulated time.
pub trait Source {
    /// Requests arriving in the half-open window `(from, to]`, in arrival
    /// order.
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request>;

    /// Completion feedback for closed-loop sources. `label` is the
    /// completed request's workload tag. Open-loop sources ignore this.
    fn on_completion(&mut self, _label: &str, _at: SimTime) {}

    /// Completion feedback carrying the completed request's identity.
    /// The default forwards to [`Source::on_completion`]; sources that
    /// need to attribute completions to individual requests (the cluster's
    /// exactly-once accounting across hedged re-dispatch) override this.
    fn on_request_completion(&mut self, _request: RequestId, label: &str, at: SimTime) {
        self.on_completion(label, at);
    }

    /// The workload tag this source stamps on its requests.
    fn label(&self) -> &str;
}

fn request_id(namespace: u16, counter: u64) -> RequestId {
    RequestId(((namespace as u64) << 48) | counter)
}

/// Draw the next exponential interarrival gap for `rate_per_sec`.
fn exp_gap(rng: &mut SmallRng, rate_per_sec: f64) -> SimDuration {
    let u: f64 = 1.0 - rng.gen::<f64>();
    SimDuration::from_secs_f64(-u.ln() / rate_per_sec.max(1e-9))
}

/// Draw a hot-skewed key in `[0, space)`: squaring the uniform variate
/// concentrates mass near zero, approximating the Zipfian access pattern of
/// real OLTP hot sets.
fn hot_key(rng: &mut SmallRng, space: u64) -> u64 {
    let u: f64 = rng.gen();
    ((u * u) * space as f64) as u64
}

/// Short transactions: an index lookup plus a small update, locking
/// hot-skewed keys. High business importance ("directly generate revenue").
#[derive(Debug)]
pub struct OltpSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    rate_per_sec: f64,
    /// Size of the contended key space; smaller = more lock conflicts.
    pub hot_keys: u64,
    /// Keys updated per transaction.
    pub keys_per_txn: usize,
    /// When set, the key space is split into this many equal ranges and
    /// every transaction stays inside one range (see
    /// [`OltpSource::with_partitions`]).
    partitions: Option<u64>,
    next_arrival: SimTime,
    counter: u64,
    importance: Importance,
}

impl OltpSource {
    /// New OLTP source with the given arrival rate.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, rate_per_sec);
        OltpSource {
            label: "oltp".into(),
            namespace: 1,
            rng,
            rate_per_sec,
            hot_keys: 100_000,
            keys_per_txn: 3,
            partitions: None,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
            importance: Importance::High,
        }
    }

    /// Override the workload tag.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.into();
        self
    }

    /// Override the business importance.
    pub fn with_importance(mut self, imp: Importance) -> Self {
        self.importance = imp;
        self
    }

    /// Shrink the hot key space to raise lock contention.
    pub fn with_hot_keys(mut self, hot_keys: u64) -> Self {
        self.hot_keys = hot_keys.max(1);
        self
    }

    /// Change the arrival rate mid-run (time-varying mixes).
    pub fn set_rate(&mut self, rate_per_sec: f64) {
        self.rate_per_sec = rate_per_sec;
    }

    /// Make the workload partitionable: the key space is split into `n`
    /// equal ranges, each transaction draws every key from one uniformly
    /// chosen range, and the request is stamped with that range's index as
    /// its [`Request::shard_key`]. A cluster front-end's affinity router
    /// can then keep each partition's hot set warm on one shard.
    pub fn with_partitions(mut self, n: u64) -> Self {
        self.partitions = Some(n.max(1));
        self
    }

    fn make_request(&mut self, arrival: SimTime) -> Request {
        self.counter += 1;
        let lookup_rows = self.rng.gen_range(3..=20);
        let updated = self.rng.gen_range(1..=self.keys_per_txn.max(1));
        let (shard_key, key_base, key_space) = match self.partitions {
            Some(p) => {
                let part = self.rng.gen_range(0..p);
                let span = (self.hot_keys / p).max(1);
                (Some(part), part * span, span)
            }
            None => (None, 0, self.hot_keys),
        };
        let mut keys: Vec<u64> = (0..updated)
            .map(|_| key_base + hot_key(&mut self.rng, key_space))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let spec = PlanBuilder::index_lookup(lookup_rows)
            .write(OperatorKind::Update, keys.len() as u64)
            .build()
            .into_spec()
            .labeled(self.label.clone())
            .with_write_keys(keys);
        Request {
            id: request_id(self.namespace, self.counter),
            arrival,
            origin: Origin::new("pos_terminal", "cashier", self.counter % 64),
            spec,
            importance: self.importance,
            shard_key,
        }
    }
}

impl Source for OltpSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            out.push(self.make_request(arrival));
            let gap = exp_gap(&mut self.rng, self.rate_per_sec);
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Business-intelligence queries: scans and joins over the fact table with a
/// heavy-tailed (log-normal) size distribution, so a minority of queries
/// dominates resource consumption — the "problematic" long-runners.
#[derive(Debug)]
pub struct BiSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    rate_per_sec: f64,
    /// Median rows scanned per query.
    pub median_rows: f64,
    /// Log-scale sigma of the size distribution.
    pub sigma: f64,
    next_arrival: SimTime,
    counter: u64,
    importance: Importance,
}

impl BiSource {
    /// New BI source with the given arrival rate.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, rate_per_sec);
        BiSource {
            label: "bi".into(),
            namespace: 2,
            rng,
            rate_per_sec,
            median_rows: 2_000_000.0,
            sigma: 1.0,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
            importance: Importance::Medium,
        }
    }

    /// Override the workload tag.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.into();
        self
    }

    /// Override the business importance.
    pub fn with_importance(mut self, imp: Importance) -> Self {
        self.importance = imp;
        self
    }

    /// Override the size distribution.
    pub fn with_size(mut self, median_rows: f64, sigma: f64) -> Self {
        self.median_rows = median_rows;
        self.sigma = sigma;
        self
    }

    /// Change the arrival rate mid-run.
    pub fn set_rate(&mut self, rate_per_sec: f64) {
        self.rate_per_sec = rate_per_sec;
    }

    fn make_request(&mut self, arrival: SimTime) -> Request {
        self.counter += 1;
        let rows = sample_lognormal(&mut self.rng, self.median_rows.ln(), self.sigma)
            .clamp(10_000.0, 2e8) as u64;
        let shape = self.rng.gen_range(0..3u8);
        let builder = PlanBuilder::table_scan(rows).filter(0.3);
        let plan = match shape {
            0 => builder.aggregate(200).build(),
            1 => builder.hash_join(rows / 20, 1.0).aggregate(500).build(),
            _ => builder
                .hash_join(rows / 50, 1.2)
                .sort()
                .aggregate(1_000)
                .build(),
        };
        let spec = plan.into_spec().labeled(self.label.clone());
        Request {
            id: request_id(self.namespace, self.counter),
            arrival,
            origin: Origin::new("report_studio", "analyst", 1000 + self.counter % 16),
            spec,
            importance: self.importance,
            shard_key: None,
        }
    }
}

impl Source for BiSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            out.push(self.make_request(arrival));
            let gap = exp_gap(&mut self.rng, self.rate_per_sec);
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A batch of report-generation queries all submitted at one instant — the
/// "report-generation batch workload" a scheduler must order.
#[derive(Debug)]
pub struct BatchReportSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    release_at: SimTime,
    count: usize,
    released: bool,
    importance: Importance,
}

impl BatchReportSource {
    /// `count` report queries released at `release_at`.
    pub fn new(release_at: SimTime, count: usize, seed: u64) -> Self {
        BatchReportSource {
            label: "batch_report".into(),
            namespace: 3,
            rng: SmallRng::seed_from_u64(seed),
            release_at,
            count,
            released: false,
            importance: Importance::Low,
        }
    }

    /// Override the workload tag.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.into();
        self
    }
}

impl Source for BatchReportSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        if self.released || self.release_at > to {
            return Vec::new();
        }
        self.released = true;
        (0..self.count)
            .map(|i| {
                let rows = sample_lognormal(&mut self.rng, (1_000_000.0f64).ln(), 0.8)
                    .clamp(5e4, 5e7) as u64;
                let spec = PlanBuilder::table_scan(rows)
                    .filter(0.5)
                    .aggregate(100)
                    .build()
                    .into_spec()
                    .labeled(self.label.clone());
                Request {
                    id: request_id(self.namespace, i as u64 + 1),
                    arrival: self.release_at,
                    origin: Origin::new("nightly_reports", "batch", 5000),
                    spec,
                    importance: self.importance,
                    shard_key: None,
                }
            })
            .collect()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Occasional very large ad-hoc queries (the workload the paper's open
/// problems section wants restricted when important work arrives).
#[derive(Debug)]
pub struct AdHocSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    rate_per_sec: f64,
    next_arrival: SimTime,
    counter: u64,
}

impl AdHocSource {
    /// New ad-hoc source with the given (low) arrival rate.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, rate_per_sec);
        AdHocSource {
            label: "adhoc".into(),
            namespace: 4,
            rng,
            rate_per_sec,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
        }
    }
}

impl Source for AdHocSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            self.counter += 1;
            let rows = sample_lognormal(&mut self.rng, (2e7f64).ln(), 0.6).clamp(1e6, 5e8) as u64;
            let spec = PlanBuilder::table_scan(rows)
                .filter(0.8)
                .sort()
                .build()
                .into_spec()
                .labeled(self.label.clone());
            out.push(Request {
                id: request_id(self.namespace, self.counter),
                arrival,
                origin: Origin::new("sql_console", "data_scientist", 9000 + self.counter),
                spec,
                importance: Importance::Low,
                shard_key: None,
            });
            let gap = exp_gap(&mut self.rng, self.rate_per_sec);
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// An online administrative utility (backup/reorg) started at a fixed time —
/// the workload Parekh et al. throttle.
#[derive(Debug)]
pub struct UtilitySource {
    label: String,
    namespace: u16,
    start_at: SimTime,
    cpu_secs: f64,
    io_pages: u64,
    emitted: bool,
}

impl UtilitySource {
    /// One utility run starting at `start_at` with the given total demands.
    pub fn new(start_at: SimTime, cpu_secs: f64, io_pages: u64) -> Self {
        UtilitySource {
            label: "utility".into(),
            namespace: 5,
            start_at,
            cpu_secs,
            io_pages,
            emitted: false,
        }
    }
}

impl Source for UtilitySource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        if self.emitted || self.start_at > to {
            return Vec::new();
        }
        self.emitted = true;
        let mut spec = PlanBuilder::utility(self.cpu_secs, self.io_pages)
            .build()
            .into_spec()
            .labeled(self.label.clone());
        spec.statement = StatementType::Utility;
        vec![Request {
            id: request_id(self.namespace, 1),
            arrival: self.start_at,
            origin: Origin::new("dba_console", "dba", 1),
            spec,
            importance: Importance::Low,
            shard_key: None,
        }]
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// An on/off-modulated (bursty) wrapper around any source: during ON
/// periods the inner source's arrivals pass through; during OFF periods
/// they are dropped. Alternating exponentially-distributed ON/OFF phases
/// approximate the Markov-modulated arrival processes real consolidated
/// servers see — the "requests present on a database server can fluctuate
/// rapidly" regime that motivates dynamic workload management.
pub struct BurstySource {
    inner: Box<dyn Source>,
    rng: SmallRng,
    /// Mean ON-phase length, seconds.
    pub mean_on_secs: f64,
    /// Mean OFF-phase length, seconds.
    pub mean_off_secs: f64,
    on: bool,
    phase_ends: SimTime,
}

impl BurstySource {
    /// Wrap `inner` with alternating ON/OFF phases.
    pub fn new(inner: Box<dyn Source>, mean_on_secs: f64, mean_off_secs: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, 1.0 / mean_on_secs.max(1e-9));
        BurstySource {
            inner,
            rng,
            mean_on_secs,
            mean_off_secs,
            on: true,
            phase_ends: SimTime::ZERO + first,
        }
    }

    fn advance_phases(&mut self, to: SimTime) {
        while self.phase_ends <= to {
            self.on = !self.on;
            let mean = if self.on {
                self.mean_on_secs
            } else {
                self.mean_off_secs
            };
            let gap = exp_gap(&mut self.rng, 1.0 / mean.max(1e-9));
            self.phase_ends += gap;
        }
    }
}

impl Source for BurstySource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        // Phase resolution at window granularity: the whole window takes the
        // phase in effect at its end (windows are one engine quantum, far
        // shorter than any plausible phase).
        let reqs = self.inner.poll(from, to);
        self.advance_phases(to);
        if self.on {
            reqs
        } else {
            Vec::new()
        }
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        self.inner.on_completion(label, at);
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// Poisson arrivals of one fixed query template — the workhorse for
/// controlled experiments where the query population must be homogeneous.
/// Optionally locks hot-skewed keys (heavy update transactions).
#[derive(Debug)]
pub struct UniformSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    rate_per_sec: f64,
    template: wlm_dbsim::plan::QuerySpec,
    /// When `Some((space, keys))`: each request locks `keys` uniformly
    /// drawn keys from `[0, space)`. Uniform (not hot-skewed) draws make
    /// transactions block at *different* positions in their key lists,
    /// which is the regime in which partial lock holdings — and therefore
    /// the conflict ratio — are meaningful.
    pub lock_profile: Option<(u64, usize)>,
    next_arrival: SimTime,
    counter: u64,
    importance: Importance,
}

impl UniformSource {
    /// New source emitting copies of `template` at `rate_per_sec`.
    pub fn new(
        template: wlm_dbsim::plan::QuerySpec,
        rate_per_sec: f64,
        label: &str,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, rate_per_sec);
        UniformSource {
            label: label.into(),
            namespace: 7,
            rng,
            rate_per_sec,
            template,
            lock_profile: None,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
            importance: Importance::Medium,
        }
    }

    /// Override the business importance.
    pub fn with_importance(mut self, imp: Importance) -> Self {
        self.importance = imp;
        self
    }

    /// Lock `keys` hot keys from a space of `space` per request.
    pub fn with_locks(mut self, space: u64, keys: usize) -> Self {
        self.lock_profile = Some((space.max(1), keys));
        self
    }
}

impl Source for UniformSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            self.counter += 1;
            let mut spec = self.template.clone().labeled(self.label.clone());
            if let Some((space, keys)) = self.lock_profile {
                let mut ks: Vec<u64> = (0..keys).map(|_| self.rng.gen_range(0..space)).collect();
                ks.sort_unstable();
                ks.dedup();
                spec.write_keys = ks;
            }
            out.push(Request {
                id: request_id(self.namespace, self.counter),
                arrival,
                origin: Origin::new("uniform_bench", "bench", self.counter % 32),
                spec,
                importance: self.importance,
                shard_key: None,
            });
            let gap = exp_gap(&mut self.rng, self.rate_per_sec);
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A closed-loop OLTP population: `users` terminals, each thinking for an
/// exponential time after its previous transaction completes and then
/// submitting the next one. Closed loops self-limit under overload, which is
/// why Schroeder et al. caution that open and closed arrivals behave
/// differently; both are available here.
#[derive(Debug)]
pub struct ClosedLoopOltpSource {
    inner: OltpSource,
    users: usize,
    think_mean_secs: f64,
    /// Terminals ready to submit at these times.
    pending_submissions: Vec<SimTime>,
    outstanding: usize,
}

impl ClosedLoopOltpSource {
    /// `users` terminals with the given mean think time.
    pub fn new(users: usize, think_mean_secs: f64, seed: u64) -> Self {
        let mut inner = OltpSource::new(1.0, seed).with_label("oltp_closed");
        inner.namespace = 6;
        // Initial think times stagger the first submissions.
        let mut pending = Vec::with_capacity(users);
        for _ in 0..users {
            let gap = exp_gap(&mut inner.rng, 1.0 / think_mean_secs.max(1e-9));
            pending.push(SimTime::ZERO + gap);
        }
        pending.sort_unstable();
        ClosedLoopOltpSource {
            inner,
            users,
            think_mean_secs,
            pending_submissions: pending,
            outstanding: 0,
        }
    }

    /// Number of requests currently in the system (submitted, uncompleted).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of configured terminals.
    pub fn users(&self) -> usize {
        self.users
    }
}

impl Source for ClosedLoopOltpSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        // Ready terminals submit; they stay outstanding until completion.
        let mut i = 0;
        while i < self.pending_submissions.len() {
            if self.pending_submissions[i] <= to {
                let arrival = self.pending_submissions.remove(i);
                out.push(self.inner.make_request(arrival));
                self.outstanding += 1;
            } else {
                i += 1;
            }
        }
        out
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        if label == self.inner.label && self.outstanding > 0 {
            self.outstanding -= 1;
            let gap = exp_gap(&mut self.inner.rng, 1.0 / self.think_mean_secs.max(1e-9));
            self.pending_submissions.push(at + gap);
            self.pending_submissions.sort_unstable();
        }
    }

    fn label(&self) -> &str {
        &self.inner.label
    }
}

/// A trickle of runaway ("poison") queries: each is so large that under a
/// tight per-workload timeout it can never finish — it gets killed, retried
/// by the resilience layer, killed again, forever. The workload the
/// runaway-query watchdog and poison quarantine (experiment E19) exist
/// for: without quarantine every poison request burns kill/retry cycles
/// for the rest of the run.
#[derive(Debug)]
pub struct PoisonSource {
    label: String,
    namespace: u16,
    rng: SmallRng,
    rate_per_sec: f64,
    /// Rows scanned per poison query (sized to dwarf any timeout).
    pub rows: u64,
    next_arrival: SimTime,
    counter: u64,
}

impl PoisonSource {
    /// New poison source with the given (low) arrival rate.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_gap(&mut rng, rate_per_sec);
        PoisonSource {
            label: "poison".into(),
            namespace: 9,
            rng,
            rate_per_sec,
            rows: 50_000_000,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
        }
    }

    /// Override the poison query size.
    pub fn with_rows(mut self, rows: u64) -> Self {
        self.rows = rows.max(1);
        self
    }
}

impl Source for PoisonSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            self.counter += 1;
            let spec = PlanBuilder::table_scan(self.rows)
                .filter(0.9)
                .sort()
                .build()
                .into_spec()
                .labeled(self.label.clone());
            out.push(Request {
                id: request_id(self.namespace, self.counter),
                arrival,
                origin: Origin::new("rogue_notebook", "intern", self.counter),
                spec,
                importance: Importance::Medium,
                shard_key: None,
            });
            let gap = exp_gap(&mut self.rng, self.rate_per_sec);
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Remote control for a [`SurgeSource`]: the chaos driver flips the surge
/// factor mid-run through this handle while the manager owns the source.
#[derive(Debug, Clone)]
pub struct SurgeHandle(std::rc::Rc<std::cell::RefCell<f64>>);

impl SurgeHandle {
    /// Set the arrival amplification factor (`1.0` = no surge; `3.0` =
    /// three times the base arrival stream).
    pub fn set_factor(&self, factor: f64) {
        *self.0.borrow_mut() = factor.max(0.0);
    }

    /// The current amplification factor.
    pub fn factor(&self) -> f64 {
        *self.0.borrow()
    }
}

/// A deterministic trapezoid amplification schedule for a
/// [`SurgeSource`]: flat at `1.0` until `start_secs`, linear ramp to
/// `peak` over `ramp_secs`, hold for `hold_secs`, linear decay back to
/// `1.0` over `decay_secs`. The realistic shape of a flash crowd — a
/// step function overstates the onset, and the autoscaler's hysteresis
/// is tuned against exactly this kind of gradual build-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeRamp {
    /// When the ramp leaves the baseline, simulated seconds.
    pub start_secs: f64,
    /// Seconds spent climbing from `1.0` to `peak`.
    pub ramp_secs: f64,
    /// Seconds held at `peak`.
    pub hold_secs: f64,
    /// Seconds spent decaying back to `1.0`.
    pub decay_secs: f64,
    /// Amplification at the top of the trapezoid (clamped to `>= 1.0`).
    pub peak: f64,
}

impl SurgeRamp {
    /// The schedule's amplification factor at `t_secs` of simulated time.
    pub fn factor_at(&self, t_secs: f64) -> f64 {
        let peak = self.peak.max(1.0);
        let ramp_end = self.start_secs + self.ramp_secs.max(0.0);
        let hold_end = ramp_end + self.hold_secs.max(0.0);
        let decay_end = hold_end + self.decay_secs.max(0.0);
        if t_secs < self.start_secs || t_secs >= decay_end {
            1.0
        } else if t_secs < ramp_end {
            1.0 + (peak - 1.0) * (t_secs - self.start_secs) / self.ramp_secs.max(f64::EPSILON)
        } else if t_secs < hold_end {
            peak
        } else {
            peak - (peak - 1.0) * (t_secs - hold_end) / self.decay_secs.max(f64::EPSILON)
        }
    }
}

/// A flash-crowd wrapper: replays its inner source and, while the surge
/// factor is above `1.0`, clones each arrival `factor − 1` times (the
/// fractional part as a seeded Bernoulli draw) with fresh request ids and
/// a `flash_crowd` origin — the sudden same-shape load spike of a viral
/// event hitting an application tier.
pub struct SurgeSource {
    inner: Box<dyn Source>,
    rng: SmallRng,
    factor: std::rc::Rc<std::cell::RefCell<f64>>,
    ramp: Option<SurgeRamp>,
    counter: u64,
}

impl SurgeSource {
    /// Wrap `inner`; the returned [`SurgeHandle`] controls the factor.
    pub fn new(inner: Box<dyn Source>, seed: u64) -> (Self, SurgeHandle) {
        let factor = std::rc::Rc::new(std::cell::RefCell::new(1.0));
        let handle = SurgeHandle(std::rc::Rc::clone(&factor));
        (
            SurgeSource {
                inner,
                rng: SmallRng::seed_from_u64(seed),
                factor,
                ramp: None,
                counter: 0,
            },
            handle,
        )
    }

    /// Drive the surge on a fixed trapezoid schedule. The schedule
    /// *multiplies* whatever the handle holds, so a chaos driver can
    /// still stack an extra step on top of the ramp.
    pub fn with_ramp(mut self, ramp: SurgeRamp) -> Self {
        self.ramp = Some(ramp);
        self
    }
}

impl Source for SurgeSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        let base = self.inner.poll(from, to);
        let mut factor = *self.factor.borrow();
        if let Some(ramp) = &self.ramp {
            factor *= ramp.factor_at(from.as_secs_f64());
        }
        if factor <= 1.0 || base.is_empty() {
            return base;
        }
        let extra_whole = (factor - 1.0).floor() as usize;
        let extra_frac = (factor - 1.0) - extra_whole as f64;
        let mut out = Vec::with_capacity(base.len() * (2 + extra_whole));
        for req in base {
            let mut clones = extra_whole;
            if self.rng.gen::<f64>() < extra_frac {
                clones += 1;
            }
            for _ in 0..clones {
                self.counter += 1;
                let mut dup = req.clone();
                dup.id = request_id(8, self.counter);
                dup.origin = Origin::new("flash_crowd", "surge", self.counter % 64);
                out.push(dup);
            }
            out.push(req);
        }
        // Stable by arrival: clones stay adjacent to their originals.
        out.sort_by_key(|r| r.arrival);
        out
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        self.inner.on_completion(label, at);
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(secs: u64) -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(secs))
    }

    #[test]
    fn surge_ramp_follows_the_trapezoid() {
        let ramp = SurgeRamp {
            start_secs: 10.0,
            ramp_secs: 4.0,
            hold_secs: 6.0,
            decay_secs: 4.0,
            peak: 3.0,
        };
        assert_eq!(ramp.factor_at(0.0), 1.0, "baseline before the start");
        assert_eq!(ramp.factor_at(12.0), 2.0, "halfway up the ramp");
        assert_eq!(ramp.factor_at(14.0), 3.0, "peak reached");
        assert_eq!(ramp.factor_at(19.0), 3.0, "held at peak");
        assert_eq!(ramp.factor_at(22.0), 2.0, "halfway down the decay");
        assert_eq!(ramp.factor_at(24.0), 1.0, "back to baseline");
        assert_eq!(ramp.factor_at(100.0), 1.0);

        // Wired into the source, amplification tracks the schedule.
        let (surged, handle) = SurgeSource::new(Box::new(OltpSource::new(30.0, 5)), 9);
        let mut surged = surged.with_ramp(ramp);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let calm = surged.poll(t(0), t(5)).len();
        surged.poll(t(5), t(14)); // advance through the ramp
        let hot = surged.poll(t(14), t(19)).len();
        assert!(
            hot as f64 > 2.0 * calm as f64,
            "peak window must amplify ~3x: calm={calm} hot={hot}"
        );
        assert_eq!(handle.factor(), 1.0, "the handle itself was never moved");
    }

    #[test]
    fn oltp_rate_is_respected() {
        let mut src = OltpSource::new(50.0, 1);
        let (from, to) = window(20);
        let reqs = src.poll(from, to);
        let rate = reqs.len() as f64 / 20.0;
        assert!((35.0..65.0).contains(&rate), "rate {rate}");
        // Arrival order, ids unique.
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let mut ids: Vec<_> = reqs.iter().map(|r| r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), reqs.len());
    }

    #[test]
    fn surge_amplifies_only_while_raised() {
        let (mut surged, handle) = SurgeSource::new(Box::new(OltpSource::new(30.0, 5)), 9);
        let mut plain = OltpSource::new(30.0, 5);
        let (f, t) = window(5);
        // Factor 1.0: byte-for-byte passthrough.
        assert_eq!(surged.poll(f, t), plain.poll(f, t));
        // Factor 3.0: roughly triple the arrivals, clones in namespace 8
        // with a flash_crowd origin, arrival order preserved.
        handle.set_factor(3.0);
        let from = t;
        let to = t + SimDuration::from_secs(5);
        let base = plain.poll(from, to);
        let surged_reqs = surged.poll(from, to);
        let ratio = surged_reqs.len() as f64 / base.len().max(1) as f64;
        assert!((2.5..3.5).contains(&ratio), "surge ratio {ratio}");
        assert!(surged_reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let clones: Vec<_> = surged_reqs.iter().filter(|r| r.id.0 >> 48 == 8).collect();
        assert_eq!(clones.len(), surged_reqs.len() - base.len());
        assert!(clones.iter().all(|r| r.origin.application == "flash_crowd"));
        let mut ids: Vec<_> = surged_reqs.iter().map(|r| r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), surged_reqs.len(), "fresh unique ids");
        // Back to 1.0: passthrough again.
        handle.set_factor(1.0);
        let from2 = to;
        let to2 = to + SimDuration::from_secs(2);
        assert_eq!(surged.poll(from2, to2), plain.poll(from2, to2));
    }

    #[test]
    fn oltp_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = OltpSource::new(20.0, seed);
            let (f, t) = window(5);
            s.poll(f, t)
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn oltp_requests_are_small_writes() {
        let mut src = OltpSource::new(10.0, 2);
        let (f, t) = window(10);
        for r in src.poll(f, t) {
            assert!(r.spec.plan.total_work() < 5_000, "OLTP must be tiny");
            assert!(!r.spec.write_keys.is_empty());
            assert!(r.spec.plan.is_write());
            assert_eq!(r.importance, Importance::High);
        }
    }

    #[test]
    fn bi_sizes_are_heavy_tailed() {
        let mut src = BiSource::new(5.0, 3);
        let (f, t) = window(200);
        let works: Vec<u64> = src
            .poll(f, t)
            .iter()
            .map(|r| r.spec.plan.total_work())
            .collect();
        assert!(works.len() > 500);
        let mut sorted = works.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let max = *sorted.last().unwrap() as f64;
        assert!(
            max / median > 10.0,
            "heavy tail expected: median {median}, max {max}"
        );
    }

    #[test]
    fn batch_releases_once_at_time() {
        let mut src = BatchReportSource::new(SimTime(5_000_000), 10, 4);
        let early = src.poll(SimTime::ZERO, SimTime(1_000_000));
        assert!(early.is_empty());
        let on_time = src.poll(SimTime(1_000_000), SimTime(10_000_000));
        assert_eq!(on_time.len(), 10);
        assert!(on_time.iter().all(|r| r.arrival == SimTime(5_000_000)));
        let again = src.poll(SimTime(10_000_000), SimTime(60_000_000));
        assert!(again.is_empty());
    }

    #[test]
    fn utility_emits_one_big_request() {
        let mut src = UtilitySource::new(SimTime::ZERO, 30.0, 100_000);
        let (f, t) = window(1);
        let reqs = src.poll(f, t);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].spec.statement, StatementType::Utility);
        assert!(reqs[0].spec.plan.total_cpu_us() == 30_000_000);
        assert!(src.poll(f, t).is_empty());
    }

    #[test]
    fn adhoc_queries_are_huge() {
        let mut src = AdHocSource::new(1.0, 5);
        let (f, t) = window(30);
        let reqs = src.poll(f, t);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().all(|r| r.spec.plan.total_work() > 1_000_000));
    }

    #[test]
    fn closed_loop_limits_outstanding() {
        let mut src = ClosedLoopOltpSource::new(5, 0.1, 6);
        let (f, t) = window(60);
        let reqs = src.poll(f, t);
        // Without completions, at most `users` requests ever get submitted.
        assert!(reqs.len() <= 5, "got {}", reqs.len());
        assert_eq!(src.outstanding(), reqs.len());
        // Completions recycle terminals.
        for r in &reqs {
            src.on_completion(r.label(), t);
        }
        assert_eq!(src.outstanding(), 0);
        let more = src.poll(t, t + SimDuration::from_secs(60));
        assert!(!more.is_empty());
    }

    #[test]
    fn poison_queries_are_runaway_sized_and_deterministic() {
        let collect = |seed| {
            let mut src = PoisonSource::new(0.5, seed);
            let (f, t) = window(30);
            src.poll(f, t)
        };
        let reqs = collect(9);
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert_eq!(r.label(), "poison");
            assert_eq!(r.id.0 >> 48, 9, "poison namespace");
            assert!(
                r.spec.plan.total_work() > 10_000_000,
                "poison must dwarf any timeout"
            );
        }
        assert_eq!(reqs, collect(9));
    }

    #[test]
    fn closed_loop_ignores_foreign_labels() {
        let mut src = ClosedLoopOltpSource::new(2, 0.1, 7);
        let (f, t) = window(60);
        let n = src.poll(f, t).len();
        src.on_completion("bi", t);
        assert_eq!(src.outstanding(), n);
    }
}

#[cfg(test)]
mod bursty_tests {
    use super::*;

    #[test]
    fn bursty_alternates_and_preserves_rate_statistically() {
        let inner = Box::new(OltpSource::new(100.0, 21));
        let mut bursty = BurstySource::new(inner, 2.0, 2.0, 22);
        let mut total = 0usize;
        let mut silent_windows = 0usize;
        let mut busy_windows = 0usize;
        let window = SimDuration::from_millis(500);
        let mut t = SimTime::ZERO;
        for _ in 0..240 {
            let end = t + window;
            let n = bursty.poll(t, end).len();
            total += n;
            if n == 0 {
                silent_windows += 1;
            } else {
                busy_windows += 1;
            }
            t = end;
        }
        // Roughly half the time is OFF...
        assert!(silent_windows > 40, "silent {silent_windows}");
        assert!(busy_windows > 40, "busy {busy_windows}");
        // ...so roughly half the inner arrivals pass (within generous noise).
        let expected = 100.0 * 120.0 * 0.5;
        assert!(
            (total as f64) > expected * 0.5 && (total as f64) < expected * 1.5,
            "total {total} vs expected ~{expected}"
        );
    }

    #[test]
    fn uniform_source_emits_template_copies() {
        let template = PlanBuilder::table_scan(5_000).build().into_spec();
        let mut src = UniformSource::new(template.clone(), 10.0, "bench", 5);
        let reqs = src.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(10));
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert_eq!(r.spec.plan, template.plan);
            assert_eq!(r.label(), "bench");
            assert!(r.spec.write_keys.is_empty());
        }
    }

    #[test]
    fn uniform_source_lock_profile_draws_keys() {
        let template = PlanBuilder::index_lookup(10)
            .write(OperatorKind::Update, 2)
            .build()
            .into_spec();
        let mut src = UniformSource::new(template, 20.0, "txn", 6).with_locks(32, 3);
        let reqs = src.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(5));
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(!r.spec.write_keys.is_empty());
            assert!(r.spec.write_keys.iter().all(|k| *k < 32));
            assert!(r.spec.write_keys.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
