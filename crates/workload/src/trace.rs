//! A DBQL-style query log.
//!
//! Teradata's workload analyzer recommends workload definitions "by
//! analyzing the data of the database query log (DBQL)". This module records
//! completed requests with the attributes such an analyzer needs: origin,
//! statement type, estimated cost, measured response and resource
//! consumption.

use crate::request::{Importance, Origin};
use serde::{Deserialize, Serialize};
use wlm_dbsim::plan::StatementType;
use wlm_dbsim::time::{SimDuration, SimTime};

/// One completed request in the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryLogEntry {
    /// When the request arrived.
    pub arrival: SimTime,
    /// Workload tag it ran under (if any was assigned).
    pub label: String,
    /// Who submitted it.
    pub origin: Origin,
    /// Statement class.
    pub statement: StatementType,
    /// Optimizer cost estimate at submission, timerons.
    pub estimated_cost: f64,
    /// True total work performed, µs-equivalent.
    pub true_work_us: u64,
    /// Measured response time.
    pub response: SimDuration,
    /// Business importance it carried.
    pub importance: Importance,
}

/// An append-only query log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryLog {
    entries: Vec<QueryLogEntry>,
}

impl QueryLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry.
    pub fn record(&mut self, entry: QueryLogEntry) {
        self.entries.push(entry);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[QueryLogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries grouped by application name (a common analysis dimension).
    pub fn by_application(&self) -> std::collections::BTreeMap<&str, Vec<&QueryLogEntry>> {
        let mut map: std::collections::BTreeMap<&str, Vec<&QueryLogEntry>> = Default::default();
        for e in &self.entries {
            map.entry(e.origin.application.as_str())
                .or_default()
                .push(e);
        }
        map
    }

    /// Mean response time in seconds of entries matching a predicate.
    pub fn mean_response_secs<F: Fn(&QueryLogEntry) -> bool>(&self, pred: F) -> f64 {
        let matching: Vec<f64> = self
            .entries
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.response.as_secs_f64())
            .collect();
        if matching.is_empty() {
            0.0
        } else {
            matching.iter().sum::<f64>() / matching.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, resp_ms: u64) -> QueryLogEntry {
        QueryLogEntry {
            arrival: SimTime::ZERO,
            label: "w".into(),
            origin: Origin::new(app, "u", 1),
            statement: StatementType::Read,
            estimated_cost: 100.0,
            true_work_us: 1000,
            response: SimDuration::from_millis(resp_ms),
            importance: Importance::Medium,
        }
    }

    #[test]
    fn record_and_group() {
        let mut log = QueryLog::new();
        assert!(log.is_empty());
        log.record(entry("a", 100));
        log.record(entry("b", 200));
        log.record(entry("a", 300));
        assert_eq!(log.len(), 3);
        let grouped = log.by_application();
        assert_eq!(grouped["a"].len(), 2);
        assert_eq!(grouped["b"].len(), 1);
    }

    #[test]
    fn mean_response_filters() {
        let mut log = QueryLog::new();
        log.record(entry("a", 100));
        log.record(entry("a", 300));
        log.record(entry("b", 1000));
        let mean_a = log.mean_response_secs(|e| e.origin.application == "a");
        assert!((mean_a - 0.2).abs() < 1e-9);
        assert_eq!(
            log.mean_response_secs(|e| e.origin.application == "zz"),
            0.0
        );
    }
}
