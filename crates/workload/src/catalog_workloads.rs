//! Catalog-driven workload generation.
//!
//! The synthetic [`wlm_dbsim::catalog::Catalog`] describes a concrete
//! database (a retail star schema by default); this module derives query
//! plans from the catalog's actual table sizes instead of free-floating row
//! counts, so a workload's demands stay consistent with "its" database:
//! point lookups hit the `orders` table through its primary key, report
//! queries scan slices of `sales_fact` and join the dimensions.

use crate::generators::Source;
use crate::request::{Importance, Origin, Request, RequestId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wlm_dbsim::catalog::Catalog;
use wlm_dbsim::optimizer::rand_distr_free::sample_lognormal;
use wlm_dbsim::plan::{OperatorKind, PlanBuilder, QuerySpec};
use wlm_dbsim::time::{SimDuration, SimTime};

/// Query shapes the catalog source can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Point lookup + small update on `orders` (OLTP).
    OrderUpdate,
    /// Fact-slice scan joined to a dimension, aggregated (reporting).
    FactReport,
    /// Fact scan joined to two dimensions with a sort (heavy analysis).
    DeepAnalysis,
}

/// A workload source whose plans are derived from a catalog.
pub struct CatalogSource {
    catalog: Catalog,
    label: String,
    rng: SmallRng,
    rate_per_sec: f64,
    /// Probability of each shape: (order_update, fact_report); the
    /// remainder is deep analysis.
    pub shape_mix: (f64, f64),
    /// Median fraction of the fact table a report scans.
    pub median_fact_fraction: f64,
    next_arrival: SimTime,
    counter: u64,
}

impl CatalogSource {
    /// New source over `catalog` at the given arrival rate.
    pub fn new(catalog: Catalog, rate_per_sec: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let u: f64 = 1.0 - rng.gen::<f64>();
        let first = SimDuration::from_secs_f64(-u.ln() / rate_per_sec.max(1e-9));
        CatalogSource {
            catalog,
            label: "catalog".into(),
            rng,
            rate_per_sec,
            shape_mix: (0.85, 0.12),
            median_fact_fraction: 0.02,
            next_arrival: SimTime::ZERO + first,
            counter: 0,
        }
    }

    /// Override the workload tag.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.into();
        self
    }

    fn rows(&self, table: &str) -> u64 {
        self.catalog.table(table).map_or(1_000, |t| t.rows)
    }

    fn pick_shape(&mut self) -> Shape {
        let u: f64 = self.rng.gen();
        if u < self.shape_mix.0 {
            Shape::OrderUpdate
        } else if u < self.shape_mix.0 + self.shape_mix.1 {
            Shape::FactReport
        } else {
            Shape::DeepAnalysis
        }
    }

    fn build(&mut self, shape: Shape) -> (QuerySpec, Importance, Origin) {
        match shape {
            Shape::OrderUpdate => {
                let order_rows = self.rows("orders");
                let touched = self.rng.gen_range(1..=4u64);
                let mut keys: Vec<u64> = (0..touched)
                    .map(|_| self.rng.gen_range(0..order_rows))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                let spec = PlanBuilder::index_lookup(touched * 3)
                    .write(OperatorKind::Update, keys.len() as u64)
                    .build()
                    .into_spec()
                    .labeled(format!("{}_oltp", self.label))
                    .with_write_keys(keys);
                (
                    spec,
                    Importance::High,
                    Origin::new("order_entry", "clerk", self.counter % 32),
                )
            }
            Shape::FactReport => {
                let fact = self.rows("sales_fact");
                let fraction = sample_lognormal(&mut self.rng, self.median_fact_fraction.ln(), 0.8)
                    .clamp(0.001, 0.3);
                let slice = ((fact as f64) * fraction) as u64;
                let dim = self.rows("product_dim");
                let spec = PlanBuilder::table_scan(slice)
                    .filter(0.4)
                    .hash_join(dim, 1.0)
                    .aggregate(500)
                    .build()
                    .into_spec()
                    .labeled(format!("{}_report", self.label));
                (
                    spec,
                    Importance::Medium,
                    Origin::new("report_studio", "analyst", 100 + self.counter % 8),
                )
            }
            Shape::DeepAnalysis => {
                let fact = self.rows("sales_fact");
                let fraction = sample_lognormal(&mut self.rng, (0.1f64).ln(), 0.5).clamp(0.02, 0.8);
                let slice = ((fact as f64) * fraction) as u64;
                let customers = self.rows("customer_dim");
                let stores = self.rows("store_dim");
                let spec = PlanBuilder::table_scan(slice)
                    .filter(0.6)
                    .hash_join(customers / 10, 1.0)
                    .merge_join(stores, 1.0)
                    .sort()
                    .aggregate(2_000)
                    .build()
                    .into_spec()
                    .labeled(format!("{}_analysis", self.label));
                (
                    spec,
                    Importance::Low,
                    Origin::new("sql_console", "scientist", 200 + self.counter % 4),
                )
            }
        }
    }
}

impl Source for CatalogSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= to {
            let arrival = self.next_arrival;
            self.counter += 1;
            let shape = self.pick_shape();
            let (spec, importance, origin) = self.build(shape);
            out.push(Request {
                id: RequestId((8u64 << 48) | self.counter),
                arrival,
                origin,
                spec,
                importance,
                shard_key: None,
            });
            let u: f64 = 1.0 - self.rng.gen::<f64>();
            let gap = SimDuration::from_secs_f64(-u.ln() / self.rate_per_sec.max(1e-9));
            self.next_arrival = arrival + gap;
        }
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_track_catalog_sizes() {
        let mut small_cat = Catalog::retail();
        small_cat.add(wlm_dbsim::catalog::Table {
            name: "sales_fact".into(),
            rows: 100_000,
            row_bytes: 96,
            has_pk_index: false,
        });
        let mut small = CatalogSource::new(small_cat, 20.0, 3).with_label("s");
        let mut big = CatalogSource::new(Catalog::retail(), 20.0, 3).with_label("b");
        let window = SimTime::ZERO + SimDuration::from_secs(60);
        let small_reports: Vec<u64> = small
            .poll(SimTime::ZERO, window)
            .iter()
            .filter(|r| r.label().contains("report") || r.label().contains("analysis"))
            .map(|r| r.spec.plan.total_work())
            .collect();
        let big_reports: Vec<u64> = big
            .poll(SimTime::ZERO, window)
            .iter()
            .filter(|r| r.label().contains("report") || r.label().contains("analysis"))
            .map(|r| r.spec.plan.total_work())
            .collect();
        assert!(!small_reports.is_empty() && !big_reports.is_empty());
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&big_reports) > mean(&small_reports) * 20.0,
            "a 500x bigger fact table must yield much bigger reports: {} vs {}",
            mean(&big_reports),
            mean(&small_reports)
        );
    }

    #[test]
    fn mix_covers_all_shapes_with_expected_skew() {
        let mut src = CatalogSource::new(Catalog::retail(), 50.0, 4);
        let reqs = src.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(60));
        let oltp = reqs.iter().filter(|r| r.label().ends_with("_oltp")).count();
        let reports = reqs
            .iter()
            .filter(|r| r.label().ends_with("_report"))
            .count();
        let analysis = reqs
            .iter()
            .filter(|r| r.label().ends_with("_analysis"))
            .count();
        assert!(oltp > reports && reports > 0 && analysis > 0);
        // OLTP updates lock real order keys.
        assert!(reqs
            .iter()
            .filter(|r| r.label().ends_with("_oltp"))
            .all(|r| !r.spec.write_keys.is_empty()));
    }
}
