//! The simulated link layer between the cluster front-end and the shard
//! inboxes.
//!
//! PR 4's fabric was a perfect, instantaneous network: the front-end
//! pushed routed requests straight into shard inboxes. This module makes
//! the fabric a first-class failure domain. Every routed request becomes
//! an enveloped message with a monotonically-assigned [`MsgId`]; the link
//! applies a deterministic per-seed model of delay, jitter, loss,
//! duplication and full partition windows; delivery is acknowledged back
//! to the front-end, which retransmits whatever stays unacknowledged past
//! the retransmit timeout. Shards deduplicate redeliveries by `MsgId`
//! (see [`InboxSource::accept`](crate::inbox::InboxSource::accept)), so
//! at-least-once transport composes into exactly-once ingestion.
//!
//! The link also carries the failure detector's evidence: the front-end
//! pings every shard each control cycle, and pong/ack round-trip times
//! feed [`FailureDetector`](crate::detector::FailureDetector).
//!
//! Everything is deterministic: per-shard seeded RNGs drawn in a fixed
//! order, and all in-flight traffic kept in `BTreeMap`s keyed by
//! `(due-time, sequence)`. Same seed, same message history, byte for
//! byte. The default [`LinkConfig`] is a *perfect* link — zero delay,
//! zero loss — under which a cluster run is tick-for-tick identical to
//! the direct-push fabric it replaces.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::request::{Request, RequestId};

/// Identity of one enveloped message on the link. Monotonic across the
/// whole cluster run, so a retransmission of the same send attempt is
/// recognizable at the receiving shard no matter how the copies reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct MsgId(pub u64);

/// The deterministic link model.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Base one-way delivery delay, seconds.
    pub delay_secs: f64,
    /// Seeded uniform extra delay in `[0, jitter_secs]` per transmission.
    pub jitter_secs: f64,
    /// Per-message loss probability on the forward path.
    pub loss_p: f64,
    /// Probability a delivered message is duplicated in flight.
    pub dup_p: f64,
    /// Retransmit a message this long after its last unacknowledged send.
    pub retransmit_secs: f64,
    /// Seed behind every loss/duplication/jitter draw.
    pub seed: u64,
}

impl Default for LinkConfig {
    /// A perfect link: zero delay, zero loss, zero duplication. A cluster
    /// over the default link behaves exactly like the direct-push fabric.
    fn default() -> Self {
        LinkConfig {
            delay_secs: 0.0,
            jitter_secs: 0.0,
            loss_p: 0.0,
            dup_p: 0.0,
            retransmit_secs: 0.25,
            seed: 0,
        }
    }
}

/// Per-shard mutable link state (fault windows move these).
#[derive(Debug)]
struct ShardLink {
    rng: SmallRng,
    /// Fully partitioned: everything in either direction is lost.
    partitioned: bool,
    /// Gray-shard multiplier on the base delay (1.0 = nominal).
    delay_factor: f64,
    /// Fault-window override of the configured loss probability.
    loss_override: Option<f64>,
}

/// A message sent but not yet acknowledged.
#[derive(Debug)]
struct OutMsg {
    req: Request,
    shard: usize,
    /// Last transmission time (the retransmit timer's reference).
    sent_at: SimTime,
    /// Whether any copy has been accepted by the shard (ack may still be
    /// in flight). Crash failover uses this: accepted messages are
    /// already in the shard's books, unaccepted ones must move with the
    /// rest of the stranded work.
    accepted: bool,
    attempts: u32,
}

/// A data message due to arrive at a shard inbox.
#[derive(Debug)]
pub(crate) struct Delivery {
    pub msg: MsgId,
    pub shard: usize,
    pub req: Request,
    /// The transmission this copy belongs to (echoed in its ack so the
    /// front-end measures that attempt's round trip).
    pub sent_at: SimTime,
}

/// A message the link lost (loss draw or partition), reported so the
/// front-end can publish [`WlmEvent::LinkDropped`](wlm_core::events::WlmEvent::LinkDropped).
#[derive(Debug)]
pub(crate) struct Drop {
    pub request: RequestId,
    pub workload: String,
    pub shard: usize,
}

/// Everything one [`LinkLayer::pump`] surfaced.
#[derive(Debug, Default)]
pub(crate) struct PumpOutput {
    /// Data messages due at their shard this pump.
    pub deliveries: Vec<Delivery>,
    /// Acks that resolved an outstanding message: `(shard, request)`.
    pub acked: Vec<(usize, Request)>,
    /// Round-trip samples (acks and heartbeat pongs) for the detector.
    pub rtt_samples: Vec<(usize, f64)>,
    /// Messages lost since the last pump.
    pub dropped: Vec<Drop>,
}

/// The link between the front-end and every shard inbox.
#[derive(Debug)]
pub(crate) struct LinkLayer {
    cfg: LinkConfig,
    shards: Vec<ShardLink>,
    next_msg: u64,
    /// Tie-breaker for same-instant schedule entries.
    seq: u64,
    /// Sent-but-unacked messages, by id.
    outstanding: BTreeMap<MsgId, OutMsg>,
    /// Data messages in flight toward a shard.
    deliveries: BTreeMap<(SimTime, u64), Delivery>,
    /// Acks in flight back to the front-end: `(msg, shard, sent_at)`.
    acks: BTreeMap<(SimTime, u64), (MsgId, usize, SimTime)>,
    /// Heartbeat pongs in flight back: `(shard, ping_sent)`.
    pongs: BTreeMap<(SimTime, u64), (usize, SimTime)>,
    /// Losses accumulated since the last pump.
    drop_log: Vec<Drop>,
    /// Messages delivered and accepted at least once.
    pub delivered: u64,
    /// Messages lost in flight (including retransmitted copies).
    pub dropped: u64,
    /// Extra copies the link spontaneously duplicated.
    pub duplicated: u64,
    /// Retransmissions triggered by the ack timeout.
    pub retransmits: u64,
}

impl LinkLayer {
    pub(crate) fn new(cfg: LinkConfig, shards: usize) -> Self {
        let shard_links = (0..shards)
            .map(|i| ShardLink {
                rng: SmallRng::seed_from_u64(mix_seed(cfg.seed, i as u64)),
                partitioned: false,
                delay_factor: 1.0,
                loss_override: None,
            })
            .collect();
        LinkLayer {
            cfg,
            shards: shard_links,
            next_msg: 0,
            seq: 0,
            outstanding: BTreeMap::new(),
            deliveries: BTreeMap::new(),
            acks: BTreeMap::new(),
            pongs: BTreeMap::new(),
            drop_log: Vec::new(),
            delivered: 0,
            dropped: 0,
            duplicated: 0,
            retransmits: 0,
        }
    }

    pub(crate) fn is_partitioned(&self, shard: usize) -> bool {
        self.shards[shard].partitioned
    }

    /// Apply or heal a full partition. Activation swallows everything
    /// already in flight to or from the shard — sent messages go back on
    /// the retransmit timer, so nothing is silently lost forever.
    pub(crate) fn set_partitioned(&mut self, shard: usize, active: bool) {
        self.shards[shard].partitioned = active;
        if !active {
            return;
        }
        let swallowed: Vec<_> = self
            .deliveries
            .iter()
            .filter(|(_, d)| d.shard == shard)
            .map(|(k, _)| *k)
            .collect();
        for key in swallowed {
            let d = self.deliveries.remove(&key).expect("key just listed");
            self.dropped += 1;
            self.drop_log.push(Drop {
                request: d.req.id,
                workload: d.req.spec.label.clone(),
                shard,
            });
        }
        self.acks.retain(|_, (_, s, _)| *s != shard);
        self.pongs.retain(|_, (s, _)| *s != shard);
    }

    /// Move a gray-shard fault window: multiply the link delay to and
    /// from `shard` by `factor` (1.0 recovers).
    pub(crate) fn set_delay_factor(&mut self, shard: usize, factor: f64) {
        self.shards[shard].delay_factor = factor.max(0.0);
    }

    /// Override (or with `None` restore) the forward loss probability of
    /// one shard's link.
    pub(crate) fn set_loss(&mut self, shard: usize, loss_p: Option<f64>) {
        self.shards[shard].loss_override = loss_p;
    }

    fn one_way(&mut self, shard: usize, now: SimTime) -> SimTime {
        let s = &mut self.shards[shard];
        let mut secs = self.cfg.delay_secs * s.delay_factor;
        if self.cfg.jitter_secs > 0.0 {
            secs += s.rng.gen::<f64>() * self.cfg.jitter_secs * s.delay_factor;
        }
        now + SimDuration::from_secs_f64(secs)
    }

    fn next_key(&mut self, at: SimTime) -> (SimTime, u64) {
        self.seq += 1;
        (at, self.seq)
    }

    /// Roll the forward path for one copy: `true` if it survives.
    fn forward_survives(&mut self, shard: usize) -> bool {
        let s = &mut self.shards[shard];
        if s.partitioned {
            return false;
        }
        let loss = s.loss_override.unwrap_or(self.cfg.loss_p);
        !(loss > 0.0 && s.rng.gen::<f64>() < loss)
    }

    /// Transmit (or retransmit) one copy of an outstanding message.
    fn transmit(&mut self, msg: MsgId, now: SimTime) {
        let (shard, req) = {
            let m = &self.outstanding[&msg];
            (m.shard, m.req.clone())
        };
        if !self.forward_survives(shard) {
            self.dropped += 1;
            self.drop_log.push(Drop {
                request: req.id,
                workload: req.spec.label.clone(),
                shard,
            });
            return;
        }
        let due = self.one_way(shard, now);
        let duplicate =
            self.cfg.dup_p > 0.0 && self.shards[shard].rng.gen::<f64>() < self.cfg.dup_p;
        let key = self.next_key(due);
        self.deliveries.insert(
            key,
            Delivery {
                msg,
                shard,
                req: req.clone(),
                sent_at: now,
            },
        );
        if duplicate {
            self.duplicated += 1;
            let dup_due = self.one_way(shard, now);
            let key = self.next_key(dup_due);
            self.deliveries.insert(
                key,
                Delivery {
                    msg,
                    shard,
                    req,
                    sent_at: now,
                },
            );
        }
    }

    /// Envelope `req` and put it on the wire toward `shard`.
    pub(crate) fn send(&mut self, now: SimTime, shard: usize, req: Request) -> MsgId {
        self.next_msg += 1;
        let msg = MsgId(self.next_msg);
        self.outstanding.insert(
            msg,
            OutMsg {
                req,
                shard,
                sent_at: now,
                accepted: false,
                attempts: 1,
            },
        );
        self.transmit(msg, now);
        msg
    }

    /// Ping every shard (the heartbeat the failure detector lives on).
    /// Pongs travel both legs of the link, so a gray shard's pongs arrive
    /// late and a partitioned shard's not at all.
    pub(crate) fn heartbeat(&mut self, now: SimTime) {
        for shard in 0..self.shards.len() {
            if !self.forward_survives(shard) {
                continue;
            }
            let there = self.one_way(shard, now);
            let back = self.one_way(shard, there);
            let key = self.next_key(back);
            self.pongs.insert(key, (shard, now));
        }
    }

    /// The shard accepted (or re-acked) a delivered message: schedule the
    /// acknowledgement back to the front-end.
    pub(crate) fn post_ack(&mut self, msg: MsgId, shard: usize, sent_at: SimTime, now: SimTime) {
        if let Some(m) = self.outstanding.get_mut(&msg) {
            m.accepted = true;
        }
        if self.shards[shard].partitioned {
            return; // the ack dies in the partition
        }
        let due = self.one_way(shard, now);
        let key = self.next_key(due);
        self.acks.insert(key, (msg, shard, sent_at));
    }

    /// Advance the link to `now`: surface due deliveries, resolve due
    /// acks and pongs, retransmit what timed out.
    pub(crate) fn pump(&mut self, now: SimTime) -> PumpOutput {
        let mut out = PumpOutput {
            dropped: std::mem::take(&mut self.drop_log),
            ..PumpOutput::default()
        };
        // Retransmit first so a copy re-sent at `now` over a zero-delay
        // link is delivered by this same pump, not the next one.
        if self.cfg.retransmit_secs > 0.0 {
            let timeout = SimDuration::from_secs_f64(self.cfg.retransmit_secs);
            let due: Vec<MsgId> = self
                .outstanding
                .iter()
                .filter(|(_, m)| m.sent_at + timeout <= now)
                .map(|(id, _)| *id)
                .collect();
            for msg in due {
                let m = self.outstanding.get_mut(&msg).expect("id just listed");
                m.sent_at = now;
                m.attempts += 1;
                self.retransmits += 1;
                self.transmit(msg, now);
            }
        }
        while let Some((&key, _)) = self.deliveries.iter().next() {
            if key.0 > now {
                break;
            }
            let d = self.deliveries.remove(&key).expect("key just read");
            self.delivered += 1;
            out.deliveries.push(d);
        }
        while let Some((&key, _)) = self.acks.iter().next() {
            if key.0 > now {
                break;
            }
            let (msg, shard, sent_at) = self.acks.remove(&key).expect("key just read");
            // Round trips are measured at the scheduled arrival instant,
            // not at whatever later time the link happened to be pumped.
            out.rtt_samples
                .push((shard, key.0.since(sent_at).as_secs_f64()));
            if let Some(m) = self.outstanding.remove(&msg) {
                out.acked.push((shard, m.req));
            }
        }
        while let Some((&key, _)) = self.pongs.iter().next() {
            if key.0 > now {
                break;
            }
            let (shard, pinged) = self.pongs.remove(&key).expect("key just read");
            out.rtt_samples
                .push((shard, key.0.since(pinged).as_secs_f64()));
        }
        out
    }

    /// Unacknowledged messages addressed to `shard`, oldest first — the
    /// hedging candidates when the shard goes gray.
    pub(crate) fn unacked_to(&self, shard: usize) -> Vec<(MsgId, Request)> {
        self.outstanding
            .iter()
            .filter(|(_, m)| m.shard == shard)
            .map(|(id, m)| (*id, m.req.clone()))
            .collect()
    }

    /// Stop retransmitting `msg` (its request was hedged elsewhere).
    /// Copies already in flight still arrive — the shard-side dedup and
    /// the front-end's duplicate-completion accounting absorb them.
    pub(crate) fn abandon(&mut self, msg: MsgId) {
        self.outstanding.remove(&msg);
    }

    /// Drop every copy of `request` addressed to `shard` — the loser side
    /// of a hedge race is cancelled before it can be (re)delivered.
    pub(crate) fn cancel_request(&mut self, request: RequestId, shard: usize) {
        self.outstanding
            .retain(|_, m| !(m.shard == shard && m.req.id == request));
        self.deliveries
            .retain(|_, d| !(d.shard == shard && d.req.id == request));
    }

    /// Crash failover: take every message to `shard` that no copy of has
    /// been accepted yet (those requests exist nowhere but on the wire)
    /// and drop all in-flight copies. Accepted messages stay with the
    /// shard — the failover checkpoint machinery already owns them.
    pub(crate) fn take_unaccepted(&mut self, shard: usize) -> Vec<Request> {
        let ids: Vec<MsgId> = self
            .outstanding
            .iter()
            .filter(|(_, m)| m.shard == shard && !m.accepted)
            .map(|(id, _)| *id)
            .collect();
        let mut moved = Vec::new();
        for id in &ids {
            let m = self.outstanding.remove(id).expect("id just listed");
            moved.push(m.req);
        }
        self.deliveries
            .retain(|_, d| !(d.shard == shard && ids.contains(&d.msg)));
        moved
    }

    /// The dedup watermark: every message id strictly below the returned
    /// bound is fully retired — it is no longer outstanding (so it will
    /// never be retransmitted) and has no copy in flight (so nothing
    /// already on the wire can still land). No shard will ever see such
    /// an id delivered again, which makes it safe for inboxes to forget
    /// it (see [`InboxSource::evict_seen_below`](crate::inbox::InboxSource::evict_seen_below)).
    pub(crate) fn retired_before(&self) -> MsgId {
        let mut floor = MsgId(self.next_msg + 1);
        if let Some((&id, _)) = self.outstanding.iter().next() {
            floor = floor.min(id);
        }
        if let Some(min) = self.deliveries.values().map(|d| d.msg).min() {
            floor = floor.min(min);
        }
        floor
    }

    /// Sent-but-unacked messages currently on the books.
    #[cfg(test)]
    pub(crate) fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }
}

/// SplitMix64 step, deriving one shard's RNG stream from the link seed.
fn mix_seed(seed: u64, lane: u64) -> u64 {
    let mut x = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lane.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::plan::PlanBuilder;
    use wlm_workload::request::{Importance, Origin};

    fn req(id: u64) -> Request {
        Request {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            origin: Origin::new("test", "t", id),
            spec: PlanBuilder::table_scan(1_000)
                .build()
                .into_spec()
                .labeled("oltp"),
            importance: Importance::Medium,
            shard_key: None,
        }
    }

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn perfect_link_delivers_immediately_in_send_order() {
        let mut link = LinkLayer::new(LinkConfig::default(), 2);
        link.send(SimTime::ZERO, 0, req(1));
        link.send(SimTime::ZERO, 1, req(2));
        link.send(SimTime::ZERO, 0, req(3));
        let out = link.pump(SimTime::ZERO);
        let ids: Vec<u64> = out.deliveries.iter().map(|d| d.req.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3], "send order preserved");
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn lost_messages_are_retransmitted_until_acked() {
        let cfg = LinkConfig {
            loss_p: 1.0,
            retransmit_secs: 0.1,
            ..LinkConfig::default()
        };
        let mut link = LinkLayer::new(cfg, 1);
        let msg = link.send(SimTime::ZERO, 0, req(7));
        assert_eq!(link.pump(SimTime::ZERO).deliveries.len(), 0);
        assert_eq!(link.dropped, 1);
        // Heal the loss; the retransmit timer re-sends and delivers.
        link.set_loss(0, Some(0.0));
        let out = link.pump(secs(0.2));
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].msg, msg);
        assert!(link.retransmits >= 1);
        // Ack resolves the outstanding entry.
        link.post_ack(msg, 0, secs(0.2), secs(0.2));
        let out = link.pump(secs(0.2));
        assert_eq!(out.acked.len(), 1);
        assert_eq!(link.outstanding_len(), 0);
    }

    #[test]
    fn partition_swallows_in_flight_and_heals() {
        let cfg = LinkConfig {
            delay_secs: 0.05,
            retransmit_secs: 0.1,
            ..LinkConfig::default()
        };
        let mut link = LinkLayer::new(cfg, 1);
        link.send(SimTime::ZERO, 0, req(9));
        link.set_partitioned(0, true);
        let out = link.pump(secs(0.06));
        assert!(out.deliveries.is_empty(), "in-flight copy swallowed");
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].request, RequestId(9));
        // While partitioned, retransmits keep dying.
        let out = link.pump(secs(0.2));
        assert!(out.deliveries.is_empty());
        // Heal: the next retransmit gets through, arriving one link
        // delay after the pump that re-sent it.
        link.set_partitioned(0, false);
        assert!(link.pump(secs(0.4)).deliveries.is_empty());
        let out = link.pump(secs(0.45));
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].req.id, RequestId(9));
    }

    #[test]
    fn gray_delay_factor_stretches_pong_round_trips() {
        let cfg = LinkConfig {
            delay_secs: 0.02,
            ..LinkConfig::default()
        };
        let mut link = LinkLayer::new(cfg, 2);
        link.set_delay_factor(1, 10.0);
        link.heartbeat(SimTime::ZERO);
        let out = link.pump(secs(1.0));
        let mut rtts: BTreeMap<usize, f64> = BTreeMap::new();
        for (shard, rtt) in out.rtt_samples {
            rtts.insert(shard, rtt);
        }
        assert!((rtts[&0] - 0.04).abs() < 1e-9, "nominal rtt: {}", rtts[&0]);
        assert!((rtts[&1] - 0.4).abs() < 1e-9, "gray rtt: {}", rtts[&1]);
    }

    #[test]
    fn same_seed_same_history() {
        let run = || {
            let cfg = LinkConfig {
                delay_secs: 0.01,
                jitter_secs: 0.02,
                loss_p: 0.3,
                dup_p: 0.2,
                retransmit_secs: 0.05,
                seed: 11,
            };
            let mut link = LinkLayer::new(cfg, 3);
            let mut history = Vec::new();
            for i in 0..50u64 {
                let now = secs(i as f64 * 0.02);
                link.heartbeat(now);
                link.send(now, (i % 3) as usize, req(i));
                let out = link.pump(now);
                for d in &out.deliveries {
                    history.push((d.msg.0, d.shard, d.req.id.0));
                }
            }
            (history, link.dropped, link.duplicated, link.retransmits)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cancel_and_take_unaccepted_clear_every_copy() {
        let cfg = LinkConfig {
            delay_secs: 0.5,
            ..LinkConfig::default()
        };
        let mut link = LinkLayer::new(cfg, 2);
        let a = link.send(SimTime::ZERO, 0, req(1));
        link.send(SimTime::ZERO, 0, req(2));
        link.send(SimTime::ZERO, 1, req(3));
        link.cancel_request(RequestId(2), 0);
        assert_eq!(link.outstanding_len(), 2);
        // Mark request 1 accepted; only request 3 is unaccepted on shard 1.
        link.post_ack(a, 0, SimTime::ZERO, SimTime::ZERO);
        let moved = link.take_unaccepted(1);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].id, RequestId(3));
        let out = link.pump(secs(1.0));
        let ids: Vec<u64> = out.deliveries.iter().map(|d| d.req.id.0).collect();
        assert_eq!(ids, vec![1], "cancelled and taken copies never arrive");
    }
}
