//! The cluster: N engine shards under one global front-end controller.
//!
//! [`Cluster::tick`] is the hierarchical control cycle. On the shared
//! engine quantum it (1) processes due shard outages and rejoins,
//! (2) applies due network-fabric faults (partitions, gray links, loss
//! windows) and heals partitions through the reconciliation path,
//! (3) pumps the [`LinkLayer`](crate::link::LinkLayer) — heartbeats out,
//! deliveries into shard inboxes, acks and pongs back into the
//! [`FailureDetector`](crate::detector::FailureDetector) — and hedges the
//! in-flight work of newly suspected shards, (4) polls the cluster-level
//! source for the window's arrivals, (5) passes each arrival through the
//! cluster admission gate (shedding when every live shard is saturated)
//! and routes the survivors toward shard inboxes, (6) steps every shard's
//! [`WorkloadManager`] exactly one control cycle (down shards advance via
//! [`WorkloadManager::tick_uncontrolled`] — the data plane outlives its
//! controller), and (7) forwards completion feedback to the source
//! through the exactly-once filter. Every step is deterministic, so an
//! N-shard run is reproducible per seed down to byte-identical shard
//! checkpoints — link faults and all.
//!
//! Shard failure reuses the crash-tolerant control plane:
//! [`FailoverPolicy::Reroute`] checkpoints the dying controller, moves its
//! queued work (wait queue, admission gate, inbox, undelivered link
//! traffic, and the in-flight running/suspended sets) onto the survivors,
//! and restores a stripped checkpoint so the restore reconciliation
//! orphan-kills what the dead shard's engine was running — each moved
//! request runs again elsewhere, none is lost, none completes twice.
//! [`FailoverPolicy::WaitForRestart`] is the ablation baseline: the work
//! stays put and the shard restores its full checkpoint when it rejoins.
//!
//! Hedged re-dispatch extends the same exactly-once discipline to *gray*
//! failure. A suspected shard's unacknowledged (and, once it looks dead,
//! accepted-but-unfinished) requests are re-sent to a healthy peer; the
//! first completion to reach the front-end wins and the losing copies are
//! cancelled through the orphan-kill path ([`Cluster::report`] subtracts
//! nothing twice — duplicate completions of a won race are counted in
//! [`ClusterReport::duplicate_completions`] and excluded from
//! [`ClusterReport::completed`]).

use crate::detector::{DetectorConfig, FailureDetector, ShardHealth};
use crate::elastic::{Autoscaler, ElasticConfig, ScaleDecision, ShardStage};
use crate::hedge::{CompletionVerdict, HedgeConfig, Hedger};
use crate::inbox::{FeedbackBuffer, InboxSource};
use crate::link::{LinkConfig, LinkLayer};
use crate::routing::{affinity_key, splitmix64, RoutingPolicy};
use crate::snapshot::{ClusterSnapshot, ShardView};
use crate::warm::WarmCache;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use wlm_chaos::{FaultPlan, NetFault, NetFaultEvent};
use wlm_core::api::WlmBuilder;
use wlm_core::events::{EventBus, EventSubscriber, WlmEvent};
use wlm_core::manager::store::{corrupt_bytes, open, seal, CorruptionKind};
use wlm_core::manager::{ControllerState, RunReport, WorkloadManager};
use wlm_core::Error;
use wlm_dbsim::engine::EngineFault;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::Source;
use wlm_workload::request::{Request, RequestId};

/// What the front-end does with a failed shard's queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum FailoverPolicy {
    /// Move the dead shard's queued and in-flight work onto the surviving
    /// shards at crash time (bounded SLA damage, survivors absorb load).
    Reroute,
    /// Leave the work where it is; the shard restores its checkpoint when
    /// it rejoins (the work waits out the outage).
    WaitForRestart,
}

impl FailoverPolicy {
    /// Short policy name (stable; used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            FailoverPolicy::Reroute => "reroute",
            FailoverPolicy::WaitForRestart => "wait_for_restart",
        }
    }
}

/// One shard: a per-shard workload manager plus its arrival inbox.
struct Shard {
    mgr: WorkloadManager,
    inbox: InboxSource,
    /// `Some(t)` while the shard's controller is down; it rejoins at `t`.
    down_until: Option<SimTime>,
    /// Estimated cost routed to this shard in the current tick, not yet
    /// visible in the manager's snapshot (least-outstanding-cost routing).
    routed_cost: f64,
}

impl Shard {
    fn alive(&self) -> bool {
        self.down_until.is_none()
    }
}

/// A scheduled shard-controller outage.
struct Outage {
    shard: usize,
    at: SimTime,
    duration: SimDuration,
    triggered: bool,
    /// The sealed crash-time checkpoint image, held for the shard's
    /// rejoin under [`FailoverPolicy::WaitForRestart`]. Verified when
    /// read back: a damaged image forces a cold restart instead of a
    /// garbage restore.
    saved: Option<Vec<u8>>,
}

/// End-of-run summary aggregated over every shard.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Simulated run length, seconds.
    pub elapsed_secs: f64,
    /// Total completions across shards, *excluding* duplicate completions
    /// of hedged races (see [`Self::duplicate_completions`]): each request
    /// the cluster accepted surfaces here exactly once.
    pub completed: u64,
    /// Total kills across shards, *excluding* crash-recovery reclaims
    /// and hedge-loser cancellations (those are resource housekeeping,
    /// not workload-management outcomes). After a *verified* recovery
    /// each reclaimed request still surfaces exactly once through its
    /// rerouted twin; after a failed checkpoint verification the
    /// reclaimed queries have no twins — their requests never surface
    /// again, which is exactly the work-loss signal the E27
    /// conservation invariant detects. The per-shard rows in
    /// [`Self::shards`] keep the raw counts.
    pub killed: u64,
    /// Total shard-level rejections.
    pub rejected: u64,
    /// Requests routed by the front-end.
    pub routed: u64,
    /// Requests moved off failed shards.
    pub rerouted: u64,
    /// Requests shed at the cluster door.
    pub shed: u64,
    /// Hedged re-dispatches issued against suspected shards.
    pub hedged: u64,
    /// Completions of already-won hedge races, absorbed by the
    /// exactly-once filter instead of reaching the source twice.
    pub duplicate_completions: u64,
    /// Link-layer data messages that arrived at a shard (0 without a
    /// link; includes redeliveries).
    pub delivered: u64,
    /// Link-layer messages lost to loss draws or partitions.
    pub link_dropped: u64,
    /// Deliveries the shard-side dedup dropped as already seen.
    pub redelivered: u64,
    /// Retransmissions the ack timeout triggered.
    pub retransmits: u64,
    /// Aggregate throughput, completions/second.
    pub throughput: f64,
    /// Shards the autoscaler spawned over the run (0 without
    /// [`ClusterBuilder::elastic`]).
    pub scale_ups: u64,
    /// Shards the autoscaler drained and retired over the run.
    pub scale_downs: u64,
    /// Shard-hours actually spent, in seconds: each tick charges one
    /// quantum per non-retired shard. A static cluster charges
    /// `shards * elapsed_secs`; an elastic one charges only for the
    /// capacity it kept up — the denominator of the provisioning-cost
    /// comparison in experiment E24.
    pub shard_seconds: f64,
    /// Per-shard run reports, in shard order.
    pub shards: Vec<RunReport>,
}

/// Typed facade for assembling a [`Cluster`] — the cluster-level
/// counterpart of [`WlmBuilder`].
pub struct ClusterBuilder {
    shards: usize,
    routing: RoutingPolicy,
    failover: FailoverPolicy,
    shed_threshold: Option<usize>,
    warm_cache: Option<(usize, u64)>,
    routing_cost_model: CostModel,
    link: Option<LinkConfig>,
    detector: Option<DetectorConfig>,
    hedging: Option<HedgeConfig>,
    elastic: Option<ElasticConfig>,
    factory: Option<Box<dyn Fn(usize) -> WlmBuilder>>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("shards", &self.shards)
            .field("routing", &self.routing)
            .field("failover", &self.failover)
            .field("shed_threshold", &self.shed_threshold)
            .field("warm_cache", &self.warm_cache)
            .field("link", &self.link)
            .field("detector", &self.detector.is_some())
            .field("hedging", &self.hedging.is_some())
            .field("elastic", &self.elastic.is_some())
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// A single-shard cluster with round-robin routing, re-route failover,
    /// no shed gate, no warm-partition model and a direct (in-memory)
    /// fabric.
    pub fn new() -> Self {
        ClusterBuilder {
            shards: 1,
            routing: RoutingPolicy::RoundRobin,
            failover: FailoverPolicy::Reroute,
            shed_threshold: None,
            warm_cache: None,
            routing_cost_model: CostModel::oracle(),
            link: None,
            detector: None,
            hedging: None,
            elastic: None,
            factory: None,
        }
    }

    /// Number of shards.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Routing policy for arriving requests.
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.routing = policy;
        self
    }

    /// What happens to a failed shard's queued work.
    pub fn failover(mut self, policy: FailoverPolicy) -> Self {
        self.failover = policy;
        self
    }

    /// Open the cluster shed gate when every live shard's queue pressure
    /// (controller queue plus inbox) reaches `threshold`.
    pub fn shed_when_all_queued_at_least(mut self, threshold: usize) -> Self {
        self.shed_threshold = Some(threshold.max(1));
        self
    }

    /// Enable the warm-partition model: each shard keeps up to `capacity`
    /// partitions warm; a cold-routed partition charges its request a
    /// `cold_working_set_pages` working set (see [`WarmCache`]).
    pub fn warm_cache(mut self, capacity: usize, cold_working_set_pages: u64) -> Self {
        self.warm_cache = Some((capacity, cold_working_set_pages));
        self
    }

    /// Cost model the least-outstanding-cost router estimates arrivals
    /// with (default: a perfect oracle).
    pub fn routing_cost_model(mut self, model: CostModel) -> Self {
        self.routing_cost_model = model;
        self
    }

    /// Put a simulated [`LinkLayer`] between the front-end and the shard
    /// inboxes: enveloped delivery with seeded delay, jitter, loss,
    /// duplication and retransmission, plus partition/gray fault windows
    /// ([`Cluster::schedule_net_fault`]). The default config is a perfect
    /// link, under which a run is byte-identical to the direct fabric.
    pub fn link(mut self, cfg: LinkConfig) -> Self {
        self.link = Some(cfg);
        self
    }

    /// Run a [`FailureDetector`] over the link's ack/pong round trips and
    /// steer routing away from suspected shards. Requires [`Self::link`].
    pub fn failure_detector(mut self, cfg: DetectorConfig) -> Self {
        self.detector = Some(cfg);
        self
    }

    /// Hedge the in-flight work of suspected shards onto healthy peers,
    /// first completion wins, exactly-once accounting. Requires
    /// [`Self::failure_detector`].
    pub fn hedged_redispatch(mut self, cfg: HedgeConfig) -> Self {
        self.hedging = Some(cfg);
        self
    }

    /// Run the shard pool elastically: build all [`Self::shards`] shards
    /// but keep only [`ElasticConfig::min_shards`] active, letting the
    /// deterministic [`Autoscaler`] spawn (with a warm-up/cold-cache
    /// penalty) and drain-then-retire the rest as pressure moves. Without
    /// this, every shard is active for the whole run.
    pub fn elastic(mut self, cfg: ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Validate and assemble the cluster.
    ///
    /// Fails with [`Error::Config`] when the shard count is zero, a
    /// shard's own builder fails validation, the shards disagree on the
    /// engine quantum (the two-level controller steps one shared clock),
    /// or the fabric stack is inconsistent (a failure detector without a
    /// link, hedging without a detector).
    pub fn build(self) -> Result<Cluster, Error> {
        if self.shards == 0 {
            return Err(Error::Config("cluster needs at least one shard".into()));
        }
        if self.detector.is_some() && self.link.is_none() {
            return Err(Error::Config(
                "a failure detector needs a link layer to observe (ClusterBuilder::link)".into(),
            ));
        }
        if self.hedging.is_some() && self.detector.is_none() {
            return Err(Error::Config(
                "hedged re-dispatch needs a failure detector (ClusterBuilder::failure_detector)"
                    .into(),
            ));
        }
        if let Some(el) = &self.elastic {
            if el.min_shards == 0 || el.min_shards > self.shards {
                return Err(Error::Config(format!(
                    "elastic min_shards {} must be in 1..={} (the pool size)",
                    el.min_shards, self.shards
                )));
            }
        }
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut shards = Vec::with_capacity(self.shards);
        let mut quantum = None;
        for i in 0..self.shards {
            let builder = match &self.factory {
                Some(f) => f(i),
                None => WlmBuilder::new(),
            };
            let mgr = builder.build()?;
            let q = mgr.engine().config().quantum;
            match quantum {
                None => quantum = Some(q),
                Some(q0) if q0 != q => {
                    return Err(Error::Config(format!(
                        "shard {i} quantum {}us disagrees with shard 0 quantum {}us",
                        q.as_micros(),
                        q0.as_micros()
                    )));
                }
                Some(_) => {}
            }
            shards.push(Shard {
                mgr,
                inbox: InboxSource::new(i, Rc::clone(&feedback)),
                down_until: None,
                routed_cost: 0.0,
            });
        }
        let quantum = quantum.ok_or_else(|| {
            // Unreachable given the zero-shard guard above, but a typed
            // error beats a panic if the guard ever drifts.
            Error::Config("cluster needs at least one shard".into())
        })?;
        let warm = self
            .warm_cache
            .map(|(capacity, cold)| WarmCache::new(self.shards, capacity, cold));
        let link = self.link.map(|cfg| LinkLayer::new(cfg, self.shards));
        let detector = self
            .detector
            .map(|cfg| FailureDetector::new(cfg, self.shards, SimTime::ZERO));
        let hedger = self.hedging.map(Hedger::new);
        // Without elasticity every shard is active for the whole run, so
        // the routable mask degenerates to plain liveness and a run is
        // byte-identical to the pre-elastic cluster.
        let stages: Vec<ShardStage> = match &self.elastic {
            Some(el) => (0..self.shards)
                .map(|i| {
                    if i < el.min_shards {
                        ShardStage::Active
                    } else {
                        ShardStage::Retired
                    }
                })
                .collect(),
            None => vec![ShardStage::Active; self.shards],
        };
        Ok(Cluster {
            shards,
            stages,
            elastic: self.elastic.map(Autoscaler::new),
            routing: self.routing,
            failover: self.failover,
            shed_threshold: self.shed_threshold,
            warm,
            routing_cost_model: self.routing_cost_model,
            rr_next: 0,
            quantum,
            events: Rc::new(RefCell::new(EventBus::with_thread_trace())),
            feedback,
            parked: VecDeque::new(),
            outages: Vec::new(),
            link,
            detector,
            hedger,
            accepted: BTreeMap::new(),
            finished: BTreeSet::new(),
            held_feedback: BTreeMap::new(),
            pending_cancels: BTreeMap::new(),
            net_schedule: Vec::new(),
            routed: 0,
            rerouted: 0,
            shed: 0,
            reclaimed: 0,
            hedged: 0,
            redelivered: 0,
            dup_completions: 0,
            scale_ups: 0,
            scale_downs: 0,
            shard_us: 0,
            armed_ckpt_faults: BTreeMap::new(),
            ckpt_torn_caught: 0,
            ckpt_rejected: 0,
        })
    }

    /// Per-shard manager configuration: `f(shard)` returns the
    /// [`WlmBuilder`] the shard's manager is built from. Without a
    /// factory, every shard gets `WlmBuilder::new()` defaults.
    pub fn shard_builder(mut self, f: Box<dyn Fn(usize) -> WlmBuilder>) -> Self {
        self.factory = Some(f);
        self
    }
}

/// The sharded cluster under hierarchical workload management.
pub struct Cluster {
    shards: Vec<Shard>,
    /// Elastic lifecycle stage per shard (all [`ShardStage::Active`]
    /// without [`ClusterBuilder::elastic`]).
    stages: Vec<ShardStage>,
    /// The deterministic scale controller, when the pool is elastic.
    elastic: Option<Autoscaler>,
    routing: RoutingPolicy,
    failover: FailoverPolicy,
    shed_threshold: Option<usize>,
    warm: Option<WarmCache>,
    routing_cost_model: CostModel,
    /// Round-robin cursor.
    rr_next: usize,
    /// The shared engine quantum every shard steps per cluster tick.
    quantum: SimDuration,
    /// The front-end's own decision-event bus.
    events: Rc<RefCell<EventBus>>,
    feedback: FeedbackBuffer,
    /// Arrivals held while no shard is live (flushed on rejoin).
    parked: VecDeque<Request>,
    outages: Vec<Outage>,
    /// The simulated fabric; `None` means direct in-memory delivery.
    link: Option<LinkLayer>,
    detector: Option<FailureDetector>,
    hedger: Option<Hedger>,
    /// Requests a shard has accepted off the link but not yet completed:
    /// `request -> (the request, shards holding a copy)`. This is the
    /// hedging candidate set when a shard goes fully dark.
    accepted: BTreeMap<RequestId, (Request, Vec<usize>)>,
    /// Requests whose completion has already been forwarded to the
    /// source. A fast query can finish before its delivery ack makes the
    /// round trip; without this book the late ack would resurrect an
    /// `accepted` entry and a later dead-shard hedge would re-dispatch —
    /// and double-count — work that is long done.
    finished: BTreeSet<RequestId>,
    /// Completion feedback that surfaced on a partitioned shard — from
    /// the front-end's chair it does not exist yet. Flushed through the
    /// exactly-once filter when the partition heals.
    held_feedback: BTreeMap<usize, Vec<(RequestId, String, SimTime)>>,
    /// Hedge-loser cancellations addressed to a partitioned shard,
    /// applied at heal time.
    pending_cancels: BTreeMap<usize, Vec<RequestId>>,
    /// Scheduled network-fabric faults, time-sorted, with applied flags.
    net_schedule: Vec<(NetFaultEvent, bool)>,
    routed: u64,
    rerouted: u64,
    shed: u64,
    /// Orphan kills performed while stripping a crashed shard under
    /// [`FailoverPolicy::Reroute`] or cancelling a hedge race's losing
    /// copy. Their twins run to completion elsewhere, so these are
    /// subtracted from the aggregate `killed` to keep cluster accounting
    /// exactly-once.
    reclaimed: u64,
    hedged: u64,
    redelivered: u64,
    /// Completions of already-won hedge races (absorbed, not forwarded).
    dup_completions: u64,
    /// Shards spawned by the autoscaler.
    scale_ups: u64,
    /// Shards drained and retired by the autoscaler.
    scale_downs: u64,
    /// Accumulated shard-microseconds: one quantum per non-retired shard
    /// per tick (the run's true capacity bill).
    shard_us: u64,
    /// One-shot checkpoint-media faults armed per shard, consumed by the
    /// next sealed checkpoint write on that shard.
    armed_ckpt_faults: BTreeMap<usize, CorruptionKind>,
    /// Torn staged checkpoint writes caught by the verify-back.
    ckpt_torn_caught: u64,
    /// Sealed shard checkpoints that failed verification when read back
    /// (at-rest corruption got past the write protocol).
    ckpt_rejected: u64,
}

impl Cluster {
    /// Cluster simulated time (every shard agrees — they step together).
    pub fn now(&self) -> SimTime {
        self.shards[0].mgr.now()
    }

    /// Number of shards, live or not.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's manager.
    pub fn shard(&self, shard: usize) -> Result<&WorkloadManager, Error> {
        self.shards
            .get(shard)
            .map(|s| &s.mgr)
            .ok_or(Error::UnknownShard(shard))
    }

    /// Whether a shard's controller is currently up.
    pub fn shard_alive(&self, shard: usize) -> Result<bool, Error> {
        self.shards
            .get(shard)
            .map(Shard::alive)
            .ok_or(Error::UnknownShard(shard))
    }

    /// The failure detector's current verdict on `shard` (clusters built
    /// without a detector report every shard [`ShardHealth::Healthy`]).
    pub fn shard_health(&self, shard: usize) -> Result<ShardHealth, Error> {
        if shard >= self.shards.len() {
            return Err(Error::UnknownShard(shard));
        }
        Ok(self
            .detector
            .as_ref()
            .map_or(ShardHealth::Healthy, |d| d.health(shard)))
    }

    /// Requests routed by the front-end so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Requests moved off failed shards so far.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Requests shed at the cluster door so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Hedged re-dispatches issued so far.
    pub fn hedged(&self) -> u64 {
        self.hedged
    }

    /// Completions of already-won hedge races absorbed so far.
    pub fn duplicate_completions(&self) -> u64 {
        self.dup_completions
    }

    /// Hedged requests whose race has not been decided yet.
    pub fn open_hedge_races(&self) -> usize {
        self.hedger.as_ref().map_or(0, Hedger::races_open)
    }

    /// The shard's elastic lifecycle stage (always
    /// [`ShardStage::Active`] without [`ClusterBuilder::elastic`]).
    pub fn shard_stage(&self, shard: usize) -> Result<ShardStage, Error> {
        self.stages
            .get(shard)
            .copied()
            .ok_or(Error::UnknownShard(shard))
    }

    /// Shards the autoscaler has spawned so far.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Shards the autoscaler has drained and retired so far.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// Shard-hours spent so far, in seconds (one quantum per non-retired
    /// shard per tick).
    pub fn shard_seconds(&self) -> f64 {
        self.shard_us as f64 / 1_000_000.0
    }

    /// Whether the front-end may route new arrivals to `shard`: its
    /// controller is up and its lifecycle stage takes traffic.
    fn routable(&self, shard: usize) -> bool {
        self.shards[shard].alive() && self.stages[shard].routable()
    }

    /// Shards currently taking traffic.
    fn routable_count(&self) -> usize {
        (0..self.shards.len()).filter(|&i| self.routable(i)).count()
    }

    /// Attach a subscriber to the front-end's decision-event bus
    /// ([`WlmEvent::Routed`] / [`WlmEvent::Rerouted`] /
    /// [`WlmEvent::ClusterShed`] / [`WlmEvent::LinkDropped`] /
    /// [`WlmEvent::Redelivered`] / [`WlmEvent::ShardSuspected`] /
    /// [`WlmEvent::Hedged`] / [`WlmEvent::PartitionHealed`] /
    /// [`WlmEvent::ShardSpawned`] / [`WlmEvent::ShardDraining`] /
    /// [`WlmEvent::ShardRetired`]). Per-shard pipeline events stay on
    /// each shard's own bus.
    pub fn subscribe(&mut self, sub: Box<dyn EventSubscriber>) {
        self.events.borrow_mut().subscribe(sub);
    }

    /// The aggregate monitor view the global controller decides against.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            at: self.now(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardView {
                    shard: i,
                    alive: s.alive(),
                    stage: self.stages[i],
                    snapshot: s.mgr.live_snapshot().clone(),
                    inbox_depth: s.inbox.len(),
                })
                .collect(),
        }
    }

    /// Deterministic per-shard checkpoints (shard order) — the cluster's
    /// reproducibility fingerprint: same seed, same bytes.
    pub fn checkpoints(&self) -> Vec<ControllerState> {
        self.shards.iter().map(|s| s.mgr.checkpoint()).collect()
    }

    /// Sum of `workload`'s goal violations across shards.
    pub fn goal_violations_in(&self, workload: &str) -> u64 {
        self.shards
            .iter()
            .map(|s| s.mgr.goal_violations_in(workload))
            .sum()
    }

    /// Schedule a shard-controller crash at `at_secs`, lasting
    /// `dur_secs`. What happens to the shard's queued work is governed by
    /// the cluster's [`FailoverPolicy`].
    pub fn schedule_outage(
        &mut self,
        shard: usize,
        at_secs: f64,
        dur_secs: f64,
    ) -> Result<(), Error> {
        if shard >= self.shards.len() {
            return Err(Error::UnknownShard(shard));
        }
        self.outages.push(Outage {
            shard,
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs.max(0.0)),
            duration: SimDuration::from_secs_f64(dur_secs.max(0.0)),
            triggered: false,
            saved: None,
        });
        self.outages.sort_by_key(|o| (o.at, o.shard));
        Ok(())
    }

    /// Schedule a network-fabric fault at `at_secs` of simulated time.
    /// Requires a cluster built with [`ClusterBuilder::link`]; the shard
    /// must exist. Fault windows from
    /// [`FaultPlanBuilder`](wlm_chaos::FaultPlanBuilder) schedule their
    /// own recovery; a fault scheduled directly holds until a later event
    /// reverses it.
    pub fn schedule_net_fault(&mut self, at_secs: f64, fault: NetFault) -> Result<(), Error> {
        if self.link.is_none() {
            return Err(Error::Config(
                "network faults need a link layer (ClusterBuilder::link)".into(),
            ));
        }
        let shard = fault.shard();
        if shard >= self.shards.len() {
            return Err(Error::UnknownShard(shard));
        }
        let at = SimTime::ZERO + SimDuration::from_secs_f64(at_secs.max(0.0));
        self.net_schedule.push((NetFaultEvent { at, fault }, false));
        self.net_schedule.sort_by_key(|(e, _)| e.at);
        Ok(())
    }

    /// Schedule every network fault of a chaos [`FaultPlan`] (the
    /// `FaultPlanBuilder::link_loss` / `partition` / `gray_shard`
    /// windows). Engine and control-plane events in the plan are ignored
    /// here — they target single-manager chaos runs.
    pub fn apply_net_plan(&mut self, plan: &FaultPlan) -> Result<(), Error> {
        for ev in plan.net_events() {
            self.schedule_net_fault(ev.at.as_secs_f64(), ev.fault)?;
        }
        Ok(())
    }

    /// Inject an engine-level fault into one shard (the chaos drivers'
    /// fault vocabulary applied shard-locally).
    pub fn apply_engine_fault(&mut self, shard: usize, fault: EngineFault) -> Result<(), Error> {
        self.shards
            .get_mut(shard)
            .ok_or(Error::UnknownShard(shard))?
            .mgr
            .apply_engine_fault(fault)
    }

    /// Advance the whole cluster one engine quantum: apply due faults,
    /// pump the link, hedge suspected shards, route the window's arrivals
    /// through the cluster admission gate, then step every shard one
    /// control cycle.
    pub fn tick(&mut self, source: &mut dyn Source) {
        let from = self.now();
        let to = from + self.quantum;
        self.process_outages(from);
        for shard in &mut self.shards {
            shard.routed_cost = 0.0;
        }
        self.apply_due_net_faults(from, source);
        if let Some(link) = self.link.as_mut() {
            link.heartbeat(from);
        }
        self.pump_link(from);
        self.evaluate_detector(from);
        self.autoscale_step(from);
        // The capacity bill: every non-retired shard charges one quantum
        // this tick, whether it is warming, active, draining or down.
        let billed = self
            .stages
            .iter()
            .filter(|s| !matches!(s, ShardStage::Retired))
            .count() as u64;
        self.shard_us += billed * self.quantum.as_micros();

        // Arrivals parked during a full outage get first claim on a
        // rejoined shard, ahead of this window's arrivals.
        if self.routable_count() > 0 {
            while let Some(req) = self.parked.pop_front() {
                self.admit_or_route(req);
            }
        }
        for req in source.poll(from, to) {
            self.admit_or_route(req);
        }
        // Second pump: zero-delay deliveries land in their inbox before
        // the shards step, matching the direct fabric's timing.
        self.pump_link(from);

        for (shard, stage) in self.shards.iter_mut().zip(&self.stages) {
            if shard.alive() && !matches!(stage, ShardStage::Retired) {
                // Split borrow: the manager ticks against its own inbox.
                let Shard { mgr, inbox, .. } = shard;
                mgr.tick(inbox);
            } else {
                // Down and retired shards alike advance uncontrolled so
                // every engine clock stays on the shared quantum.
                shard.mgr.tick_uncontrolled();
            }
        }

        let fed: Vec<(usize, RequestId, String, SimTime)> =
            self.feedback.borrow_mut().drain(..).collect();
        for (shard, request, label, at) in fed {
            self.process_completion(shard, request, label, at, source);
        }
    }

    /// Run for `duration` of simulated time and report.
    pub fn run(&mut self, source: &mut dyn Source, duration: SimDuration) -> ClusterReport {
        let deadline = self.now() + duration;
        while self.now() < deadline {
            self.tick(source);
        }
        self.report()
    }

    /// Build the aggregate end-of-run report at the current time.
    pub fn report(&self) -> ClusterReport {
        let shards: Vec<RunReport> = self.shards.iter().map(|s| s.mgr.report()).collect();
        let completed: u64 = shards.iter().map(|r| r.completed).sum::<u64>() - self.dup_completions;
        let elapsed = shards.first().map(|r| r.elapsed_secs).unwrap_or(0.0);
        ClusterReport {
            elapsed_secs: elapsed,
            completed,
            killed: shards.iter().map(|r| r.killed).sum::<u64>() - self.reclaimed,
            rejected: shards.iter().map(|r| r.rejected).sum(),
            routed: self.routed,
            rerouted: self.rerouted,
            shed: self.shed,
            hedged: self.hedged,
            duplicate_completions: self.dup_completions,
            delivered: self.link.as_ref().map_or(0, |l| l.delivered),
            link_dropped: self.link.as_ref().map_or(0, |l| l.dropped),
            redelivered: self.redelivered,
            retransmits: self.link.as_ref().map_or(0, |l| l.retransmits),
            throughput: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            shard_seconds: self.shard_seconds(),
            shards,
        }
    }

    /// Whether every routable shard's queue pressure is at or above the
    /// shed threshold (no gate configured = never saturated).
    fn saturated(&self) -> bool {
        let Some(threshold) = self.shed_threshold else {
            return false;
        };
        let mut any_live = false;
        for (i, shard) in self.shards.iter().enumerate() {
            if !self.routable(i) {
                continue;
            }
            any_live = true;
            if shard.mgr.live_snapshot().queued + shard.inbox.len() < threshold {
                return false;
            }
        }
        any_live
    }

    fn emit(&self, event: WlmEvent) {
        let mut bus = self.events.borrow_mut();
        if bus.is_active() {
            bus.emit(event);
        }
    }

    /// Apply every scheduled network fault that is due at `now`.
    fn apply_due_net_faults(&mut self, now: SimTime, source: &mut dyn Source) {
        for idx in 0..self.net_schedule.len() {
            if self.net_schedule[idx].1 || self.net_schedule[idx].0.at > now {
                continue;
            }
            self.net_schedule[idx].1 = true;
            match self.net_schedule[idx].0.fault {
                NetFault::LinkLoss { shard, loss_p } => {
                    if let Some(link) = self.link.as_mut() {
                        link.set_loss(shard, if loss_p > 0.0 { Some(loss_p) } else { None });
                    }
                }
                NetFault::GrayShard {
                    shard,
                    delay_factor,
                } => {
                    if let Some(link) = self.link.as_mut() {
                        link.set_delay_factor(shard, delay_factor);
                    }
                }
                NetFault::Partition { shard, active } => {
                    if active {
                        if let Some(link) = self.link.as_mut() {
                            link.set_partitioned(shard, true);
                        }
                    } else {
                        self.heal_partition(shard, now, source);
                    }
                }
            }
        }
    }

    /// Heal a partition: reconnect the link, flush the completions that
    /// surfaced inside the partition through the exactly-once filter, and
    /// apply the hedge-loser cancellations that could not reach the shard
    /// while it was cut off.
    fn heal_partition(&mut self, shard: usize, now: SimTime, source: &mut dyn Source) {
        let was_partitioned = self.link.as_ref().is_some_and(|l| l.is_partitioned(shard));
        if let Some(link) = self.link.as_mut() {
            link.set_partitioned(shard, false);
        }
        if !was_partitioned {
            return;
        }
        let held = self.held_feedback.remove(&shard).unwrap_or_default();
        let flushed = held.len() as u64;
        let dups_before = self.dup_completions;
        for (request, label, at) in held {
            self.process_completion(shard, request, label, at, source);
        }
        let duplicates = self.dup_completions - dups_before;
        let mut cancelled = 0u64;
        for request in self.pending_cancels.remove(&shard).unwrap_or_default() {
            if self.cancel_copy(shard, request) {
                cancelled += 1;
            }
        }
        self.emit(WlmEvent::PartitionHealed {
            at: now,
            shard,
            flushed,
            duplicates,
            cancelled,
        });
    }

    /// Advance the link to `now` and absorb everything it surfaced:
    /// deliveries into shard inboxes (deduplicated by message id), acks
    /// into the accepted-work books, round trips into the detector, and
    /// losses into events.
    fn pump_link(&mut self, now: SimTime) {
        let Some(link) = self.link.as_mut() else {
            return;
        };
        let out = link.pump(now);
        for d in &out.dropped {
            self.emit(WlmEvent::LinkDropped {
                at: now,
                request: d.request,
                workload: d.workload.clone(),
                shard: d.shard,
            });
        }
        let mut acks = Vec::with_capacity(out.deliveries.len());
        for d in out.deliveries {
            let request = d.req.id;
            let workload = d.req.spec.label.clone();
            let fresh = self.shards[d.shard].inbox.accept(d.msg, d.req);
            if !fresh {
                self.redelivered += 1;
                self.emit(WlmEvent::Redelivered {
                    at: now,
                    request,
                    workload,
                    shard: d.shard,
                });
            }
            // Ack fresh deliveries and re-ack redeliveries alike: the
            // front-end must learn the message landed either way.
            acks.push((d.msg, d.shard, d.sent_at));
        }
        if let Some(link) = self.link.as_mut() {
            for (msg, shard, sent_at) in acks {
                link.post_ack(msg, shard, sent_at, now);
            }
        }
        for (shard, req) in out.acked {
            if self.hedger.is_some() && !self.finished.contains(&req.id) {
                let entry = self
                    .accepted
                    .entry(req.id)
                    .or_insert_with(|| (req.clone(), Vec::new()));
                if !entry.1.contains(&shard) {
                    entry.1.push(shard);
                }
            }
        }
        if let Some(det) = self.detector.as_mut() {
            for (shard, rtt) in out.rtt_samples {
                det.observe(shard, rtt, now);
            }
        }
        // With the acks absorbed, the link knows which message ids can
        // never be (re)delivered again — let every inbox forget them so
        // the dedup sets stay bounded by in-flight traffic.
        if let Some(link) = self.link.as_ref() {
            let floor = link.retired_before();
            for shard in &mut self.shards {
                shard.inbox.evict_seen_below(floor);
            }
        }
    }

    /// Re-classify every shard and hedge the in-flight work of newly
    /// suspected ones.
    fn evaluate_detector(&mut self, now: SimTime) {
        let Some(det) = self.detector.as_mut() else {
            return;
        };
        let transitions = det.evaluate(now);
        for (shard, health, score) in &transitions {
            self.emit(WlmEvent::ShardSuspected {
                at: now,
                shard: *shard,
                health: health.name(),
                score: *score,
            });
        }
        if self.hedger.is_none() {
            return;
        }
        for (shard, health, _) in transitions {
            match health {
                // Gray: the shard still answers; only re-send what it has
                // not acknowledged.
                ShardHealth::Gray => self.hedge_shard(shard, now, false),
                // Dead: also re-dispatch what it accepted but never
                // finished — from here it may never finish.
                ShardHealth::Dead => self.hedge_shard(shard, now, true),
                ShardHealth::Healthy => {}
            }
        }
    }

    /// Hedge a suspected shard's in-flight work onto healthy peers.
    fn hedge_shard(&mut self, from: usize, now: SimTime, include_accepted: bool) {
        let unacked = self
            .link
            .as_ref()
            .map(|l| l.unacked_to(from))
            .unwrap_or_default();
        for (msg, req) in unacked {
            if self.finished.contains(&req.id)
                || !self.hedger.as_ref().is_some_and(|h| h.may_hedge(req.id))
            {
                continue;
            }
            let Some(target) = self.hedge_target(from) else {
                continue;
            };
            // Stop retransmitting toward the suspect; copies already in
            // flight still count — dedup and the exactly-once filter
            // absorb whichever side loses the race.
            if let Some(link) = self.link.as_mut() {
                link.abandon(msg);
            }
            self.record_hedge(req, from, target, now);
        }
        if include_accepted {
            let candidates: Vec<Request> = self
                .accepted
                .values()
                .filter(|(req, shards)| shards.contains(&from) && !self.finished.contains(&req.id))
                .map(|(req, _)| req.clone())
                .collect();
            for req in candidates {
                if !self.hedger.as_ref().is_some_and(|h| h.may_hedge(req.id)) {
                    continue;
                }
                let Some(target) = self.hedge_target(from) else {
                    continue;
                };
                self.record_hedge(req, from, target, now);
            }
        }
    }

    /// Pick the hedge destination: the first trusted routable shard after
    /// the suspect, falling back to any routable shard. Never the suspect
    /// itself; `None` when it has no routable peer (a hedge to nowhere
    /// helps nobody — and a retired shard's controller is off).
    fn hedge_target(&self, from: usize) -> Option<usize> {
        let n = self.shards.len();
        let start = (from + 1) % n;
        if let Some(det) = self.detector.as_ref() {
            for probe in 0..n {
                let i = (start + probe) % n;
                if i != from && self.routable(i) && det.health(i) == ShardHealth::Healthy {
                    return Some(i);
                }
            }
        }
        (0..n)
            .map(|probe| (start + probe) % n)
            .find(|&i| i != from && self.routable(i))
    }

    /// Book and deliver one hedged copy.
    fn record_hedge(&mut self, req: Request, from: usize, to: usize, now: SimTime) {
        if let Some(h) = self.hedger.as_mut() {
            h.record(req.id, from, to);
        }
        self.hedged += 1;
        self.emit(WlmEvent::Hedged {
            at: now,
            request: req.id,
            workload: req.spec.label.clone(),
            from_shard: from,
            to_shard: to,
        });
        self.deliver(to, req);
    }

    /// Route one completion through the exactly-once filter: hold it if
    /// its shard is partitioned, forward the first completion of each
    /// request to the source, cancel hedge losers, absorb duplicates.
    fn process_completion(
        &mut self,
        shard: usize,
        request: RequestId,
        label: String,
        at: SimTime,
        source: &mut dyn Source,
    ) {
        if self.link.as_ref().is_some_and(|l| l.is_partitioned(shard)) {
            self.held_feedback
                .entry(shard)
                .or_default()
                .push((request, label, at));
            return;
        }
        // The choke point of exactly-once accounting: no matter which
        // path a completion arrives by (live drain, heal-time flush, a
        // hedge race), a request already forwarded is a duplicate.
        if self.finished.contains(&request) {
            self.dup_completions += 1;
            return;
        }
        let verdict = match self.hedger.as_mut() {
            Some(h) => h.on_completion(request, shard),
            None => CompletionVerdict::Untracked,
        };
        match verdict {
            CompletionVerdict::Untracked => {
                self.accepted.remove(&request);
                self.finished.insert(request);
                source.on_request_completion(request, &label, at);
            }
            CompletionVerdict::Winner { losers } => {
                self.accepted.remove(&request);
                self.finished.insert(request);
                source.on_request_completion(request, &label, at);
                for loser in losers {
                    self.cancel_copy(loser, request);
                }
            }
            CompletionVerdict::Duplicate => {
                self.dup_completions += 1;
            }
        }
    }

    /// Cancel the copy of `request` living on `shard` — on the wire, in
    /// the inbox, or inside the shard's controller (via checkpoint-strip
    /// and restore, whose reconciliation orphan-kills a running copy).
    /// Returns whether a copy was actually found and removed; cancels to
    /// a partitioned shard are parked and applied at heal.
    fn cancel_copy(&mut self, shard: usize, request: RequestId) -> bool {
        if self.link.as_ref().is_some_and(|l| l.is_partitioned(shard)) {
            self.pending_cancels.entry(shard).or_default().push(request);
            return false;
        }
        if let Some(link) = self.link.as_mut() {
            link.cancel_request(request, shard);
        }
        if self.shards[shard].inbox.remove(request) {
            return true;
        }
        let mut ckpt = self.shards[shard].mgr.checkpoint();
        let before =
            ckpt.wait_queue.len() + ckpt.deferred.len() + ckpt.running.len() + ckpt.suspended.len();
        ckpt.wait_queue.retain(|m| m.request.id != request);
        ckpt.deferred.retain(|m| m.request.id != request);
        ckpt.running.retain(|rc| rc.req.request.id != request);
        ckpt.suspended.retain(|s| s.req.request.id != request);
        let after =
            ckpt.wait_queue.len() + ckpt.deferred.len() + ckpt.running.len() + ckpt.suspended.len();
        if after == before {
            return false;
        }
        // Restoring the stripped checkpoint orphan-kills a running copy.
        // That kill is housekeeping — the race's winner already surfaced —
        // so it is reclaimed out of the aggregate `killed`.
        let recovery = self.shards[shard].mgr.restore(&ckpt);
        self.reclaimed += recovery.orphans_killed as u64;
        true
    }

    /// Cluster admission then routing for one arrival.
    fn admit_or_route(&mut self, req: Request) {
        if self.saturated() {
            self.shed += 1;
            self.emit(WlmEvent::ClusterShed {
                at: self.now(),
                request: req.id,
                workload: req.spec.label.clone(),
            });
            return;
        }
        match self.route_target(&req) {
            Ok(target) => {
                self.routed += 1;
                self.emit(WlmEvent::Routed {
                    at: self.now(),
                    request: req.id,
                    workload: req.spec.label.clone(),
                    shard: target,
                });
                self.deliver(target, req);
            }
            // No live shard: hold the arrival until one rejoins.
            Err(_) => self.parked.push_back(req),
        }
    }

    /// Charge the warm-partition model and put the request on its way to
    /// `target` — directly into the inbox, or onto the link when one is
    /// configured.
    fn deliver(&mut self, target: usize, mut req: Request) {
        let now = self.now();
        if let Some(cache) = &mut self.warm {
            cache.on_route(target, &mut req);
        }
        let est = self.routing_cost_model.estimate_spec(&req.spec);
        self.shards[target].routed_cost += est.timerons;
        match self.link.as_mut() {
            Some(link) => {
                link.send(now, target, req);
            }
            None => self.shards[target].inbox.push(req),
        }
    }

    /// Pick a live shard for the request per the routing policy. With a
    /// failure detector, shards it trusts are preferred; if none qualify,
    /// any live shard will do — suspicion degrades routing, it never
    /// deadlocks it.
    fn route_target(&mut self, req: &Request) -> Result<usize, Error> {
        if self.routable_count() == 0 {
            return Err(Error::NoLiveShards);
        }
        if let Some(det) = self.detector.as_ref() {
            let trusted: Vec<bool> = (0..self.shards.len())
                .map(|i| {
                    self.shards[i].alive()
                        && self.stages[i].routable()
                        && det.health(i) == ShardHealth::Healthy
                })
                .collect();
            if trusted.iter().any(|&t| t) {
                if let Some(target) = self.pick_target(req, &trusted) {
                    return Ok(target);
                }
            }
        }
        let routable: Vec<bool> = (0..self.shards.len()).map(|i| self.routable(i)).collect();
        self.pick_target(req, &routable).ok_or(Error::NoLiveShards)
    }

    /// The routing policy over an eligibility mask.
    fn pick_target(&mut self, req: &Request, allowed: &[bool]) -> Option<usize> {
        let n = self.shards.len();
        match self.routing {
            RoutingPolicy::RoundRobin => {
                for probe in 0..n {
                    let i = (self.rr_next + probe) % n;
                    if allowed[i] {
                        self.rr_next = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::LeastOutstandingCost => {
                let mut best: Option<(usize, f64)> = None;
                for (i, shard) in self.shards.iter().enumerate() {
                    if !allowed[i] {
                        continue;
                    }
                    let outstanding =
                        shard.mgr.live_snapshot().outstanding_cost() + shard.routed_cost;
                    // Strict `<` keeps ties on the lowest index.
                    if best.is_none_or(|(_, cost)| outstanding < cost) {
                        best = Some((i, outstanding));
                    }
                }
                best.map(|(i, _)| i)
            }
            RoutingPolicy::Affinity => {
                let home = (splitmix64(affinity_key(req)) % n as u64) as usize;
                (0..n).map(|probe| (home + probe) % n).find(|&i| allowed[i])
            }
        }
    }

    /// Trigger due outages and rejoin shards whose outage has elapsed.
    /// Arm a one-shot media fault against the next sealed checkpoint
    /// write on `shard` — the WaitForRestart freeze, the Reroute strip,
    /// or the autoscaler's retirement strip, whichever comes first.
    pub fn arm_checkpoint_fault(
        &mut self,
        shard: usize,
        kind: CorruptionKind,
    ) -> Result<(), Error> {
        if shard >= self.shards.len() {
            return Err(Error::UnknownShard(shard));
        }
        self.armed_ckpt_faults.insert(shard, kind);
        Ok(())
    }

    /// Sealed shard checkpoints that failed verification when read back.
    pub fn checkpoint_rejections(&self) -> u64 {
        self.ckpt_rejected
    }

    /// Torn staged checkpoint writes caught (and re-staged) by the
    /// write-verify step.
    pub fn checkpoint_torn_writes_caught(&self) -> u64 {
        self.ckpt_torn_caught
    }

    /// Write one sealed checkpoint image of `shard`'s controller through
    /// the simulated staged-write protocol. An armed torn write is
    /// caught by the verify-back and re-staged from memory; at-rest
    /// faults (bit flip, truncation) land after the swap and survive
    /// into the returned bytes.
    fn seal_shard_checkpoint(&mut self, shard: usize) -> Vec<u8> {
        let state = self.shards[shard].mgr.checkpoint();
        let payload = state.to_bytes();
        let mut sealed = seal(&payload, 0, state.cycle);
        match self.armed_ckpt_faults.remove(&shard) {
            Some(CorruptionKind::TornWrite) => {
                corrupt_bytes(&mut sealed, CorruptionKind::TornWrite);
                if open(&sealed).is_err() {
                    sealed = seal(&payload, 0, state.cycle);
                    self.ckpt_torn_caught += 1;
                }
            }
            Some(kind) => corrupt_bytes(&mut sealed, kind),
            None => {}
        }
        sealed
    }

    /// Read a sealed shard image back. On verification failure, emit
    /// [`WlmEvent::CheckpointRejected`] and return `None` — the caller
    /// must fall back to a cold restart rather than restore garbage.
    fn open_shard_checkpoint(&mut self, bytes: &[u8]) -> Option<ControllerState> {
        match open(bytes).and_then(|(_, payload)| ControllerState::from_bytes(payload)) {
            Ok(state) => Some(state),
            Err(e) => {
                self.ckpt_rejected += 1;
                self.emit(WlmEvent::CheckpointRejected {
                    at: self.now(),
                    generation: 0,
                    reason: e.to_string(),
                });
                None
            }
        }
    }

    fn process_outages(&mut self, now: SimTime) {
        // Rejoins first: an outage scheduled for this instant on a shard
        // that just finished one sees the shard up, not down.
        for shard in &mut self.shards {
            if shard.down_until.is_some_and(|t| t <= now) {
                shard.down_until = None;
            }
        }
        for idx in 0..self.outages.len() {
            if self.outages[idx].triggered || self.outages[idx].at > now {
                continue;
            }
            self.outages[idx].triggered = true;
            let shard = self.outages[idx].shard;
            if !self.shards[shard].alive() {
                continue; // already down: overlapping outages collapse
            }
            let until = now + self.outages[idx].duration;
            match self.failover {
                FailoverPolicy::WaitForRestart => {
                    // Freeze the controller's state for the rejoin; the
                    // queued work waits out the outage in place.
                    self.outages[idx].saved = Some(self.seal_shard_checkpoint(shard));
                    self.shards[shard].down_until = Some(until);
                }
                FailoverPolicy::Reroute => self.crash_and_reroute(shard, until),
            }
        }
        // WaitForRestart rejoin: restore the crash-time checkpoint. The
        // restore reconciliation re-queues whatever the engine finished or
        // lost while uncontrolled — at-least-once, never silently dropped.
        for idx in 0..self.outages.len() {
            let due = self.outages[idx].triggered
                && self.outages[idx].saved.is_some()
                && self.outages[idx].at + self.outages[idx].duration <= now;
            if due {
                let shard = self.outages[idx].shard;
                if let Some(bytes) = self.outages[idx].saved.take() {
                    match self.open_shard_checkpoint(&bytes) {
                        Some(ckpt) => {
                            self.shards[shard].mgr.restore(&ckpt);
                        }
                        None => {
                            // The frozen image is garbage: restoring it
                            // would wreck the books. The shard restarts
                            // cold — detectably, not silently. Its
                            // orphan kills are recovery housekeeping,
                            // not policy verdicts: the dead queries'
                            // requests simply never surface again.
                            let recovery = self.shards[shard].mgr.cold_restart();
                            self.reclaimed += recovery.orphans_killed as u64;
                        }
                    }
                }
            }
        }
    }

    /// [`FailoverPolicy::Reroute`] crash: checkpoint the dying controller,
    /// move every queued and in-flight request to the survivors, and
    /// restore a stripped checkpoint so the reconciliation orphan-kills
    /// the dead shard's live engine queries (their moved twins run
    /// elsewhere; nothing is lost, nothing completes twice).
    fn crash_and_reroute(&mut self, shard: usize, until: SimTime) {
        let sealed = self.seal_shard_checkpoint(shard);
        let mut moved: Vec<Request> = Vec::new();
        match self.open_shard_checkpoint(&sealed) {
            Some(ckpt) => {
                moved.extend(ckpt.wait_queue.iter().map(|m| m.request.clone()));
                moved.extend(ckpt.deferred.iter().map(|m| m.request.clone()));
                moved.extend(ckpt.running.iter().map(|rc| rc.req.request.clone()));
                moved.extend(ckpt.suspended.iter().map(|s| s.req.request.clone()));
                moved.extend(self.shards[shard].inbox.drain_all());
                // Messages on the wire toward the crashed shard whose
                // requests exist nowhere else move too; accepted ones are
                // already covered by the checkpoint sets or the inbox
                // drain above.
                if let Some(link) = self.link.as_mut() {
                    moved.extend(link.take_unaccepted(shard));
                }
                let stripped = ControllerState {
                    wait_queue: Vec::new(),
                    deferred: Vec::new(),
                    running: Vec::new(),
                    suspended: Vec::new(),
                    ..ckpt
                };
                // The stripped restore orphan-kills every engine query the
                // dead shard was running. Those kills are resource
                // reclamation — the moved twins finish on the survivors —
                // so they are excluded from the cluster's aggregate
                // `killed` count.
                let recovery = self.shards[shard].mgr.restore(&stripped);
                self.reclaimed += recovery.orphans_killed as u64;
            }
            None => {
                // The crash-time image failed verification: the dead
                // controller's queue contents are unrecoverable. Only the
                // work held outside the shard — its inbox and undelivered
                // link traffic — can still move; the rest is detectably
                // lost (the conservation invariant the explorer checks).
                moved.extend(self.shards[shard].inbox.drain_all());
                if let Some(link) = self.link.as_mut() {
                    moved.extend(link.take_unaccepted(shard));
                }
                // Unlike the verified strip, these orphan kills have no
                // moved twins: the dead queries' requests never surface
                // again. Classing them as recovery reclaims (rather
                // than policy kills) keeps that loss visible to the
                // work-conservation check instead of laundering it
                // through the kill books.
                let recovery = self.shards[shard].mgr.cold_restart();
                self.reclaimed += recovery.orphans_killed as u64;
            }
        }
        self.shards[shard].down_until = Some(until);

        for req in moved {
            match self.route_target(&req) {
                Ok(target) => {
                    self.rerouted += 1;
                    self.emit(WlmEvent::Rerouted {
                        at: self.now(),
                        request: req.id,
                        workload: req.spec.label.clone(),
                        from_shard: shard,
                        to_shard: target,
                    });
                    self.deliver(target, req);
                }
                Err(_) => self.parked.push_back(req),
            }
        }
    }

    /// Advance every shard's lifecycle stage, then feed the autoscaler
    /// one pressure sample and act on its verdict. A no-op for clusters
    /// built without [`ClusterBuilder::elastic`].
    fn autoscale_step(&mut self, now: SimTime) {
        let Some(cfg) = self.elastic.as_ref().map(|a| *a.config()) else {
            return;
        };
        // Lifecycle first: spawned shards open for traffic, warmed shards
        // graduate, due drains retire.
        for i in 0..self.shards.len() {
            match self.stages[i] {
                ShardStage::Spawning => {
                    self.stages[i] = ShardStage::Warming {
                        until: now + SimDuration::from_secs_f64(cfg.warmup_secs.max(0.0)),
                    };
                }
                ShardStage::Warming { until } if until <= now => {
                    self.stages[i] = ShardStage::Active;
                }
                ShardStage::Draining { deadline }
                    // Early out the moment the shard is empty; otherwise
                    // the grace deadline force-moves the residue.
                    if (deadline <= now || self.shard_idle(i)) => {
                        self.retire_now(i, now);
                    }
                _ => {}
            }
        }
        // The pressure signal: mean over routable shards of the max of
        // CPU utilization, disk utilization, and normalized queue depth.
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            if !self.routable(i) {
                continue;
            }
            let snap = shard.mgr.live_snapshot();
            let queue = (snap.queued + shard.inbox.len()) as f64 / cfg.queue_target.max(1.0);
            sum += snap.cpu_utilization.max(snap.io_utilization).max(queue);
            n += 1;
        }
        if n == 0 {
            // Nothing routable is failover's problem, not scaling's.
            return;
        }
        let decision = self
            .elastic
            .as_mut()
            .and_then(|a| a.observe(sum / n as f64));
        match decision {
            Some(ScaleDecision::Up) => self.spawn_shard(now),
            Some(ScaleDecision::Down) => self.drain_shard(now),
            None => {}
        }
    }

    /// Open the lowest-index retired shard: one tick of boot latency,
    /// then warming with an evicted buffer pool.
    fn spawn_shard(&mut self, now: SimTime) {
        let found = (0..self.shards.len())
            .find(|&i| matches!(self.stages[i], ShardStage::Retired) && self.shards[i].alive());
        let Some(i) = found else {
            return; // pool exhausted: the cluster is at full size
        };
        self.stages[i] = ShardStage::Spawning;
        // The spawned shard restarts cold: every partition routed to it
        // pays the full fault-in until the LRU refills — the scale-up tax
        // experiment E24 charges against the shard-hours saved.
        if let Some(cache) = self.warm.as_mut() {
            cache.evict_shard(i);
        }
        self.scale_ups += 1;
        self.emit(WlmEvent::ShardSpawned { at: now, shard: i });
    }

    /// Put the highest-index active shard into its drain: it stops
    /// receiving routes but keeps running until idle or the grace
    /// deadline. Never drains below [`ElasticConfig::min_shards`].
    fn drain_shard(&mut self, now: SimTime) {
        let Some(cfg) = self.elastic.as_ref().map(|a| *a.config()) else {
            return;
        };
        if self.routable_count() <= cfg.min_shards {
            return;
        }
        let found = (0..self.shards.len())
            .rev()
            .find(|&i| matches!(self.stages[i], ShardStage::Active) && self.shards[i].alive());
        let Some(i) = found else {
            return;
        };
        self.stages[i] = ShardStage::Draining {
            deadline: now + SimDuration::from_secs_f64(cfg.drain_grace_secs.max(0.0)),
        };
        self.scale_downs += 1;
        self.emit(WlmEvent::ShardDraining { at: now, shard: i });
    }

    /// Whether a draining shard has nothing left anywhere the front-end
    /// can see: controller queues, engine, inbox, unacked link traffic.
    /// (Optimistic about suspended queries and parked retries — both are
    /// invisible to the live snapshot — but that is safe: `retire_now`
    /// moves them with the checkpoint-strip either way.)
    fn shard_idle(&self, i: usize) -> bool {
        let snap = self.shards[i].mgr.live_snapshot();
        snap.queued == 0
            && snap.running == 0
            && snap.blocked == 0
            && self.shards[i].inbox.is_empty()
            && self
                .link
                .as_ref()
                .is_none_or(|l| l.unacked_to(i).is_empty())
    }

    /// Retire a drained shard now: strip its checkpoint, move every
    /// residual request — queued, deferred, running, suspended, parked
    /// retries, inbox, undelivered link traffic — onto the survivors
    /// through the crash path's exactly-once discipline, and take it out
    /// of service. No request is lost; any copy the engine was still
    /// running is orphan-killed while its moved twin finishes elsewhere.
    fn retire_now(&mut self, shard: usize, now: SimTime) {
        let sealed = self.seal_shard_checkpoint(shard);
        let mut moved: Vec<Request> = Vec::new();
        match self.open_shard_checkpoint(&sealed) {
            Some(ckpt) => {
                moved.extend(ckpt.wait_queue.iter().map(|m| m.request.clone()));
                moved.extend(ckpt.deferred.iter().map(|m| m.request.clone()));
                moved.extend(ckpt.running.iter().map(|rc| rc.req.request.clone()));
                moved.extend(ckpt.suspended.iter().map(|s| s.req.request.clone()));
                moved.extend(self.shards[shard].inbox.drain_all());
                if let Some(link) = self.link.as_mut() {
                    moved.extend(link.take_unaccepted(shard));
                }
                let mut stripped = ControllerState {
                    wait_queue: Vec::new(),
                    deferred: Vec::new(),
                    running: Vec::new(),
                    suspended: Vec::new(),
                    ..ckpt
                };
                // Unlike a crash (where the shard rejoins and releases
                // them itself), a retired controller would never release
                // its parked retries — they move with everything else.
                if let Some(res) = stripped.resilience.as_mut() {
                    moved.extend(res.retry_queue.drain(..).map(|r| r.req.request));
                }
                let recovery = self.shards[shard].mgr.restore(&stripped);
                self.reclaimed += recovery.orphans_killed as u64;
            }
            None => {
                // Verification failed at retirement: the drained shard's
                // residue (normally empty by now, but the grace deadline
                // can force-retire a busy one) cannot be read back. Move
                // what lives outside the controller and let the explorer's
                // conservation check surface anything lost.
                moved.extend(self.shards[shard].inbox.drain_all());
                if let Some(link) = self.link.as_mut() {
                    moved.extend(link.take_unaccepted(shard));
                }
                let recovery = self.shards[shard].mgr.cold_restart();
                self.reclaimed += recovery.orphans_killed as u64;
            }
        }
        self.stages[shard] = ShardStage::Retired;
        let mut rerouted = 0usize;
        for req in moved {
            match self.route_target(&req) {
                Ok(target) => {
                    self.rerouted += 1;
                    rerouted += 1;
                    self.emit(WlmEvent::Rerouted {
                        at: now,
                        request: req.id,
                        workload: req.spec.label.clone(),
                        from_shard: shard,
                        to_shard: target,
                    });
                    self.deliver(target, req);
                }
                Err(_) => self.parked.push_back(req),
            }
        }
        self.emit(WlmEvent::ShardRetired {
            at: now,
            shard,
            rerouted,
        });
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.shards.len())
            .field("routing", &self.routing)
            .field("failover", &self.failover)
            .field("link", &self.link.is_some())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_workload::generators::{BiSource, OltpSource};

    fn small_builder(_shard: usize) -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 2,
                disk_pages_per_sec: 20_000,
                memory_mb: 1_024,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    fn cluster(shards: usize, routing: RoutingPolicy) -> Cluster {
        ClusterBuilder::new()
            .shards(shards)
            .routing(routing)
            .shard_builder(Box::new(small_builder))
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn builder_rejects_zero_shards() {
        let err = ClusterBuilder::new().shards(0).build().unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn builder_rejects_inconsistent_fabric_stack() {
        let err = ClusterBuilder::new()
            .shards(2)
            .failure_detector(DetectorConfig::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
        let err = ClusterBuilder::new()
            .shards(2)
            .link(LinkConfig::default())
            .hedged_redispatch(HedgeConfig::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn round_robin_spreads_and_completes_work() {
        let mut c = cluster(3, RoutingPolicy::RoundRobin);
        let mut src = OltpSource::new(60.0, 7);
        let report = c.run(&mut src, SimDuration::from_secs(5));
        assert!(report.completed > 0, "work flowed through the cluster");
        assert_eq!(report.routed, c.routed());
        for shard in &report.shards {
            assert!(
                shard.completed > 0,
                "round-robin must exercise every shard: {report:?}"
            );
        }
    }

    #[test]
    fn affinity_routing_is_a_stable_function_of_the_partition() {
        let mut c = cluster(4, RoutingPolicy::Affinity);
        // Same partition key, different requests: always the same shard.
        let mut gen = OltpSource::new(100.0, 3).with_partitions(8);
        let reqs = gen.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(1));
        assert!(!reqs.is_empty());
        let mut by_partition: std::collections::BTreeMap<u64, usize> = Default::default();
        for req in &reqs {
            let target = c.route_target(req).expect("all shards live");
            let partition = req.shard_key.expect("partitioned source");
            let prior = by_partition.entry(partition).or_insert(target);
            assert_eq!(*prior, target, "partition {partition} moved shards");
        }
        assert!(
            by_partition
                .values()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1,
            "8 partitions must spread over more than one of 4 shards"
        );
    }

    #[test]
    fn cluster_run_is_deterministic_per_seed() {
        let run = |routing| {
            let mut c = cluster(3, routing);
            let mut src = OltpSource::new(70.0, 42).with_partitions(6);
            c.run(&mut src, SimDuration::from_secs(3));
            c.checkpoints()
                .iter()
                .map(|ckpt| ckpt.to_bytes())
                .collect::<Vec<_>>()
        };
        for routing in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstandingCost,
            RoutingPolicy::Affinity,
        ] {
            assert_eq!(run(routing), run(routing), "{}", routing.name());
        }
    }

    #[test]
    fn perfect_link_is_byte_identical_to_direct_fabric() {
        // A default (zero-delay, zero-loss) link must not perturb the
        // simulation at all: same checkpoints, byte for byte.
        let run = |with_link: bool| {
            let mut b = ClusterBuilder::new()
                .shards(3)
                .routing(RoutingPolicy::LeastOutstandingCost)
                .shard_builder(Box::new(small_builder));
            if with_link {
                b = b.link(LinkConfig::default());
            }
            let mut c = b.build().expect("valid configuration");
            let mut src = OltpSource::new(70.0, 42).with_partitions(6);
            c.run(&mut src, SimDuration::from_secs(3));
            c.checkpoints()
                .iter()
                .map(|ckpt| ckpt.to_bytes())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn gray_shard_is_suspected_hedged_and_forgiven() {
        let mut c = ClusterBuilder::new()
            .shards(2)
            .routing(RoutingPolicy::RoundRobin)
            .shard_builder(Box::new(small_builder))
            .link(LinkConfig {
                delay_secs: 0.02,
                retransmit_secs: 5.0,
                seed: 3,
                ..LinkConfig::default()
            })
            .failure_detector(DetectorConfig {
                expected_rtt_secs: 0.05,
                gray_score: 4.0,
                recover_score: 2.0,
                dead_silence_secs: 60.0,
                ema_alpha: 0.4,
            })
            .hedged_redispatch(HedgeConfig::default())
            .build()
            .expect("valid configuration");
        // Shard 1's link turns into a straggler for t in [2, 8).
        c.schedule_net_fault(
            2.0,
            NetFault::GrayShard {
                shard: 1,
                delay_factor: 100.0,
            },
        )
        .expect("valid fault");
        c.schedule_net_fault(
            8.0,
            NetFault::GrayShard {
                shard: 1,
                delay_factor: 1.0,
            },
        )
        .expect("valid fault");
        let mut src = OltpSource::new(40.0, 5);
        let deadline = c.now() + SimDuration::from_secs(16);
        let mut saw_gray = false;
        while c.now() < deadline {
            c.tick(&mut src);
            if c.shard_health(1).expect("shard exists") == ShardHealth::Gray {
                saw_gray = true;
            }
        }
        assert!(saw_gray, "the straggler window must trip the detector");
        assert_eq!(
            c.shard_health(1).expect("shard exists"),
            ShardHealth::Healthy,
            "the verdict recovers after the window"
        );
        assert!(c.hedged() > 0, "suspicion must hedge in-flight work");
        let report = c.report();
        assert!(report.completed > 0);
        assert_eq!(report.hedged, c.hedged());
    }

    #[test]
    fn net_fault_scheduling_is_validated() {
        let mut direct = cluster(2, RoutingPolicy::RoundRobin);
        let err = direct
            .schedule_net_fault(
                1.0,
                NetFault::Partition {
                    shard: 0,
                    active: true,
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");

        let mut linked = ClusterBuilder::new()
            .shards(2)
            .shard_builder(Box::new(small_builder))
            .link(LinkConfig::default())
            .build()
            .expect("valid configuration");
        assert_eq!(
            linked
                .schedule_net_fault(
                    1.0,
                    NetFault::Partition {
                        shard: 7,
                        active: true
                    }
                )
                .unwrap_err(),
            Error::UnknownShard(7)
        );
        assert!(linked
            .schedule_net_fault(
                1.0,
                NetFault::LinkLoss {
                    shard: 1,
                    loss_p: 0.5
                }
            )
            .is_ok());
    }

    #[test]
    fn outage_on_unknown_shard_is_rejected() {
        let mut c = cluster(2, RoutingPolicy::RoundRobin);
        assert_eq!(
            c.schedule_outage(5, 1.0, 1.0).unwrap_err(),
            Error::UnknownShard(5)
        );
        assert!(matches!(c.shard(9), Err(Error::UnknownShard(9))));
    }

    #[test]
    fn reroute_failover_moves_queued_work_to_survivors() {
        let mut c = cluster(2, RoutingPolicy::RoundRobin);
        c.schedule_outage(0, 1.0, 2.0).expect("valid shard");
        // Enough concurrent work that the crash instant finds requests
        // in flight on shard 0 — sub-millisecond OLTP at low rates
        // leaves nothing to move.
        let mut src = OltpSource::new(4000.0, 11);
        let report = c.run(&mut src, SimDuration::from_secs(6));
        assert!(report.rerouted > 0, "crash moved work: {report:?}");
        assert!(c.shard_alive(0).unwrap(), "shard 0 rejoined");
        assert!(report.completed > 0);
    }

    #[test]
    fn shed_gate_drops_when_every_shard_is_saturated() {
        let mut c = ClusterBuilder::new()
            .shards(2)
            .shard_builder(Box::new(|_| {
                WlmBuilder::new().engine(EngineConfig {
                    cores: 1,
                    disk_pages_per_sec: 200,
                    memory_mb: 256,
                    ..Default::default()
                })
            }))
            .shed_when_all_queued_at_least(4)
            .build()
            .expect("valid configuration");
        // Far beyond two tiny shards' capacity: queues fill, the gate opens.
        let mut src = OltpSource::new(500.0, 5);
        let report = c.run(&mut src, SimDuration::from_secs(4));
        assert!(report.shed > 0, "saturation must shed: {report:?}");
    }

    #[test]
    fn elastic_validation_bounds_min_shards() {
        for bad in [0usize, 5] {
            let err = ClusterBuilder::new()
                .shards(4)
                .elastic(ElasticConfig {
                    min_shards: bad,
                    ..ElasticConfig::default()
                })
                .build()
                .unwrap_err();
            assert!(matches!(err, Error::Config(_)), "{err}");
        }
    }

    #[test]
    fn non_elastic_cluster_is_all_active() {
        let c = cluster(2, RoutingPolicy::RoundRobin);
        assert_eq!(c.shard_stage(0).unwrap(), ShardStage::Active);
        assert_eq!(c.shard_stage(1).unwrap(), ShardStage::Active);
        assert_eq!(c.shard_stage(9).unwrap_err(), Error::UnknownShard(9));
        assert_eq!(c.scale_ups(), 0);
        assert_eq!(c.scale_downs(), 0);
    }

    #[test]
    fn elastic_pool_scales_with_pressure_and_bills_fewer_shard_hours() {
        let el = ElasticConfig {
            min_shards: 1,
            sustain_ticks: 5,
            calm_ticks: 20,
            warmup_secs: 0.5,
            drain_grace_secs: 2.0,
            queue_target: 8.0,
            ..ElasticConfig::default()
        };
        let mut c = ClusterBuilder::new()
            .shards(4)
            .routing(RoutingPolicy::LeastOutstandingCost)
            .shard_builder(Box::new(small_builder))
            .elastic(el)
            .build()
            .expect("valid configuration");
        assert_eq!(c.shard_stage(0).unwrap(), ShardStage::Active);
        assert_eq!(
            c.shard_stage(3).unwrap(),
            ShardStage::Retired,
            "the pool beyond min_shards starts retired"
        );
        // A flash crowd one small shard cannot absorb: queues deepen,
        // pressure sustains, the pool opens up.
        let mut hot = BiSource::new(10.0, 9);
        c.run(&mut hot, SimDuration::from_secs(12));
        assert!(c.scale_ups() > 0, "surge must spawn shards: {c:?}");
        // Calm: the autoscaler drains back toward the floor.
        let mut quiet = OltpSource::new(0.5, 10);
        let report = c.run(&mut quiet, SimDuration::from_secs(40));
        assert!(c.scale_downs() > 0, "calm must drain shards: {report:?}");
        assert!(report.completed > 0);
        assert!(
            report.shard_seconds < 4.0 * report.elapsed_secs,
            "elasticity must bill fewer shard-hours than the static pool: {report:?}"
        );
        assert!(
            report.shard_seconds >= report.elapsed_secs,
            "the min_shards floor is always billed: {report:?}"
        );
        assert_eq!(report.scale_ups, c.scale_ups());
        assert_eq!(report.scale_downs, c.scale_downs());
    }

    #[test]
    fn elastic_run_is_deterministic_per_seed() {
        let run = || {
            let mut c = ClusterBuilder::new()
                .shards(3)
                .routing(RoutingPolicy::LeastOutstandingCost)
                .shard_builder(Box::new(small_builder))
                .elastic(ElasticConfig {
                    min_shards: 1,
                    sustain_ticks: 5,
                    calm_ticks: 20,
                    queue_target: 8.0,
                    ..ElasticConfig::default()
                })
                .build()
                .expect("valid configuration");
            let mut src = OltpSource::new(150.0, 21).with_partitions(6);
            c.run(&mut src, SimDuration::from_secs(8));
            (
                c.scale_ups(),
                c.scale_downs(),
                c.checkpoints()
                    .iter()
                    .map(|ckpt| ckpt.to_bytes())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run(), "the scaling schedule is seed-deterministic");
    }

    #[test]
    fn cluster_snapshot_reflects_shard_state() {
        let mut c = cluster(2, RoutingPolicy::LeastOutstandingCost);
        let mut src = OltpSource::new(50.0, 9);
        c.run(&mut src, SimDuration::from_secs(1));
        let snap = c.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.live_shards(), 2);
        assert_eq!(snap.at, c.now());
    }

    #[test]
    fn armed_bitflip_forces_a_cold_rejoin_after_wait_for_restart() {
        let mut c = ClusterBuilder::new()
            .shards(2)
            .routing(RoutingPolicy::RoundRobin)
            .failover(FailoverPolicy::WaitForRestart)
            .shard_builder(Box::new(small_builder))
            .build()
            .expect("valid configuration");
        c.schedule_outage(0, 1.0, 2.0).expect("valid shard");
        c.arm_checkpoint_fault(0, CorruptionKind::BitFlip)
            .expect("valid shard");
        let trace = wlm_core::events::RingRecorder::new(1 << 16);
        c.subscribe(Box::new(trace.clone()));
        let mut src = OltpSource::new(2_000.0, 11);
        let report = c.run(&mut src, SimDuration::from_secs(6));
        assert_eq!(
            c.checkpoint_rejections(),
            1,
            "the bit-flipped rejoin image must fail verification"
        );
        assert!(
            trace
                .events()
                .iter()
                .any(|e| e.kind() == "checkpoint_rejected"),
            "the rejection must be visible on the event bus"
        );
        assert!(c.shard_alive(0).unwrap(), "shard 0 rejoined, cold");
        assert!(report.completed > 0, "survivors kept serving: {report:?}");
    }

    #[test]
    fn armed_torn_write_is_caught_by_the_verify_back() {
        let mut c = ClusterBuilder::new()
            .shards(2)
            .routing(RoutingPolicy::RoundRobin)
            .failover(FailoverPolicy::WaitForRestart)
            .shard_builder(Box::new(small_builder))
            .build()
            .expect("valid configuration");
        c.schedule_outage(0, 1.0, 2.0).expect("valid shard");
        c.arm_checkpoint_fault(0, CorruptionKind::TornWrite)
            .expect("valid shard");
        let mut src = OltpSource::new(2_000.0, 11);
        let report = c.run(&mut src, SimDuration::from_secs(6));
        assert_eq!(
            c.checkpoint_torn_writes_caught(),
            1,
            "the staged-write verify must catch the torn copy"
        );
        assert_eq!(
            c.checkpoint_rejections(),
            0,
            "a caught torn write never reaches the read path"
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn corrupted_reroute_strip_loses_queued_work_detectably() {
        let run = |corrupt: bool| {
            let mut c = cluster(2, RoutingPolicy::RoundRobin);
            c.schedule_outage(0, 1.0, 2.0).expect("valid shard");
            if corrupt {
                c.arm_checkpoint_fault(0, CorruptionKind::BitFlip)
                    .expect("valid shard");
            }
            let mut src = OltpSource::new(4_000.0, 11);
            let report = c.run(&mut src, SimDuration::from_secs(6));
            (report.rerouted, c.checkpoint_rejections())
        };
        let (clean_rerouted, clean_rejected) = run(false);
        let (bad_rerouted, bad_rejected) = run(true);
        assert_eq!(clean_rejected, 0);
        assert_eq!(bad_rejected, 1, "the strip image must fail verification");
        assert!(
            clean_rerouted > 0,
            "the crash instant must find work in flight"
        );
        assert!(
            bad_rerouted < clean_rerouted,
            "an unreadable strip image can only move work held outside the \
             controller ({bad_rerouted} rerouted vs {clean_rerouted} clean)"
        );
    }
}
