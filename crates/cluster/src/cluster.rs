//! The cluster: N engine shards under one global front-end controller.
//!
//! [`Cluster::tick`] is the hierarchical control cycle. On the shared
//! engine quantum it (1) processes due shard outages and rejoins,
//! (2) polls the cluster-level source for the window's arrivals,
//! (3) passes each arrival through the cluster admission gate (shedding
//! when every live shard is saturated) and routes the survivors to shard
//! inboxes, (4) steps every shard's [`WorkloadManager`] exactly one
//! control cycle (down shards advance via
//! [`WorkloadManager::tick_uncontrolled`] — the data plane outlives its
//! controller), and (5) forwards completion feedback to the source. Every
//! step is deterministic, so an N-shard run is reproducible per seed down
//! to byte-identical shard checkpoints.
//!
//! Shard failure reuses the crash-tolerant control plane:
//! [`FailoverPolicy::Reroute`] checkpoints the dying controller, moves its
//! queued work (wait queue, admission gate, inbox, and the in-flight
//! running/suspended sets) onto the survivors, and restores a stripped
//! checkpoint so the restore reconciliation orphan-kills what the dead
//! shard's engine was running — each moved request runs again elsewhere,
//! none is lost, none completes twice. [`FailoverPolicy::WaitForRestart`]
//! is the ablation baseline: the work stays put and the shard restores its
//! full checkpoint when it rejoins.

use crate::inbox::{FeedbackBuffer, InboxSource};
use crate::routing::{affinity_key, splitmix64, RoutingPolicy};
use crate::snapshot::{ClusterSnapshot, ShardView};
use crate::warm::WarmCache;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use wlm_core::api::WlmBuilder;
use wlm_core::events::{EventBus, EventSubscriber, WlmEvent};
use wlm_core::manager::{ControllerState, RunReport, WorkloadManager};
use wlm_core::Error;
use wlm_dbsim::engine::EngineFault;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::Source;
use wlm_workload::request::Request;

/// What the front-end does with a failed shard's queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum FailoverPolicy {
    /// Move the dead shard's queued and in-flight work onto the surviving
    /// shards at crash time (bounded SLA damage, survivors absorb load).
    Reroute,
    /// Leave the work where it is; the shard restores its checkpoint when
    /// it rejoins (the work waits out the outage).
    WaitForRestart,
}

impl FailoverPolicy {
    /// Short policy name (stable; used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            FailoverPolicy::Reroute => "reroute",
            FailoverPolicy::WaitForRestart => "wait_for_restart",
        }
    }
}

/// One shard: a per-shard workload manager plus its arrival inbox.
struct Shard {
    mgr: WorkloadManager,
    inbox: InboxSource,
    /// `Some(t)` while the shard's controller is down; it rejoins at `t`.
    down_until: Option<SimTime>,
    /// Estimated cost routed to this shard in the current tick, not yet
    /// visible in the manager's snapshot (least-outstanding-cost routing).
    routed_cost: f64,
}

impl Shard {
    fn alive(&self) -> bool {
        self.down_until.is_none()
    }
}

/// A scheduled shard-controller outage.
struct Outage {
    shard: usize,
    at: SimTime,
    duration: SimDuration,
    triggered: bool,
    /// The full crash-time checkpoint, held for the shard's rejoin under
    /// [`FailoverPolicy::WaitForRestart`].
    saved: Option<ControllerState>,
}

/// End-of-run summary aggregated over every shard.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Simulated run length, seconds.
    pub elapsed_secs: f64,
    /// Total completions across shards.
    pub completed: u64,
    /// Total kills across shards, *excluding* crash-recovery reclaims of
    /// queries whose rerouted twins ran elsewhere (those are resource
    /// housekeeping, not workload-management outcomes — each such request
    /// still surfaces exactly once in the cluster's books). The per-shard
    /// rows in [`Self::shards`] keep the raw counts.
    pub killed: u64,
    /// Total shard-level rejections.
    pub rejected: u64,
    /// Requests routed by the front-end.
    pub routed: u64,
    /// Requests moved off failed shards.
    pub rerouted: u64,
    /// Requests shed at the cluster door.
    pub shed: u64,
    /// Aggregate throughput, completions/second.
    pub throughput: f64,
    /// Per-shard run reports, in shard order.
    pub shards: Vec<RunReport>,
}

/// Typed facade for assembling a [`Cluster`] — the cluster-level
/// counterpart of [`WlmBuilder`].
pub struct ClusterBuilder {
    shards: usize,
    routing: RoutingPolicy,
    failover: FailoverPolicy,
    shed_threshold: Option<usize>,
    warm_cache: Option<(usize, u64)>,
    routing_cost_model: CostModel,
    factory: Option<Box<dyn Fn(usize) -> WlmBuilder>>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("shards", &self.shards)
            .field("routing", &self.routing)
            .field("failover", &self.failover)
            .field("shed_threshold", &self.shed_threshold)
            .field("warm_cache", &self.warm_cache)
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// A single-shard cluster with round-robin routing, re-route failover,
    /// no shed gate and no warm-partition model.
    pub fn new() -> Self {
        ClusterBuilder {
            shards: 1,
            routing: RoutingPolicy::RoundRobin,
            failover: FailoverPolicy::Reroute,
            shed_threshold: None,
            warm_cache: None,
            routing_cost_model: CostModel::oracle(),
            factory: None,
        }
    }

    /// Number of shards.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Routing policy for arriving requests.
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.routing = policy;
        self
    }

    /// What happens to a failed shard's queued work.
    pub fn failover(mut self, policy: FailoverPolicy) -> Self {
        self.failover = policy;
        self
    }

    /// Open the cluster shed gate when every live shard's queue pressure
    /// (controller queue plus inbox) reaches `threshold`.
    pub fn shed_when_all_queued_at_least(mut self, threshold: usize) -> Self {
        self.shed_threshold = Some(threshold.max(1));
        self
    }

    /// Enable the warm-partition model: each shard keeps up to `capacity`
    /// partitions warm; a cold-routed partition charges its request a
    /// `cold_working_set_pages` working set (see [`WarmCache`]).
    pub fn warm_cache(mut self, capacity: usize, cold_working_set_pages: u64) -> Self {
        self.warm_cache = Some((capacity, cold_working_set_pages));
        self
    }

    /// Cost model the least-outstanding-cost router estimates arrivals
    /// with (default: a perfect oracle).
    pub fn routing_cost_model(mut self, model: CostModel) -> Self {
        self.routing_cost_model = model;
        self
    }

    /// Per-shard manager configuration: `f(shard)` returns the
    /// [`WlmBuilder`] the shard's manager is built from. Without a
    /// factory, every shard gets `WlmBuilder::new()` defaults.
    pub fn shard_builder(mut self, f: Box<dyn Fn(usize) -> WlmBuilder>) -> Self {
        self.factory = Some(f);
        self
    }

    /// Validate and assemble the cluster.
    ///
    /// Fails with [`Error::Config`] when the shard count is zero, a
    /// shard's own builder fails validation, or the shards disagree on the
    /// engine quantum (the two-level controller steps one shared clock).
    pub fn build(self) -> Result<Cluster, Error> {
        if self.shards == 0 {
            return Err(Error::Config("cluster needs at least one shard".into()));
        }
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut shards = Vec::with_capacity(self.shards);
        let mut quantum = None;
        for i in 0..self.shards {
            let builder = match &self.factory {
                Some(f) => f(i),
                None => WlmBuilder::new(),
            };
            let mgr = builder.build()?;
            let q = mgr.engine().config().quantum;
            match quantum {
                None => quantum = Some(q),
                Some(q0) if q0 != q => {
                    return Err(Error::Config(format!(
                        "shard {i} quantum {}us disagrees with shard 0 quantum {}us",
                        q.as_micros(),
                        q0.as_micros()
                    )));
                }
                Some(_) => {}
            }
            shards.push(Shard {
                mgr,
                inbox: InboxSource::new(i, Rc::clone(&feedback)),
                down_until: None,
                routed_cost: 0.0,
            });
        }
        let warm = self
            .warm_cache
            .map(|(capacity, cold)| WarmCache::new(self.shards, capacity, cold));
        Ok(Cluster {
            shards,
            routing: self.routing,
            failover: self.failover,
            shed_threshold: self.shed_threshold,
            warm,
            routing_cost_model: self.routing_cost_model,
            rr_next: 0,
            quantum: quantum.expect("at least one shard"),
            events: Rc::new(RefCell::new(EventBus::with_thread_trace())),
            feedback,
            parked: VecDeque::new(),
            outages: Vec::new(),
            routed: 0,
            rerouted: 0,
            shed: 0,
            reclaimed: 0,
        })
    }
}

/// The sharded cluster under hierarchical workload management.
pub struct Cluster {
    shards: Vec<Shard>,
    routing: RoutingPolicy,
    failover: FailoverPolicy,
    shed_threshold: Option<usize>,
    warm: Option<WarmCache>,
    routing_cost_model: CostModel,
    /// Round-robin cursor.
    rr_next: usize,
    /// The shared engine quantum every shard steps per cluster tick.
    quantum: SimDuration,
    /// The front-end's own decision-event bus.
    events: Rc<RefCell<EventBus>>,
    feedback: FeedbackBuffer,
    /// Arrivals held while no shard is live (flushed on rejoin).
    parked: VecDeque<Request>,
    outages: Vec<Outage>,
    routed: u64,
    rerouted: u64,
    shed: u64,
    /// Orphan kills performed while stripping a crashed shard under
    /// [`FailoverPolicy::Reroute`]. Their moved twins run to completion on
    /// the survivors, so these are subtracted from the aggregate `killed`
    /// to keep cluster accounting exactly-once.
    reclaimed: u64,
}

impl Cluster {
    /// Cluster simulated time (every shard agrees — they step together).
    pub fn now(&self) -> SimTime {
        self.shards[0].mgr.now()
    }

    /// Number of shards, live or not.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's manager.
    pub fn shard(&self, shard: usize) -> Result<&WorkloadManager, Error> {
        self.shards
            .get(shard)
            .map(|s| &s.mgr)
            .ok_or(Error::UnknownShard(shard))
    }

    /// Whether a shard's controller is currently up.
    pub fn shard_alive(&self, shard: usize) -> Result<bool, Error> {
        self.shards
            .get(shard)
            .map(Shard::alive)
            .ok_or(Error::UnknownShard(shard))
    }

    /// Requests routed by the front-end so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Requests moved off failed shards so far.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Requests shed at the cluster door so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Attach a subscriber to the front-end's decision-event bus
    /// ([`WlmEvent::Routed`] / [`WlmEvent::Rerouted`] /
    /// [`WlmEvent::ClusterShed`]). Per-shard pipeline events stay on each
    /// shard's own bus.
    pub fn subscribe(&mut self, sub: Box<dyn EventSubscriber>) {
        self.events.borrow_mut().subscribe(sub);
    }

    /// The aggregate monitor view the global controller decides against.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            at: self.now(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardView {
                    shard: i,
                    alive: s.alive(),
                    snapshot: s.mgr.live_snapshot().clone(),
                    inbox_depth: s.inbox.len(),
                })
                .collect(),
        }
    }

    /// Deterministic per-shard checkpoints (shard order) — the cluster's
    /// reproducibility fingerprint: same seed, same bytes.
    pub fn checkpoints(&self) -> Vec<ControllerState> {
        self.shards.iter().map(|s| s.mgr.checkpoint()).collect()
    }

    /// Sum of `workload`'s goal violations across shards.
    pub fn goal_violations_in(&self, workload: &str) -> u64 {
        self.shards
            .iter()
            .map(|s| s.mgr.goal_violations_in(workload))
            .sum()
    }

    /// Schedule a shard-controller crash at `at_secs`, lasting
    /// `dur_secs`. What happens to the shard's queued work is governed by
    /// the cluster's [`FailoverPolicy`].
    pub fn schedule_outage(
        &mut self,
        shard: usize,
        at_secs: f64,
        dur_secs: f64,
    ) -> Result<(), Error> {
        if shard >= self.shards.len() {
            return Err(Error::UnknownShard(shard));
        }
        self.outages.push(Outage {
            shard,
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs.max(0.0)),
            duration: SimDuration::from_secs_f64(dur_secs.max(0.0)),
            triggered: false,
            saved: None,
        });
        self.outages.sort_by_key(|o| (o.at, o.shard));
        Ok(())
    }

    /// Inject an engine-level fault into one shard (the chaos drivers'
    /// fault vocabulary applied shard-locally).
    pub fn apply_engine_fault(&mut self, shard: usize, fault: EngineFault) -> Result<(), Error> {
        self.shards
            .get_mut(shard)
            .ok_or(Error::UnknownShard(shard))?
            .mgr
            .apply_engine_fault(fault)
    }

    /// Advance the whole cluster one engine quantum: route the window's
    /// arrivals through the cluster admission gate, then step every shard
    /// one control cycle.
    pub fn tick(&mut self, source: &mut dyn Source) {
        let from = self.now();
        let to = from + self.quantum;
        self.process_outages(from);
        for shard in &mut self.shards {
            shard.routed_cost = 0.0;
        }

        // Arrivals parked during a full outage get first claim on a
        // rejoined shard, ahead of this window's arrivals.
        if self.shards.iter().any(Shard::alive) {
            while let Some(req) = self.parked.pop_front() {
                self.admit_or_route(req);
            }
        }
        for req in source.poll(from, to) {
            self.admit_or_route(req);
        }

        for shard in &mut self.shards {
            if shard.alive() {
                // Split borrow: the manager ticks against its own inbox.
                let Shard { mgr, inbox, .. } = shard;
                mgr.tick(inbox);
            } else {
                shard.mgr.tick_uncontrolled();
            }
        }

        let fed: Vec<(String, SimTime)> = self.feedback.borrow_mut().drain(..).collect();
        for (label, at) in fed {
            source.on_completion(&label, at);
        }
    }

    /// Run for `duration` of simulated time and report.
    pub fn run(&mut self, source: &mut dyn Source, duration: SimDuration) -> ClusterReport {
        let deadline = self.now() + duration;
        while self.now() < deadline {
            self.tick(source);
        }
        self.report()
    }

    /// Build the aggregate end-of-run report at the current time.
    pub fn report(&self) -> ClusterReport {
        let shards: Vec<RunReport> = self.shards.iter().map(|s| s.mgr.report()).collect();
        let completed: u64 = shards.iter().map(|r| r.completed).sum();
        let elapsed = shards.first().map(|r| r.elapsed_secs).unwrap_or(0.0);
        ClusterReport {
            elapsed_secs: elapsed,
            completed,
            killed: shards.iter().map(|r| r.killed).sum::<u64>() - self.reclaimed,
            rejected: shards.iter().map(|r| r.rejected).sum(),
            routed: self.routed,
            rerouted: self.rerouted,
            shed: self.shed,
            throughput: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            shards,
        }
    }

    /// Whether every live shard's queue pressure is at or above the shed
    /// threshold (no gate configured = never saturated).
    fn saturated(&self) -> bool {
        let Some(threshold) = self.shed_threshold else {
            return false;
        };
        let mut any_live = false;
        for shard in self.shards.iter().filter(|s| s.alive()) {
            any_live = true;
            if shard.mgr.live_snapshot().queued + shard.inbox.len() < threshold {
                return false;
            }
        }
        any_live
    }

    fn emit(&self, event: WlmEvent) {
        let mut bus = self.events.borrow_mut();
        if bus.is_active() {
            bus.emit(event);
        }
    }

    /// Cluster admission then routing for one arrival.
    fn admit_or_route(&mut self, req: Request) {
        if self.saturated() {
            self.shed += 1;
            self.emit(WlmEvent::ClusterShed {
                at: self.now(),
                request: req.id,
                workload: req.spec.label.clone(),
            });
            return;
        }
        match self.route_target(&req) {
            Ok(target) => {
                self.routed += 1;
                self.emit(WlmEvent::Routed {
                    at: self.now(),
                    request: req.id,
                    workload: req.spec.label.clone(),
                    shard: target,
                });
                self.deliver(target, req);
            }
            // No live shard: hold the arrival until one rejoins.
            Err(_) => self.parked.push_back(req),
        }
    }

    /// Charge the warm-partition model and queue the request on `target`.
    fn deliver(&mut self, target: usize, mut req: Request) {
        if let Some(cache) = &mut self.warm {
            cache.on_route(target, &mut req);
        }
        let est = self.routing_cost_model.estimate_spec(&req.spec);
        self.shards[target].routed_cost += est.timerons;
        self.shards[target].inbox.push(req);
    }

    /// Pick a live shard for the request per the routing policy.
    fn route_target(&mut self, req: &Request) -> Result<usize, Error> {
        let n = self.shards.len();
        if !self.shards.iter().any(Shard::alive) {
            return Err(Error::NoLiveShards);
        }
        match self.routing {
            RoutingPolicy::RoundRobin => {
                for probe in 0..n {
                    let i = (self.rr_next + probe) % n;
                    if self.shards[i].alive() {
                        self.rr_next = (i + 1) % n;
                        return Ok(i);
                    }
                }
                Err(Error::NoLiveShards)
            }
            RoutingPolicy::LeastOutstandingCost => {
                let mut best: Option<(usize, f64)> = None;
                for (i, shard) in self.shards.iter().enumerate() {
                    if !shard.alive() {
                        continue;
                    }
                    let outstanding =
                        shard.mgr.live_snapshot().outstanding_cost() + shard.routed_cost;
                    // Strict `<` keeps ties on the lowest index.
                    if best.is_none_or(|(_, cost)| outstanding < cost) {
                        best = Some((i, outstanding));
                    }
                }
                best.map(|(i, _)| i).ok_or(Error::NoLiveShards)
            }
            RoutingPolicy::Affinity => {
                let home = (splitmix64(affinity_key(req)) % n as u64) as usize;
                for probe in 0..n {
                    let i = (home + probe) % n;
                    if self.shards[i].alive() {
                        return Ok(i);
                    }
                }
                Err(Error::NoLiveShards)
            }
        }
    }

    /// Trigger due outages and rejoin shards whose outage has elapsed.
    fn process_outages(&mut self, now: SimTime) {
        // Rejoins first: an outage scheduled for this instant on a shard
        // that just finished one sees the shard up, not down.
        for shard in &mut self.shards {
            if shard.down_until.is_some_and(|t| t <= now) {
                shard.down_until = None;
            }
        }
        for idx in 0..self.outages.len() {
            if self.outages[idx].triggered || self.outages[idx].at > now {
                continue;
            }
            self.outages[idx].triggered = true;
            let shard = self.outages[idx].shard;
            if !self.shards[shard].alive() {
                continue; // already down: overlapping outages collapse
            }
            let until = now + self.outages[idx].duration;
            match self.failover {
                FailoverPolicy::WaitForRestart => {
                    // Freeze the controller's state for the rejoin; the
                    // queued work waits out the outage in place.
                    self.outages[idx].saved = Some(self.shards[shard].mgr.checkpoint());
                    self.shards[shard].down_until = Some(until);
                }
                FailoverPolicy::Reroute => self.crash_and_reroute(shard, until),
            }
        }
        // WaitForRestart rejoin: restore the crash-time checkpoint. The
        // restore reconciliation re-queues whatever the engine finished or
        // lost while uncontrolled — at-least-once, never silently dropped.
        for idx in 0..self.outages.len() {
            let due = self.outages[idx].triggered
                && self.outages[idx].saved.is_some()
                && self.outages[idx].at + self.outages[idx].duration <= now;
            if due {
                let shard = self.outages[idx].shard;
                let ckpt = self.outages[idx].saved.take().expect("due checked");
                self.shards[shard].mgr.restore(&ckpt);
            }
        }
    }

    /// [`FailoverPolicy::Reroute`] crash: checkpoint the dying controller,
    /// move every queued and in-flight request to the survivors, and
    /// restore a stripped checkpoint so the reconciliation orphan-kills
    /// the dead shard's live engine queries (their moved twins run
    /// elsewhere; nothing is lost, nothing completes twice).
    fn crash_and_reroute(&mut self, shard: usize, until: SimTime) {
        let ckpt = self.shards[shard].mgr.checkpoint();
        let mut moved: Vec<Request> = Vec::new();
        moved.extend(ckpt.wait_queue.iter().map(|m| m.request.clone()));
        moved.extend(ckpt.deferred.iter().map(|m| m.request.clone()));
        moved.extend(ckpt.running.iter().map(|rc| rc.req.request.clone()));
        moved.extend(ckpt.suspended.iter().map(|s| s.req.request.clone()));
        moved.extend(self.shards[shard].inbox.drain_all());
        let stripped = ControllerState {
            wait_queue: Vec::new(),
            deferred: Vec::new(),
            running: Vec::new(),
            suspended: Vec::new(),
            ..ckpt
        };
        // The stripped restore orphan-kills every engine query the dead
        // shard was running. Those kills are resource reclamation — the
        // moved twins finish on the survivors — so they are excluded from
        // the cluster's aggregate `killed` count.
        let recovery = self.shards[shard].mgr.restore(&stripped);
        self.reclaimed += recovery.orphans_killed as u64;
        self.shards[shard].down_until = Some(until);

        for req in moved {
            match self.route_target(&req) {
                Ok(target) => {
                    self.rerouted += 1;
                    self.emit(WlmEvent::Rerouted {
                        at: self.now(),
                        request: req.id,
                        workload: req.spec.label.clone(),
                        from_shard: shard,
                        to_shard: target,
                    });
                    self.deliver(target, req);
                }
                Err(_) => self.parked.push_back(req),
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.shards.len())
            .field("routing", &self.routing)
            .field("failover", &self.failover)
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_workload::generators::OltpSource;

    fn small_builder(_shard: usize) -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 2,
                disk_pages_per_sec: 20_000,
                memory_mb: 1_024,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    fn cluster(shards: usize, routing: RoutingPolicy) -> Cluster {
        ClusterBuilder::new()
            .shards(shards)
            .routing(routing)
            .shard_builder(Box::new(small_builder))
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn builder_rejects_zero_shards() {
        let err = ClusterBuilder::new().shards(0).build().unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn round_robin_spreads_and_completes_work() {
        let mut c = cluster(3, RoutingPolicy::RoundRobin);
        let mut src = OltpSource::new(60.0, 7);
        let report = c.run(&mut src, SimDuration::from_secs(5));
        assert!(report.completed > 0, "work flowed through the cluster");
        assert_eq!(report.routed, c.routed());
        for shard in &report.shards {
            assert!(
                shard.completed > 0,
                "round-robin must exercise every shard: {report:?}"
            );
        }
    }

    #[test]
    fn affinity_routing_is_a_stable_function_of_the_partition() {
        let mut c = cluster(4, RoutingPolicy::Affinity);
        // Same partition key, different requests: always the same shard.
        let mut gen = OltpSource::new(100.0, 3).with_partitions(8);
        let reqs = gen.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(1));
        assert!(!reqs.is_empty());
        let mut by_partition: std::collections::BTreeMap<u64, usize> = Default::default();
        for req in &reqs {
            let target = c.route_target(req).expect("all shards live");
            let partition = req.shard_key.expect("partitioned source");
            let prior = by_partition.entry(partition).or_insert(target);
            assert_eq!(*prior, target, "partition {partition} moved shards");
        }
        assert!(
            by_partition
                .values()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1,
            "8 partitions must spread over more than one of 4 shards"
        );
    }

    #[test]
    fn cluster_run_is_deterministic_per_seed() {
        let run = |routing| {
            let mut c = cluster(3, routing);
            let mut src = OltpSource::new(70.0, 42).with_partitions(6);
            c.run(&mut src, SimDuration::from_secs(3));
            c.checkpoints()
                .iter()
                .map(|ckpt| ckpt.to_bytes())
                .collect::<Vec<_>>()
        };
        for routing in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstandingCost,
            RoutingPolicy::Affinity,
        ] {
            assert_eq!(run(routing), run(routing), "{}", routing.name());
        }
    }

    #[test]
    fn outage_on_unknown_shard_is_rejected() {
        let mut c = cluster(2, RoutingPolicy::RoundRobin);
        assert_eq!(
            c.schedule_outage(5, 1.0, 1.0).unwrap_err(),
            Error::UnknownShard(5)
        );
        assert!(matches!(c.shard(9), Err(Error::UnknownShard(9))));
    }

    #[test]
    fn reroute_failover_moves_queued_work_to_survivors() {
        let mut c = cluster(2, RoutingPolicy::RoundRobin);
        c.schedule_outage(0, 1.0, 2.0).expect("valid shard");
        let mut src = OltpSource::new(40.0, 11);
        let report = c.run(&mut src, SimDuration::from_secs(6));
        assert!(report.rerouted > 0, "crash moved work: {report:?}");
        assert!(c.shard_alive(0).unwrap(), "shard 0 rejoined");
        assert!(report.completed > 0);
    }

    #[test]
    fn shed_gate_drops_when_every_shard_is_saturated() {
        let mut c = ClusterBuilder::new()
            .shards(2)
            .shard_builder(Box::new(|_| {
                WlmBuilder::new().engine(EngineConfig {
                    cores: 1,
                    disk_pages_per_sec: 200,
                    memory_mb: 256,
                    ..Default::default()
                })
            }))
            .shed_when_all_queued_at_least(4)
            .build()
            .expect("valid configuration");
        // Far beyond two tiny shards' capacity: queues fill, the gate opens.
        let mut src = OltpSource::new(500.0, 5);
        let report = c.run(&mut src, SimDuration::from_secs(4));
        assert!(report.shed > 0, "saturation must shed: {report:?}");
    }

    #[test]
    fn cluster_snapshot_reflects_shard_state() {
        let mut c = cluster(2, RoutingPolicy::LeastOutstandingCost);
        let mut src = OltpSource::new(50.0, 9);
        c.run(&mut src, SimDuration::from_secs(1));
        let snap = c.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.live_shards(), 2);
        assert_eq!(snap.at, c.now());
    }
}
