//! Request routing policies — cluster-level scheduling.
//!
//! The front-end's routing decision is the cluster analogue of the
//! single-node scheduler's queue-ordering decision: it fixes *where* work
//! waits rather than *when* it runs. Three policies cover the classic
//! trade-off triangle:
//!
//! - [`RoutingPolicy::RoundRobin`] — even request counts, blind to both
//!   load imbalance and data placement. The ablation baseline.
//! - [`RoutingPolicy::LeastOutstandingCost`] — join the shard with the
//!   least estimated outstanding work (running + queued + routed this
//!   cycle, in optimizer timerons). Load-adaptive, placement-blind.
//! - [`RoutingPolicy::Affinity`] — consistent hashing on the request's
//!   partition key ([`Request::shard_key`]), probing past dead shards.
//!   Placement-aware: each partition's hot pages stay warm in one shard's
//!   buffer pool (see [`crate::warm::WarmCache`]).
//!
//! [`Request::shard_key`]: wlm_workload::request::Request::shard_key

use serde::Serialize;
use wlm_workload::request::Request;

/// How the front-end picks a live shard for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum RoutingPolicy {
    /// Cycle through live shards in index order.
    RoundRobin,
    /// Route to the live shard with the least estimated outstanding cost.
    LeastOutstandingCost,
    /// Hash the request's partition key to a home shard, probing forward
    /// past dead shards (consistent as long as the shard count is fixed:
    /// the same key always lands on the same live shard).
    Affinity,
}

impl RoutingPolicy {
    /// Short policy name (stable; used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::LeastOutstandingCost => "least_outstanding_cost",
            RoutingPolicy::Affinity => "affinity",
        }
    }
}

/// SplitMix64 finalizer: a cheap, deterministic 64-bit mix with good
/// avalanche behaviour — the affinity router's hash.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The affinity key of a request: its partition key when the workload is
/// partitionable, otherwise a hash of its workload label (so scatter work
/// still spreads deterministically instead of piling on shard 0).
pub(crate) fn affinity_key(req: &Request) -> u64 {
    match req.shard_key {
        Some(key) => key,
        None => {
            // FNV-1a over the label bytes.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in req.spec.label.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        let shards = 4u64;
        let mut hits = [0u32; 4];
        for key in 0..64 {
            hits[(splitmix64(key) % shards) as usize] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 0),
            "64 keys must touch all 4 shards: {hits:?}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RoutingPolicy::RoundRobin.name(), "round_robin");
        assert_eq!(
            RoutingPolicy::LeastOutstandingCost.name(),
            "least_outstanding_cost"
        );
        assert_eq!(RoutingPolicy::Affinity.name(), "affinity");
    }
}
