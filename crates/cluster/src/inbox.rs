//! The per-shard inbox: how routed requests reach a shard's manager.
//!
//! The cluster front-end routes each arriving request into the target
//! shard's [`InboxSource`]; the shard's
//! [`WorkloadManager`](wlm_core::manager::WorkloadManager) then polls that
//! inbox like any other [`Source`] on its next control cycle. Completion
//! feedback flows the opposite way: the manager reports completions to the
//! inbox, which parks them in a buffer shared with the cluster so
//! [`Cluster::tick`](crate::cluster::Cluster::tick) can forward them to
//! the cluster-level source after every shard has stepped — closed-loop
//! sources see the same feedback they would see against a single manager.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use wlm_dbsim::time::SimTime;
use wlm_workload::generators::Source;
use wlm_workload::request::Request;

/// Completion feedback parked for the cluster to forward: the completed
/// request's workload label and completion time.
pub(crate) type FeedbackBuffer = Rc<RefCell<Vec<(String, SimTime)>>>;

/// A shard's arrival queue, fed by the cluster front-end and drained by
/// the shard's manager.
#[derive(Debug)]
pub struct InboxSource {
    label: String,
    pending: VecDeque<Request>,
    feedback: FeedbackBuffer,
}

impl InboxSource {
    pub(crate) fn new(shard: usize, feedback: FeedbackBuffer) -> Self {
        InboxSource {
            label: format!("shard-{shard}-inbox"),
            pending: VecDeque::new(),
            feedback,
        }
    }

    /// Queue a routed request for the shard's next control cycle.
    pub(crate) fn push(&mut self, req: Request) {
        self.pending.push_back(req);
    }

    /// Requests routed but not yet ingested by the shard's manager.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the inbox holds no pending requests.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Take every pending request (failover: the work moves elsewhere).
    pub(crate) fn drain_all(&mut self) -> Vec<Request> {
        self.pending.drain(..).collect()
    }
}

impl Source for InboxSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.pending.front().is_some_and(|req| req.arrival <= to) {
            out.push(self.pending.pop_front().expect("front checked"));
        }
        out
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        self.feedback.borrow_mut().push((label.to_string(), at));
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_workload::generators::OltpSource;

    #[test]
    fn inbox_drains_due_arrivals_and_forwards_feedback() {
        let window = SimTime::ZERO + wlm_dbsim::time::SimDuration::from_millis(200);
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(0, Rc::clone(&feedback));
        assert!(inbox.is_empty());
        let mut gen = OltpSource::new(50.0, 1);
        for req in gen.poll(SimTime::ZERO, window) {
            inbox.push(req);
        }
        assert!(!inbox.is_empty());
        let n = inbox.len();
        let drained = inbox.poll(SimTime::ZERO, window);
        assert_eq!(drained.len(), n);
        assert!(inbox.is_empty());

        inbox.on_completion("oltp", window);
        assert_eq!(feedback.borrow().len(), 1);
        assert_eq!(feedback.borrow()[0].0, "oltp");
    }
}
