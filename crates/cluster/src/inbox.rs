//! The per-shard inbox: how routed requests reach a shard's manager.
//!
//! The cluster front-end routes each arriving request into the target
//! shard's [`InboxSource`]; the shard's
//! [`WorkloadManager`](wlm_core::manager::WorkloadManager) then polls that
//! inbox like any other [`Source`] on its next control cycle. Completion
//! feedback flows the opposite way: the manager reports completions to the
//! inbox, which parks them in a buffer shared with the cluster so
//! [`Cluster::tick`](crate::cluster::Cluster::tick) can forward them to
//! the cluster-level source after every shard has stepped — closed-loop
//! sources see the same feedback they would see against a single manager.
//!
//! With a [`LinkLayer`](crate::link::LinkLayer) between front-end and
//! shards, delivery is at-least-once: lost messages are retransmitted and
//! the link may spontaneously duplicate copies. The inbox is where
//! at-least-once becomes exactly-once — [`InboxSource::accept`] drops
//! redeliveries by [`MsgId`](crate::link::MsgId) before they can reach
//! the shard's admission path.

use crate::link::MsgId;
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;
use wlm_dbsim::time::SimTime;
use wlm_workload::generators::Source;
use wlm_workload::request::{Request, RequestId};

/// Completion feedback parked for the cluster to forward: the shard it
/// surfaced from, the completed request, its workload label and the
/// completion time. The request id is what lets the cluster recognize a
/// hedged race's second finisher as a duplicate.
pub(crate) type FeedbackBuffer = Rc<RefCell<Vec<(usize, RequestId, String, SimTime)>>>;

/// A shard's arrival queue, fed by the cluster front-end and drained by
/// the shard's manager.
#[derive(Debug)]
pub struct InboxSource {
    shard: usize,
    label: String,
    pending: VecDeque<Request>,
    /// Message ids already accepted — the shard-side dedup that turns the
    /// link's at-least-once delivery into exactly-once ingestion.
    seen: BTreeSet<MsgId>,
    feedback: FeedbackBuffer,
}

impl InboxSource {
    pub(crate) fn new(shard: usize, feedback: FeedbackBuffer) -> Self {
        InboxSource {
            shard,
            label: format!("shard-{shard}-inbox"),
            pending: VecDeque::new(),
            seen: BTreeSet::new(),
            feedback,
        }
    }

    /// Queue a routed request for the shard's next control cycle.
    pub(crate) fn push(&mut self, req: Request) {
        self.pending.push_back(req);
    }

    /// Ingest one enveloped message off the link. Returns `true` if the
    /// message is new (request queued) and `false` for a redelivery — a
    /// retransmitted or link-duplicated copy of a message this shard
    /// already accepted. Redeliveries are re-acknowledged by the caller
    /// but never queued twice.
    pub(crate) fn accept(&mut self, msg: MsgId, req: Request) -> bool {
        if !self.seen.insert(msg) {
            return false;
        }
        self.push(req);
        true
    }

    /// Remove a pending request by id (a hedge race's losing copy being
    /// cancelled before the shard ingests it). Returns whether a copy was
    /// found and removed.
    pub(crate) fn remove(&mut self, request: RequestId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|r| r.id != request);
        self.pending.len() != before
    }

    /// Requests routed but not yet ingested by the shard's manager.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the inbox holds no pending requests.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Take every pending request (failover: the work moves elsewhere).
    pub(crate) fn drain_all(&mut self) -> Vec<Request> {
        self.pending.drain(..).collect()
    }

    /// Forget dedup entries for message ids the link has fully retired —
    /// ids below `floor` have no outstanding or in-flight copy left (see
    /// [`LinkLayer::retired_before`](crate::link::LinkLayer::retired_before)),
    /// so no redelivery of them can ever reach this inbox. Called by the
    /// cluster every link pump, this keeps `seen` proportional to the
    /// in-flight window instead of the whole run's message history.
    pub(crate) fn evict_seen_below(&mut self, floor: MsgId) {
        self.seen = self.seen.split_off(&floor);
    }

    /// Dedup entries currently held (the bounded-memory regression probe).
    #[cfg(test)]
    pub(crate) fn seen_len(&self) -> usize {
        self.seen.len()
    }
}

impl Source for InboxSource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        // The queue is *not* sorted by arrival: redeliveries, hedged
        // copies and crash-failover transfers enqueue out of order, and a
        // request's `arrival` keeps its original generator stamp however
        // it got here. Scan the whole queue instead of stopping at the
        // first not-yet-due element, or a future-dated request at the
        // front would starve everything behind it.
        let mut out = Vec::new();
        let mut keep = VecDeque::with_capacity(self.pending.len());
        for req in self.pending.drain(..) {
            if req.arrival <= to {
                out.push(req);
            } else {
                keep.push_back(req);
            }
        }
        self.pending = keep;
        out
    }

    fn on_request_completion(&mut self, request: RequestId, label: &str, at: SimTime) {
        self.feedback
            .borrow_mut()
            .push((self.shard, request, label.to_string(), at));
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_workload::generators::OltpSource;

    #[test]
    fn inbox_drains_due_arrivals_and_forwards_feedback() {
        let window = SimTime::ZERO + wlm_dbsim::time::SimDuration::from_millis(200);
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(0, Rc::clone(&feedback));
        assert!(inbox.is_empty());
        let mut gen = OltpSource::new(50.0, 1);
        for req in gen.poll(SimTime::ZERO, window) {
            inbox.push(req);
        }
        assert!(!inbox.is_empty());
        let n = inbox.len();
        let drained = inbox.poll(SimTime::ZERO, window);
        assert_eq!(drained.len(), n);
        assert!(inbox.is_empty());

        inbox.on_request_completion(RequestId(7), "oltp", window);
        assert_eq!(feedback.borrow().len(), 1);
        let entry = &feedback.borrow()[0];
        assert_eq!((entry.0, entry.1), (0, RequestId(7)));
        assert_eq!(entry.2, "oltp");
    }

    #[test]
    fn poll_scans_past_future_dated_requests() {
        // Regression: a not-yet-due request at the *front* of the queue
        // must not hide due requests queued behind it.
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(0, feedback);
        let horizon = SimTime::ZERO + wlm_dbsim::time::SimDuration::from_secs(1);
        let mut gen = OltpSource::new(50.0, 1);
        let mut reqs = gen.poll(
            SimTime::ZERO,
            horizon + wlm_dbsim::time::SimDuration::from_secs(9),
        );
        assert!(reqs.len() >= 3, "need a spread of arrivals");
        // Push a late arrival first, then the early ones behind it.
        let late = reqs.pop().expect("non-empty");
        assert!(late.arrival > horizon);
        let due: Vec<Request> = reqs.into_iter().filter(|r| r.arrival <= horizon).collect();
        assert!(!due.is_empty());
        inbox.push(late.clone());
        for r in &due {
            inbox.push(r.clone());
        }
        let drained = inbox.poll(SimTime::ZERO, horizon);
        assert_eq!(
            drained.len(),
            due.len(),
            "due work behind a future-dated head drains"
        );
        assert_eq!(inbox.len(), 1, "only the future request stays queued");
        assert_eq!(inbox.poll(SimTime::ZERO, late.arrival).len(), 1);
    }

    #[test]
    fn drain_all_on_empty_inbox_is_empty() {
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(3, feedback);
        assert!(inbox.drain_all().is_empty());
        assert!(inbox.is_empty());
    }

    #[test]
    fn seen_set_stays_flat_across_100k_messages() {
        // Regression: without watermark eviction the dedup set grows one
        // entry per message for the life of the run. Stream 100k messages
        // through a duplicating link with prompt acks and check the set
        // stays sized to the in-flight window, not the message history.
        use crate::link::{LinkConfig, LinkLayer};
        use wlm_dbsim::plan::PlanBuilder;
        use wlm_dbsim::time::SimDuration;
        use wlm_workload::request::{Importance, Origin};

        let cfg = LinkConfig {
            dup_p: 0.05,
            retransmit_secs: 0.1,
            seed: 9,
            ..LinkConfig::default()
        };
        let mut link = LinkLayer::new(cfg, 1);
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(0, feedback);
        let mut peak = 0usize;
        let mut accepted = 0u64;
        for i in 0..100_000u64 {
            let now = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * 1e-4);
            let req = Request {
                id: RequestId(i),
                arrival: now,
                origin: Origin::new("test", "t", i),
                spec: PlanBuilder::table_scan(100)
                    .build()
                    .into_spec()
                    .labeled("oltp"),
                importance: Importance::Medium,
                shard_key: None,
            };
            link.send(now, 0, req);
            // First pump surfaces the delivery (and any duplicate copy);
            // the second resolves the zero-delay acks posted for them.
            let mut acks = Vec::new();
            for d in link.pump(now).deliveries {
                if inbox.accept(d.msg, d.req) {
                    accepted += 1;
                }
                acks.push((d.msg, d.sent_at));
            }
            for (msg, sent_at) in acks {
                link.post_ack(msg, 0, sent_at, now);
            }
            let _ = link.pump(now);
            inbox.evict_seen_below(link.retired_before());
            peak = peak.max(inbox.seen_len());
            inbox.drain_all();
        }
        assert_eq!(accepted, 100_000, "every message ingested exactly once");
        assert!(
            peak <= 8,
            "dedup memory must stay flat, peaked at {peak} entries"
        );
        assert_eq!(inbox.seen_len(), 0, "a drained link leaves nothing behind");
    }

    #[test]
    fn accept_dedups_by_msg_id_and_remove_cancels_pending() {
        let feedback: FeedbackBuffer = Rc::new(RefCell::new(Vec::new()));
        let mut inbox = InboxSource::new(0, feedback);
        let mut gen = OltpSource::new(50.0, 1);
        let horizon = SimTime::ZERO + wlm_dbsim::time::SimDuration::from_secs(2);
        let reqs = gen.poll(SimTime::ZERO, horizon);
        assert!(reqs.len() >= 2);
        assert!(inbox.accept(MsgId(1), reqs[0].clone()));
        assert!(
            !inbox.accept(MsgId(1), reqs[0].clone()),
            "redelivery of the same message is dropped"
        );
        assert!(inbox.accept(MsgId(2), reqs[1].clone()));
        assert_eq!(inbox.len(), 2);
        assert!(inbox.remove(reqs[0].id));
        assert!(!inbox.remove(reqs[0].id), "second remove finds nothing");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.poll(SimTime::ZERO, horizon)[0].id, reqs[1].id);
    }
}
