//! Hedged re-dispatch bookkeeping: first completion wins, exactly once.
//!
//! When the failure detector suspects a shard, the cluster re-dispatches
//! that shard's in-flight work to a healthy peer rather than waiting out
//! the straggler — the classic tail-latency hedge. That deliberately
//! creates *two* live copies of a request, so something must guarantee
//! the external accounting still sees each request exactly once:
//!
//! * the **first** completion to reach the front-end wins — it is
//!   forwarded to the source and the losing copies are cancelled through
//!   the orphan-kill path;
//! * any **later** completion of the same request (a copy that finished
//!   before its cancellation landed, or surfaced out of a healed
//!   partition) is recorded as a duplicate and *not* forwarded.
//!
//! [`Hedger`] owns that state machine. It is transport-agnostic: the
//! cluster tells it which shards hold copies of which request, and asks
//! it to classify every completion. [`HedgeConfig::max_hedges`] bounds
//! the copy fan-out per request so a flapping detector cannot melt the
//! cluster with clones.

use serde::Serialize;
use std::collections::BTreeMap;
use wlm_workload::request::RequestId;

/// Tuning for hedged re-dispatch.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Most hedged copies ever created for one request.
    pub max_hedges: u32,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { max_hedges: 1 }
    }
}

/// What one completion means for the accounting.
#[derive(Debug, PartialEq, Eq, Serialize)]
pub(crate) enum CompletionVerdict {
    /// The request was never hedged: forward it.
    Untracked,
    /// First completion of a hedged request: forward it, then cancel the
    /// losing copies on these shards.
    Winner { losers: Vec<usize> },
    /// A copy of an already-won race: count it, do not forward it.
    Duplicate,
}

#[derive(Debug)]
struct CopyState {
    /// Shards that hold (or held) a copy of the request.
    shards: Vec<usize>,
    hedges: u32,
    won: bool,
}

/// Copy-tracking for every hedged request in flight.
#[derive(Debug, Default)]
pub(crate) struct Hedger {
    cfg: HedgeConfig,
    copies: BTreeMap<RequestId, CopyState>,
}

impl Hedger {
    pub(crate) fn new(cfg: HedgeConfig) -> Self {
        Hedger {
            cfg,
            copies: BTreeMap::new(),
        }
    }

    /// Whether `request` may be hedged (again).
    pub(crate) fn may_hedge(&self, request: RequestId) -> bool {
        self.copies
            .get(&request)
            .map_or(self.cfg.max_hedges > 0, |c| {
                !c.won && c.hedges < self.cfg.max_hedges
            })
    }

    /// Record a hedge: `request` now also lives on `to` (besides `from`).
    pub(crate) fn record(&mut self, request: RequestId, from: usize, to: usize) {
        let c = self.copies.entry(request).or_insert(CopyState {
            shards: vec![from],
            hedges: 0,
            won: false,
        });
        if !c.shards.contains(&from) {
            c.shards.push(from);
        }
        if !c.shards.contains(&to) {
            c.shards.push(to);
        }
        c.hedges += 1;
    }

    /// Classify a completion of `request` that surfaced from `shard`.
    pub(crate) fn on_completion(&mut self, request: RequestId, shard: usize) -> CompletionVerdict {
        let Some(c) = self.copies.get_mut(&request) else {
            return CompletionVerdict::Untracked;
        };
        if c.won {
            return CompletionVerdict::Duplicate;
        }
        c.won = true;
        let losers = c.shards.iter().copied().filter(|&s| s != shard).collect();
        CompletionVerdict::Winner { losers }
    }

    /// Number of requests with more than one live copy right now.
    pub(crate) fn races_open(&self) -> usize {
        self.copies.values().filter(|c| !c.won).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins_rest_are_duplicates() {
        let mut h = Hedger::new(HedgeConfig::default());
        assert!(h.may_hedge(RequestId(1)));
        h.record(RequestId(1), 0, 2);
        assert!(!h.may_hedge(RequestId(1)), "max_hedges=1 spent");
        assert_eq!(h.races_open(), 1);
        assert_eq!(
            h.on_completion(RequestId(1), 2),
            CompletionVerdict::Winner { losers: vec![0] }
        );
        assert_eq!(
            h.on_completion(RequestId(1), 0),
            CompletionVerdict::Duplicate
        );
        assert_eq!(h.races_open(), 0);
    }

    #[test]
    fn unhedged_requests_pass_through_untracked() {
        let mut h = Hedger::new(HedgeConfig::default());
        assert_eq!(
            h.on_completion(RequestId(9), 0),
            CompletionVerdict::Untracked
        );
    }

    #[test]
    fn fan_out_is_bounded_and_losers_cover_all_copies() {
        let mut h = Hedger::new(HedgeConfig { max_hedges: 2 });
        h.record(RequestId(5), 1, 2);
        assert!(h.may_hedge(RequestId(5)));
        h.record(RequestId(5), 1, 3);
        assert!(!h.may_hedge(RequestId(5)));
        assert_eq!(
            h.on_completion(RequestId(5), 1),
            CompletionVerdict::Winner { losers: vec![2, 3] }
        );
        // A won race cannot be hedged again.
        assert!(!h.may_hedge(RequestId(5)));
    }
}
