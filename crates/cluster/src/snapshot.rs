//! The cluster-wide monitor view the global controller decides against.

use crate::elastic::ShardStage;
use serde::Serialize;
use wlm_core::api::SystemSnapshot;
use wlm_dbsim::time::SimTime;

/// One shard as the global front-end sees it.
#[derive(Debug, Clone, Serialize)]
pub struct ShardView {
    /// Shard index.
    pub shard: usize,
    /// Whether the shard's controller is up (a down shard's engine keeps
    /// draining, but no new work is routed to it).
    pub alive: bool,
    /// Elastic lifecycle stage (always [`ShardStage::Active`] in a
    /// non-elastic cluster).
    pub stage: ShardStage,
    /// The shard controller's maintained monitor snapshot.
    pub snapshot: SystemSnapshot,
    /// Requests routed to the shard but not yet ingested by its manager.
    pub inbox_depth: usize,
}

impl ShardView {
    /// Queue pressure the front-end's shed gate evaluates: requests the
    /// shard knows about plus requests already routed on their way in.
    pub fn queue_pressure(&self) -> usize {
        self.snapshot.queued + self.inbox_depth
    }
}

/// Point-in-time aggregate view over every shard — the input to
/// cluster-level admission and routing decisions.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterSnapshot {
    /// Cluster clock (all shards tick the same quantum, so they agree).
    pub at: SimTime,
    /// Per-shard views, in shard order.
    pub shards: Vec<ShardView>,
}

impl ClusterSnapshot {
    /// Shards whose controller is up.
    pub fn live_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Total running queries across live shards.
    pub fn running(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.snapshot.running)
            .sum()
    }

    /// Total queued requests across live shards (controller queues plus
    /// in-flight inboxes).
    pub fn queued(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.alive)
            .map(ShardView::queue_pressure)
            .sum()
    }

    /// Whether every live shard's queue pressure is at or above
    /// `threshold` — the cluster-wide saturation condition that opens the
    /// shed gate. `false` when no shard is live (failover handles that
    /// case, not shedding).
    pub fn saturated(&self, threshold: usize) -> bool {
        let mut any_live = false;
        for shard in self.shards.iter().filter(|s| s.alive) {
            any_live = true;
            if shard.queue_pressure() < threshold {
                return false;
            }
        }
        any_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(shard: usize, alive: bool, queued: usize, inbox: usize) -> ShardView {
        ShardView {
            shard,
            alive,
            stage: ShardStage::Active,
            snapshot: SystemSnapshot {
                queued,
                ..SystemSnapshot::default()
            },
            inbox_depth: inbox,
        }
    }

    #[test]
    fn saturation_requires_every_live_shard_full() {
        let snap = ClusterSnapshot {
            at: SimTime::ZERO,
            shards: vec![view(0, true, 10, 0), view(1, true, 2, 0)],
        };
        assert!(!snap.saturated(8), "one shard still has room");
        let snap = ClusterSnapshot {
            at: SimTime::ZERO,
            shards: vec![view(0, true, 10, 0), view(1, true, 6, 2)],
        };
        assert!(snap.saturated(8), "inbox depth counts toward pressure");
        assert_eq!(snap.queued(), 18);
        let snap = ClusterSnapshot {
            at: SimTime::ZERO,
            shards: vec![view(0, false, 100, 100)],
        };
        assert!(!snap.saturated(1), "no live shard: shedding is moot");
        assert_eq!(snap.live_shards(), 0);
    }
}
