//! The warm-partition model: why placement-aware routing pays.
//!
//! Each shard's buffer pool can keep the hot pages of a bounded number of
//! partitions resident. [`WarmCache`] tracks that residency as a per-shard
//! LRU set of partition ids: routing a partition's request to a shard
//! where the partition is **warm** leaves the request's working set at its
//! base size (the hot pages are already pooled); routing it somewhere the
//! partition is **cold** inflates the request's
//! [`working_set_pages`](wlm_dbsim::plan::QuerySpec::working_set_pages) to
//! the partition's full hot-set size — the engine's buffer-pool model then
//! yields a low hit ratio and the request pays physical reads to fault the
//! partition in.
//!
//! This is what separates the routing policies in experiment E21: affinity
//! routing keeps each partition warm on its home shard, while round-robin
//! churns every pool through every partition.

use wlm_workload::request::Request;

/// Per-shard LRU residency of partition hot sets.
#[derive(Debug, Clone)]
pub struct WarmCache {
    /// Partitions a single shard's pool can hold warm at once.
    capacity: usize,
    /// Working-set size charged to a request whose partition is cold on
    /// its target shard (the partition's full hot set, in pages).
    cold_working_set_pages: u64,
    /// Per-shard LRU: front = least recently routed partition.
    resident: Vec<Vec<u64>>,
}

impl WarmCache {
    /// A cache model over `shards` shards, each able to keep `capacity`
    /// partitions warm.
    pub fn new(shards: usize, capacity: usize, cold_working_set_pages: u64) -> Self {
        WarmCache {
            capacity: capacity.max(1),
            cold_working_set_pages,
            resident: vec![Vec::new(); shards],
        }
    }

    /// Whether `partition` is currently warm on `shard`.
    pub fn is_warm(&self, shard: usize, partition: u64) -> bool {
        self.resident[shard].contains(&partition)
    }

    /// Account a request routed to `shard`: charge the cold working set if
    /// its partition is not resident, then mark the partition most
    /// recently used (evicting the coldest when over capacity). Requests
    /// without a partition key are untouched.
    pub(crate) fn on_route(&mut self, shard: usize, req: &mut Request) {
        let Some(partition) = req.shard_key else {
            return;
        };
        let lru = &mut self.resident[shard];
        match lru.iter().position(|&p| p == partition) {
            Some(pos) => {
                lru.remove(pos);
            }
            None => {
                req.spec.working_set_pages =
                    req.spec.working_set_pages.max(self.cold_working_set_pages);
                if lru.len() == self.capacity {
                    lru.remove(0);
                }
            }
        }
        lru.push(partition);
    }

    /// Drop every resident partition of `shard` — a freshly spawned
    /// (or long-retired) shard restarts with an empty buffer pool, so
    /// every partition routed to it is cold until the LRU refills.
    pub(crate) fn evict_shard(&mut self, shard: usize) {
        self.resident[shard].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::plan::PlanBuilder;
    use wlm_dbsim::time::SimTime;
    use wlm_workload::request::{Importance, Origin, Request, RequestId};

    fn req(partition: u64) -> Request {
        Request {
            id: RequestId(partition),
            arrival: SimTime::ZERO,
            origin: Origin::new("t", "t", 1),
            spec: PlanBuilder::index_lookup(5).build().into_spec(),
            importance: Importance::Medium,
            shard_key: Some(partition),
        }
    }

    #[test]
    fn cold_routes_inflate_and_warm_routes_do_not() {
        let mut cache = WarmCache::new(2, 2, 4_096);
        let mut a = req(7);
        let base = a.spec.working_set_pages;
        cache.on_route(0, &mut a);
        assert_eq!(a.spec.working_set_pages, 4_096, "first touch is cold");
        assert!(cache.is_warm(0, 7));

        let mut b = req(7);
        cache.on_route(0, &mut b);
        assert_eq!(b.spec.working_set_pages, base, "second touch is warm");
        assert!(!cache.is_warm(1, 7), "residency is per shard");
    }

    #[test]
    fn lru_evicts_the_coldest_partition() {
        let mut cache = WarmCache::new(1, 2, 1_000);
        for p in [1u64, 2, 3] {
            cache.on_route(0, &mut req(p));
        }
        assert!(!cache.is_warm(0, 1), "1 was evicted by 3");
        assert!(cache.is_warm(0, 2));
        assert!(cache.is_warm(0, 3));
        // Re-touching 2 protects it; 3 becomes the eviction victim.
        cache.on_route(0, &mut req(2));
        cache.on_route(0, &mut req(4));
        assert!(cache.is_warm(0, 2));
        assert!(!cache.is_warm(0, 3));
        cache.evict_shard(0);
        assert!(!cache.is_warm(0, 2), "eviction empties the shard's pool");
        assert!(!cache.is_warm(0, 4));
    }
}
