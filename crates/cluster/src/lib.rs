//! # wlm-cluster — hierarchical workload management over engine shards
//!
//! A shared-nothing cluster of N independent [`DbEngine`] shards, each
//! under its own per-shard [`WorkloadManager`], below one **global
//! front-end** controller. The taxonomy's technique classes recur at the
//! cluster level, one layer up from where `wlm-core` applies them:
//!
//! | taxonomy class            | global front-end mechanism                  |
//! |---------------------------|---------------------------------------------|
//! | workload characterization | routing key extraction ([`Request::shard_key`]) |
//! | admission control         | cluster-wide load shedding ([`WlmEvent::ClusterShed`]) |
//! | scheduling                | request routing ([`RoutingPolicy`])          |
//! | execution control         | shard failover ([`FailoverPolicy`]) and the elastic shard lifecycle ([`elastic::Autoscaler`] spawn/warm/drain/retire) |
//! | monitoring                | link-fault detection ([`LinkLayer`](link) heartbeats → [`detector::FailureDetector`] gray/dead verdicts → hedged re-dispatch) |
//!
//! The two levels share the engine quantum: one [`Cluster::tick`] routes
//! the window's arrivals and then steps every shard exactly one control
//! cycle, so an N-shard cluster is as deterministic per seed as a single
//! manager — same seed, byte-identical shard checkpoints.
//!
//! The front-end makes three kinds of decisions, each published as a typed
//! [`WlmEvent`] on the cluster's own bus:
//!
//! - **Route** ([`WlmEvent::Routed`]): pick a live shard for each arriving
//!   request — round-robin, least-outstanding-cost, or partition affinity
//!   (consistent hashing on [`Request::shard_key`]).
//! - **Shed** ([`WlmEvent::ClusterShed`]): when *every* live shard's
//!   controller reports a saturated queue, turn arrivals away at the
//!   cluster door instead of deepening queues nobody can drain.
//! - **Re-route** ([`WlmEvent::Rerouted`]): when a shard's controller
//!   crashes, move its queued work onto the survivors, reusing the
//!   checkpoint/restore reconciliation of the crash-tolerant control
//!   plane (`wlm-core::manager::checkpoint`).
//! - **Hedge** ([`WlmEvent::Hedged`]): when the [`detector`] suspects a
//!   shard (gray from slow round trips, dead from silence), re-dispatch
//!   its in-flight work to a healthy peer over the [`link`]; the first
//!   completion wins and the loser is cancelled — exactly-once
//!   accounting end to end, even across partition heals
//!   ([`WlmEvent::PartitionHealed`]).
//!
//! [`DbEngine`]: wlm_dbsim::engine::DbEngine
//! [`WorkloadManager`]: wlm_core::manager::WorkloadManager
//! [`Request::shard_key`]: wlm_workload::request::Request::shard_key
//! [`WlmEvent`]: wlm_core::events::WlmEvent
//! [`WlmEvent::Routed`]: wlm_core::events::WlmEvent::Routed
//! [`WlmEvent::Rerouted`]: wlm_core::events::WlmEvent::Rerouted
//! [`WlmEvent::ClusterShed`]: wlm_core::events::WlmEvent::ClusterShed

pub mod cluster;
pub mod detector;
pub mod elastic;
pub mod hedge;
pub mod inbox;
pub mod link;
pub mod routing;
pub mod snapshot;
pub mod warm;

pub use cluster::{Cluster, ClusterBuilder, ClusterReport, FailoverPolicy};
pub use detector::{DetectorConfig, ShardHealth};
pub use elastic::{Autoscaler, ElasticConfig, ScaleDecision, ShardStage};
pub use hedge::HedgeConfig;
pub use inbox::InboxSource;
pub use link::{LinkConfig, MsgId};
pub use routing::RoutingPolicy;
pub use snapshot::{ClusterSnapshot, ShardView};
pub use warm::WarmCache;
