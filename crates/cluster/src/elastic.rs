//! Elastic shard lifecycle: a deterministic autoscaler over the shard
//! pool, with warm-up on the way in and drain-then-retire on the way out.
//!
//! The cluster is built with its **full** shard pool up front (every
//! fabric structure — link lanes, detector rows, warm-cache residency —
//! is shard-count-sized), but with [`ElasticConfig::min_shards`] of them
//! *active*. The [`Autoscaler`] watches a smoothed pressure signal (the
//! max of CPU utilization, disk utilization, and normalized queue depth,
//! averaged over the routable shards) and, with hysteresis on both edges,
//! walks shards through the lifecycle state machine:
//!
//! ```text
//! retired ──spawn──▶ spawning ──▶ warming ──▶ active
//!    ▲                                           │
//!    └────────── drain-then-retire ◀── draining ─┘
//! ```
//!
//! * **Spawning** models boot latency: the shard is decided-on this tick
//!   but routable only from the next, when it enters **warming**.
//! * **Warming** shards take traffic immediately but start with an
//!   evicted buffer pool — every partition routed to them is cold until
//!   the [`WarmCache`](crate::warm::WarmCache) refills, which is the
//!   cold-cache penalty that makes scale-up a real cost, not a free
//!   lever. The stage flips to **active** after
//!   [`ElasticConfig::warmup_secs`].
//! * **Draining** shards stop receiving routes but keep their controller
//!   running so queued work finishes in place. The shard retires early
//!   the moment it is idle, or at the drain deadline — at which point any
//!   residue (wait queue, deferrals, parked retries, running and
//!   suspended queries, inbox, undelivered link traffic) is moved to the
//!   survivors through the same checkpoint-strip path a crash uses, so
//!   retirement loses zero requests and double-counts none: the restore
//!   reconciliation orphan-kills the local copies whose twins now run
//!   elsewhere, and the exactly-once finished-book absorbs any race.
//! * **Retired** shards tick uncontrolled (their engine clock stays
//!   aligned with the cluster's) and charge no shard-hours.
//!
//! Every decision is a pure function of the observed pressure series, so
//! an autoscaled run is byte-identical per seed — the scaling *schedule*
//! itself is reproducible.

use serde::Serialize;
use wlm_dbsim::time::SimTime;

/// Tuning for the elastic shard lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Shards active at build time and the floor the autoscaler never
    /// drains below.
    pub min_shards: usize,
    /// EWMA smoothing factor for the pressure signal.
    pub ema_alpha: f64,
    /// Smoothed pressure at or above which the up-streak accumulates.
    pub scale_up_pressure: f64,
    /// Smoothed pressure at or below which the down-streak accumulates.
    pub scale_down_pressure: f64,
    /// Consecutive over-pressure ticks required before a scale-up
    /// (hysteresis against bursts).
    pub sustain_ticks: u32,
    /// Consecutive under-pressure ticks required before a scale-down
    /// (much longer than `sustain_ticks`: spare capacity is cheap
    /// insurance, flapping is not).
    pub calm_ticks: u32,
    /// Simulated seconds a spawned shard spends warming before it counts
    /// as fully active.
    pub warmup_secs: f64,
    /// Grace period a draining shard gets to finish its queued work
    /// before the residue is force-moved to the survivors.
    pub drain_grace_secs: f64,
    /// Queue depth (controller queue plus inbox) that counts as pressure
    /// 1.0 on the queue axis of the signal.
    pub queue_target: f64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_shards: 1,
            ema_alpha: 0.2,
            scale_up_pressure: 0.85,
            scale_down_pressure: 0.35,
            sustain_ticks: 8,
            calm_ticks: 40,
            warmup_secs: 2.0,
            drain_grace_secs: 5.0,
            queue_target: 32.0,
        }
    }
}

/// Where one shard stands in the elastic lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum ShardStage {
    /// Decided-on this tick; routable from the next (boot latency).
    Spawning,
    /// Taking traffic with a cold buffer pool until `until`.
    Warming {
        /// When the shard graduates to [`ShardStage::Active`].
        until: SimTime,
    },
    /// Fully in service.
    Active,
    /// No longer routable; finishing its queued work until `deadline`.
    Draining {
        /// When any residue is force-moved to the survivors.
        deadline: SimTime,
    },
    /// Out of service: engine clock ticks along, no controller, no
    /// shard-hours charged.
    Retired,
}

impl ShardStage {
    /// Whether the front-end may route new arrivals to a shard in this
    /// stage.
    pub fn routable(&self) -> bool {
        matches!(self, ShardStage::Warming { .. } | ShardStage::Active)
    }

    /// Stable stage name (used in snapshots and experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            ShardStage::Spawning => "spawning",
            ShardStage::Warming { .. } => "warming",
            ShardStage::Active => "active",
            ShardStage::Draining { .. } => "draining",
            ShardStage::Retired => "retired",
        }
    }
}

/// A scale decision the cluster acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Spawn one retired shard.
    Up,
    /// Drain one active shard.
    Down,
}

/// The deterministic utilization/queue-depth controller: EWMA smoothing
/// plus dual-threshold hysteresis with debounce streaks on both edges.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: ElasticConfig,
    ema: f64,
    up_streak: u32,
    down_streak: u32,
}

impl Autoscaler {
    /// A fresh controller at zero pressure.
    pub fn new(cfg: ElasticConfig) -> Self {
        Autoscaler {
            cfg,
            ema: 0.0,
            up_streak: 0,
            down_streak: 0,
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &ElasticConfig {
        &self.cfg
    }

    /// Smoothed pressure signal.
    pub fn pressure_ema(&self) -> f64 {
        self.ema
    }

    /// Feed one tick's raw pressure sample; returns a decision when a
    /// debounce streak completes. Both streaks reset after a decision, so
    /// consecutive scale steps each re-earn their hysteresis.
    pub fn observe(&mut self, pressure: f64) -> Option<ScaleDecision> {
        let alpha = self.cfg.ema_alpha.clamp(0.0, 1.0);
        self.ema = alpha * pressure + (1.0 - alpha) * self.ema;
        if self.ema >= self.cfg.scale_up_pressure {
            self.up_streak += 1;
            self.down_streak = 0;
        } else if self.ema <= self.cfg.scale_down_pressure {
            self.down_streak += 1;
            self.up_streak = 0;
        } else {
            // The dead band between the thresholds: holding steady resets
            // both streaks, so a decision needs *consecutive* evidence.
            self.up_streak = 0;
            self.down_streak = 0;
        }
        if self.up_streak >= self.cfg.sustain_ticks.max(1) {
            self.up_streak = 0;
            self.down_streak = 0;
            return Some(ScaleDecision::Up);
        }
        if self.down_streak >= self.cfg.calm_ticks.max(1) {
            self.up_streak = 0;
            self.down_streak = 0;
            return Some(ScaleDecision::Down);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ElasticConfig {
        ElasticConfig {
            min_shards: 1,
            ema_alpha: 0.5,
            scale_up_pressure: 0.8,
            scale_down_pressure: 0.3,
            sustain_ticks: 3,
            calm_ticks: 5,
            ..ElasticConfig::default()
        }
    }

    #[test]
    fn sustained_pressure_scales_up_after_the_debounce() {
        let mut a = Autoscaler::new(quick());
        let mut decisions = Vec::new();
        for _ in 0..8 {
            if let Some(d) = a.observe(1.0) {
                decisions.push(d);
            }
        }
        // The EWMA crosses 0.8 on tick 3, the 3-tick streak completes on
        // tick 5 (first decision, streaks reset), and re-earns itself by
        // tick 8 — so 8 sustained ticks yield exactly two decisions.
        assert_eq!(decisions, vec![ScaleDecision::Up, ScaleDecision::Up]);
        assert!(a.pressure_ema() > 0.9);
    }

    #[test]
    fn calm_scales_down_and_the_dead_band_holds() {
        let mut a = Autoscaler::new(quick());
        for _ in 0..4 {
            a.observe(1.0);
        }
        // Mid-band pressure: no decision, streaks reset.
        for _ in 0..50 {
            assert_eq!(a.observe(0.55), None, "dead band never decides");
        }
        let mut downs = 0;
        for _ in 0..14 {
            if a.observe(0.0) == Some(ScaleDecision::Down) {
                downs += 1;
            }
        }
        assert!(downs >= 1, "sustained calm drains a shard");
    }

    #[test]
    fn a_burst_shorter_than_the_debounce_does_not_scale() {
        let mut a = Autoscaler::new(quick());
        for _ in 0..2 {
            assert_eq!(a.observe(1.0), None);
        }
        assert_eq!(a.observe(0.55), None, "burst over before the streak");
        for _ in 0..2 {
            assert_eq!(a.observe(1.0), None, "streak restarted from zero");
        }
    }

    #[test]
    fn stage_routability_and_names_are_stable() {
        assert!(ShardStage::Active.routable());
        assert!(ShardStage::Warming {
            until: SimTime::ZERO
        }
        .routable());
        assert!(!ShardStage::Spawning.routable());
        assert!(!ShardStage::Draining {
            deadline: SimTime::ZERO
        }
        .routable());
        assert!(!ShardStage::Retired.routable());
        assert_eq!(ShardStage::Spawning.name(), "spawning");
        assert_eq!(ShardStage::Retired.name(), "retired");
    }
}
