//! Deterministic gray-failure detection from link round-trip evidence.
//!
//! The taxonomy's monitoring axis distinguishes *fail-stop* nodes (the
//! crash outages PR 4 already models) from *gray* nodes that still answer
//! but answer slowly — the harder case, because naive health checks pass
//! while tail latency collapses. This detector consumes the round-trip
//! samples the [`LinkLayer`](crate::link::LinkLayer) produces (heartbeat
//! pongs and delivery acks) and classifies every shard:
//!
//! * **Healthy** — evidence keeps arriving with a round trip near the
//!   expected baseline;
//! * **Gray** — evidence keeps arriving, but the EMA-smoothed round trip
//!   exceeds `gray_score ×` the expected baseline (a straggler, not a
//!   corpse);
//! * **Dead** — no evidence at all for `dead_silence_secs` (a partition
//!   or crash; from the front-end's chair these are indistinguishable).
//!
//! The suspicion *score* is the ratio `ema_rtt / expected_rtt`, so 1.0
//! means nominal. Recovery is hysteretic: a Gray shard must decay below
//! `recover_score` before it is trusted again, which keeps the verdict
//! from flapping while the EMA crosses the threshold.
//!
//! Scores are pure functions of the sample stream, which is itself a
//! pure function of the seed — detection instants are deterministic and
//! experiment pins (E22/E23) can rely on them.

use serde::Serialize;
use wlm_dbsim::time::SimTime;

/// Tuning for [`FailureDetector`].
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Baseline round trip a healthy shard should show, seconds. Usually
    /// `2 × LinkConfig::delay_secs` plus jitter headroom.
    pub expected_rtt_secs: f64,
    /// Suspect Gray when `ema_rtt / expected_rtt` reaches this ratio.
    pub gray_score: f64,
    /// Trust a suspected shard again only once its score decays below
    /// this (hysteresis; must be below `gray_score`).
    pub recover_score: f64,
    /// Declare Dead after this much silence — no ack, no pong.
    pub dead_silence_secs: f64,
    /// Weight of each new sample in the EMA (0 < alpha <= 1).
    pub ema_alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            expected_rtt_secs: 0.05,
            gray_score: 4.0,
            recover_score: 2.0,
            dead_silence_secs: 2.0,
            ema_alpha: 0.3,
        }
    }
}

/// The detector's verdict on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ShardHealth {
    /// Evidence is fresh and round trips are near baseline.
    Healthy,
    /// Evidence is fresh but round trips are way above baseline.
    Gray,
    /// No evidence for longer than the silence bound.
    Dead,
}

impl ShardHealth {
    /// Stable label used in events and reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Gray => "gray",
            ShardHealth::Dead => "dead",
        }
    }
}

#[derive(Debug)]
struct ShardStat {
    ema_rtt: f64,
    last_heard: SimTime,
    health: ShardHealth,
}

/// Per-shard suspicion bookkeeping over the link's evidence stream.
#[derive(Debug)]
pub(crate) struct FailureDetector {
    cfg: DetectorConfig,
    shards: Vec<ShardStat>,
}

impl FailureDetector {
    pub(crate) fn new(cfg: DetectorConfig, shards: usize, now: SimTime) -> Self {
        let expected = cfg.expected_rtt_secs.max(1e-9);
        FailureDetector {
            shards: (0..shards)
                .map(|_| ShardStat {
                    ema_rtt: expected,
                    last_heard: now,
                    health: ShardHealth::Healthy,
                })
                .collect(),
            cfg,
        }
    }

    /// Feed one round-trip sample (ack or pong) for `shard`.
    pub(crate) fn observe(&mut self, shard: usize, rtt_secs: f64, now: SimTime) {
        let s = &mut self.shards[shard];
        let a = self.cfg.ema_alpha.clamp(0.0, 1.0);
        s.ema_rtt = (1.0 - a) * s.ema_rtt + a * rtt_secs;
        s.last_heard = now;
    }

    /// Current suspicion score of `shard` (1.0 = nominal round trips).
    pub(crate) fn score(&self, shard: usize) -> f64 {
        self.shards[shard].ema_rtt / self.cfg.expected_rtt_secs.max(1e-9)
    }

    /// Current verdict on `shard`.
    pub(crate) fn health(&self, shard: usize) -> ShardHealth {
        self.shards[shard].health
    }

    /// Re-classify every shard at `now`; returns the transitions that
    /// happened, as `(shard, new_health, score)`.
    pub(crate) fn evaluate(&mut self, now: SimTime) -> Vec<(usize, ShardHealth, f64)> {
        let mut transitions = Vec::new();
        for shard in 0..self.shards.len() {
            let silence = now.since(self.shards[shard].last_heard).as_secs_f64();
            let score = self.score(shard);
            let prev = self.shards[shard].health;
            let next = if silence >= self.cfg.dead_silence_secs {
                ShardHealth::Dead
            } else if score >= self.cfg.gray_score {
                ShardHealth::Gray
            } else if score <= self.cfg.recover_score {
                ShardHealth::Healthy
            } else {
                // Inside the hysteresis band: keep the previous verdict,
                // except that fresh evidence clears a Dead sentence down
                // to Gray (the shard is talking again, just slowly).
                match prev {
                    ShardHealth::Dead => ShardHealth::Gray,
                    other => other,
                }
            };
            if next != prev {
                self.shards[shard].health = next;
                transitions.push((shard, next, score));
            }
        }
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::time::SimDuration;

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    fn det(shards: usize) -> FailureDetector {
        FailureDetector::new(
            DetectorConfig {
                expected_rtt_secs: 0.1,
                gray_score: 4.0,
                recover_score: 2.0,
                dead_silence_secs: 1.0,
                ema_alpha: 0.5,
            },
            shards,
            SimTime::ZERO,
        )
    }

    #[test]
    fn slow_round_trips_turn_gray_then_recover_with_hysteresis() {
        let mut d = det(1);
        for i in 0..6 {
            d.observe(0, 1.0, secs(i as f64 * 0.1));
        }
        let t = d.evaluate(secs(0.6));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].1, ShardHealth::Gray);
        assert!(t[0].2 >= 4.0, "score {}", t[0].2);
        // A good sample pulls the EMA down, but nowhere near the recover
        // threshold yet: the verdict must hold, not flap.
        d.observe(0, 0.1, secs(0.7));
        assert!(d.evaluate(secs(0.7)).is_empty());
        assert_eq!(d.health(0), ShardHealth::Gray);
        for i in 0..8 {
            d.observe(0, 0.1, secs(0.8 + i as f64 * 0.1));
        }
        let t = d.evaluate(secs(1.6));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].1, ShardHealth::Healthy);
    }

    #[test]
    fn silence_means_dead_and_fresh_evidence_revives() {
        let mut d = det(2);
        d.observe(0, 0.1, secs(2.0));
        // Shard 1 has heard nothing since t=0.
        let t = d.evaluate(secs(2.0));
        assert_eq!(t, vec![(1, ShardHealth::Dead, 1.0)]);
        assert_eq!(d.health(0), ShardHealth::Healthy);
        // It comes back talking normally: straight to Healthy.
        d.observe(1, 0.1, secs(2.5));
        let t = d.evaluate(secs(2.5));
        assert_eq!(t, vec![(1, ShardHealth::Healthy, 1.0)]);
    }

    #[test]
    fn dead_shard_talking_slowly_downgrades_to_gray() {
        let mut d = det(1);
        assert_eq!(d.evaluate(secs(1.5)), vec![(0, ShardHealth::Dead, 1.0)]);
        // Evidence resumes but round trips are in the hysteresis band:
        // the shard is alive, just not yet trustworthy.
        d.observe(0, 0.5, secs(1.6)); // ema 0.3 -> score 3.0, inside the band
        let t = d.evaluate(secs(1.6));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].1, ShardHealth::Gray);
    }
}
