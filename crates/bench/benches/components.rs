//! Criterion micro-benchmarks of the building blocks: the simulated engine
//! step loop, the resource allocator, the lock manager, the controllers and
//! the decision models. These bound the overhead a workload-management
//! layer adds per control cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wlm_control::economic::{Consumer, EconomicMarket};
use wlm_control::fuzzy::{FuzzyController, FuzzyRule, FuzzyVariable};
use wlm_control::pi::PiController;
use wlm_control::queueing::ClosedNetwork;
use wlm_core::admission::{DecisionTree, ThresholdAdmission};
use wlm_core::api::AdmissionController;
use wlm_core::execution::{optimal_suspend_plan, SuspendCosts};
use wlm_core::policy::AdmissionPolicy;
use wlm_dbsim::engine::{DbEngine, EngineConfig};
use wlm_dbsim::locks::LockTable;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::resources::{fair_share, Claim};

fn engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    for &n in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine = DbEngine::new(EngineConfig::default());
            for _ in 0..n {
                engine.submit(
                    PlanBuilder::table_scan(50_000_000)
                        .filter(0.5)
                        .aggregate(100)
                        .build()
                        .into_spec(),
                );
            }
            b.iter(|| {
                black_box(engine.step());
            });
        });
    }
    group.finish();
}

fn allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_share");
    for &n in &[16usize, 256, 2048] {
        let claims: Vec<Claim> = (0..n)
            .map(|i| Claim {
                weight: 1.0 + (i % 4) as f64,
                demand: 100.0 + (i % 17) as f64 * 50.0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &claims, |b, claims| {
            b.iter(|| black_box(fair_share(black_box(10_000.0), claims)));
        });
    }
    group.finish();
}

fn locks(c: &mut Criterion) {
    c.bench_function("lock_table_acquire_release_64txns", |b| {
        b.iter(|| {
            let mut lt = LockTable::new();
            for txn in 0..64u64 {
                let keys: Vec<u64> = (0..4).map(|k| (txn * 7 + k * 13) % 100).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                sorted.dedup();
                let n = sorted.len();
                let _ = lt.acquire_up_to(txn, &sorted, n);
            }
            for txn in 0..64u64 {
                black_box(lt.release_all(txn));
            }
        });
    });
}

fn controllers(c: &mut Criterion) {
    c.bench_function("pi_controller_update", |b| {
        let mut pi = PiController::new(0.4, 0.15, 0.0, 1.0);
        let mut e = 1.0;
        b.iter(|| {
            e = -e;
            black_box(pi.update(black_box(e)))
        });
    });

    c.bench_function("fuzzy_inference_3vars_5rules", |b| {
        let vars = vec![
            FuzzyVariable::low_medium_high("progress", 0.0, 1.0),
            FuzzyVariable::low_medium_high("resource", 0.0, 1.0),
            FuzzyVariable::low_medium_high("priority", 0.0, 1.0),
        ];
        let rules = vec![
            FuzzyRule::when(&[(0, "low"), (1, "high"), (2, "low")], "kill"),
            FuzzyRule::when(&[(0, "high"), (1, "high")], "reprioritize"),
            FuzzyRule::when(&[(1, "low")], "none"),
            FuzzyRule::when(&[(2, "high")], "none"),
            FuzzyRule::when(&[(0, "medium"), (1, "medium")], "none"),
        ];
        let ctl = FuzzyController::new(vars, rules);
        b.iter(|| black_box(ctl.best_action(black_box(&[0.3, 0.8, 0.2]))));
    });

    c.bench_function("economic_market_clear_32", |b| {
        let consumers: Vec<Consumer> = (0..32)
            .map(|i| Consumer {
                name: format!("c{i}"),
                wealth: 1.0 + (i % 5) as f64,
                demand: 50.0,
            })
            .collect();
        let market = EconomicMarket::new(100.0);
        b.iter(|| black_box(market.clear(black_box(&consumers))));
    });

    c.bench_function("mva_closed_network_n128", |b| {
        let net = ClosedNetwork::new(vec![0.05, 0.02, 0.01], 1.0);
        b.iter(|| black_box(net.mva(black_box(128))));
    });
}

fn decisions(c: &mut Criterion) {
    c.bench_function("threshold_admission_decide", |b| {
        let mut adm = ThresholdAdmission::with_global_mpl(32).with_policy(
            "bi",
            AdmissionPolicy {
                max_cost_timerons: Some(1e6),
                ..Default::default()
            },
        );
        let spec = PlanBuilder::table_scan(1_000_000).build().into_spec();
        let est = wlm_dbsim::optimizer::CostModel::oracle().estimate_spec(&spec);
        let req = wlm_core::api::ManagedRequest {
            request: wlm_workload::request::Request {
                id: wlm_workload::request::RequestId(1),
                arrival: wlm_dbsim::time::SimTime::ZERO,
                origin: wlm_workload::request::Origin::new("a", "u", 1),
                spec,
                importance: wlm_workload::request::Importance::Medium,
                shard_key: None,
            },
            estimate: est,
            workload: "bi".into(),
            importance: wlm_workload::request::Importance::Medium,
            weight: 1.0,
        };
        let snap = wlm_core::api::SystemSnapshot::default();
        b.iter(|| black_box(adm.decide(black_box(&req), black_box(&snap))));
    });

    c.bench_function("decision_tree_fit_400x6", |b| {
        let x: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                (0..6)
                    .map(|d| ((i * 31 + d * 17) % 100) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] > 5.0)).collect();
        b.iter(|| black_box(DecisionTree::fit(black_box(&x), black_box(&y), 4, 6, 4)));
    });

    c.bench_function("optimal_suspend_plan_32q", |b| {
        let costs: Vec<SuspendCosts> = (0..32)
            .map(|i| SuspendCosts {
                dump_suspend_us: 100_000 + i * 10_000,
                dump_resume_us: 100_000 + i * 10_000,
                goback_suspend_us: 100,
                goback_resume_us: 50_000 * (i + 1),
            })
            .collect();
        b.iter(|| black_box(optimal_suspend_plan(black_box(&costs), 2_000_000)));
    });
}

criterion_group!(
    benches,
    engine_step,
    allocator,
    locks,
    controllers,
    decisions
);
criterion_main!(benches);
