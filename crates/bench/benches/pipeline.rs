//! Criterion benches of the full workload-management pipeline: what one
//! control cycle costs with each technique stack enabled. This bounds the
//! overhead the management layer adds on top of the simulated engine —
//! the practical "is the WLM layer itself cheap?" question.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wlm_core::admission::ThresholdAdmission;
use wlm_core::api::WlmBuilder;
use wlm_core::autonomic::{AutonomicController, GoalSpec};
use wlm_core::execution::{PriorityAging, UtilityThrottler};
use wlm_core::manager::WorkloadManager;
use wlm_core::policy::{AdmissionPolicy, AdmissionViolationAction};
use wlm_core::scheduling::ServiceClassConfig;
use wlm_core::scheduling::{PriorityScheduler, UtilityScheduler};
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_workload::generators::{BiSource, OltpSource};
use wlm_workload::mix::MixedSource;

fn builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
}

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(60.0, seed)))
        .with(Box::new(BiSource::new(2.0, seed + 1)))
}

fn build_manager(stack: &str) -> WorkloadManager {
    let mut mgr = builder().build().expect("valid configuration");
    match stack {
        "unmanaged" => {}
        "admission+priority" => {
            mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
                "bi",
                AdmissionPolicy {
                    max_workload_mpl: Some(4),
                    on_violation: AdmissionViolationAction::Defer,
                    ..Default::default()
                },
            )));
            mgr.set_scheduler(Box::new(PriorityScheduler::new(32)));
        }
        "full-stack" => {
            mgr.set_admission(Box::new(ThresholdAdmission::with_global_mpl(64)));
            mgr.set_scheduler(Box::new(UtilityScheduler::new(
                vec![
                    ServiceClassConfig {
                        workload: "oltp".into(),
                        goal_secs: 0.5,
                        importance_weight: 8.0,
                    },
                    ServiceClassConfig {
                        workload: "bi".into(),
                        goal_secs: 60.0,
                        importance_weight: 2.0,
                    },
                ],
                30_000_000.0,
            )));
            mgr.add_exec_controller(Box::new(PriorityAging::new(30.0)));
            mgr.add_exec_controller(Box::new(UtilityThrottler::new("oltp", 0.02, 0.3)));
            mgr.add_exec_controller(Box::new(AutonomicController::new(vec![GoalSpec {
                workload: "oltp".into(),
                goal_secs: 0.5,
                importance_weight: 10.0,
            }])));
        }
        other => panic!("unknown stack {other}"),
    }
    mgr
}

/// Cost of one control cycle (tick) at a warm steady state, per stack.
fn manager_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_tick");
    for stack in ["unmanaged", "admission+priority", "full-stack"] {
        group.bench_with_input(BenchmarkId::from_parameter(stack), &stack, |b, stack| {
            let mut mgr = build_manager(stack);
            let mut sources = mix(7);
            // Warm up to a populated steady state.
            for _ in 0..2_000 {
                mgr.tick(&mut sources);
            }
            b.iter(|| {
                mgr.tick(black_box(&mut sources));
            });
        });
    }
    group.finish();
}

/// Simulated-seconds-per-wall-second of the whole harness (how fast the
/// experiments run), one short consolidation run per iteration.
fn simulation_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_rate");
    group.sample_size(10);
    group.bench_function("10s_consolidation_run", |b| {
        b.iter(|| {
            let mut mgr = build_manager("admission+priority");
            let mut sources = mix(11);
            let report = mgr.run(
                black_box(&mut sources),
                wlm_dbsim::time::SimDuration::from_secs(10),
            );
            black_box(report.completed)
        });
    });
    group.finish();
}

criterion_group!(benches, manager_tick, simulation_rate);
criterion_main!(benches);
