//! E10, E13 — the autonomic-loop and dynamic-characterization experiments.

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_core::autonomic::{AutonomicController, GoalSpec};
use wlm_core::characterize::{SnapshotFeatures, WorkloadTypeClassifier};
use wlm_core::policy::WorkloadPolicy;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{BiSource, OltpSource, Source};
use wlm_workload::request::{Importance, Request};
use wlm_workload::sla::ServiceLevelAgreement;

struct ShiftSource {
    oltp: OltpSource,
    bi: BiSource,
    start_bi_at: SimTime,
}

impl Source for ShiftSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        let mut all = self.oltp.poll(from, to);
        let bi = self.bi.poll(from, to);
        if to >= self.start_bi_at {
            all.extend(bi); // earlier BI arrivals are discarded
        }
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    fn label(&self) -> &str {
        "shift"
    }
}

fn shift_mix(seed: u64) -> ShiftSource {
    ShiftSource {
        oltp: OltpSource::new(40.0, seed),
        bi: BiSource::new(4.0, seed + 1).with_size(40_000_000.0, 0.6),
        start_bi_at: SimTime::ZERO + SimDuration::from_secs(45),
    }
}

/// Result of E10.
#[derive(Debug, Clone, Serialize)]
pub struct E10Result {
    /// OLTP completions with no controls.
    pub fixed_oltp_completed: u64,
    /// OLTP completions under the MAPE loop.
    pub mape_oltp_completed: u64,
    /// OLTP p95 with no controls, seconds.
    pub fixed_oltp_p95: f64,
    /// OLTP p95 under the MAPE loop, seconds.
    pub mape_oltp_p95: f64,
    /// Distinct technique decisions the planner made.
    pub mape_distinct_decisions: usize,
}

/// E10 — the autonomic MAPE loop versus a fixed (no-op) policy across a
/// workload shift (§5.3). The unmanaged run freezes when the BI herd
/// overcommits memory; the loop escalates through the execution-control
/// ladder and keeps OLTP completing.
pub fn e10_mape() -> E10Result {
    let builder = || {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 8,
                memory_mb: 256,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .policy(
                WorkloadPolicy::new("oltp", Importance::Critical)
                    .with_sla(ServiceLevelAgreement::percentile(95.0, 0.3)),
            )
            .uniform_weights(true)
    };
    let horizon = SimDuration::from_secs(180);

    let mut fixed = builder().build().expect("valid configuration");
    let fixed_report = fixed.run(&mut shift_mix(900), horizon);

    let mut managed = builder().build().expect("valid configuration");
    let controller = AutonomicController::new(vec![GoalSpec {
        workload: "oltp".into(),
        goal_secs: 0.3,
        importance_weight: 10.0,
    }]);
    let decisions = controller.decisions();
    managed.add_exec_controller(Box::new(controller));
    let mape_report = managed.run(&mut shift_mix(900), horizon);

    let distinct: std::collections::BTreeSet<String> = decisions
        .borrow()
        .iter()
        .map(|(_, d)| format!("{d:?}"))
        .collect();
    E10Result {
        fixed_oltp_completed: fixed_report
            .workload("oltp")
            .map_or(0, |w| w.stats.completed),
        mape_oltp_completed: mape_report
            .workload("oltp")
            .map_or(0, |w| w.stats.completed),
        fixed_oltp_p95: fixed_report
            .workload("oltp")
            .map_or(f64::NAN, |w| w.summary.p95),
        mape_oltp_p95: mape_report
            .workload("oltp")
            .map_or(f64::NAN, |w| w.summary.p95),
        mape_distinct_decisions: distinct.len(),
    }
}

impl E10Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E10 — autonomic MAPE loop across a workload shift (§5.3)\n  \
             fixed policy: oltp completed {:>5}, p95 {:.3}s (drowned by the BI herd)\n  \
             MAPE loop:    oltp completed {:>5}, p95 {:.3}s ({} distinct planner decisions)\n",
            self.fixed_oltp_completed,
            self.fixed_oltp_p95,
            self.mape_oltp_completed,
            self.mape_oltp_p95,
            self.mape_distinct_decisions
        )
    }
}

/// Result of E13.
#[derive(Debug, Clone, Serialize)]
pub struct E13Result {
    /// Hold-out classification accuracy.
    pub accuracy: f64,
    /// Snapshots (5s windows) until the classifier notices an OLTP→DSS
    /// shift in a streaming test.
    pub shift_detect_windows: usize,
}

/// Build snapshot features from a window of requests.
fn features_of(requests: &[Request], window_secs: f64, model: &CostModel) -> SnapshotFeatures {
    if requests.is_empty() {
        return SnapshotFeatures::default();
    }
    let n = requests.len() as f64;
    let (mut cost_sum, mut rows_sum, mut writes) = (0.0, 0.0, 0usize);
    for r in requests {
        let est = model.estimate_spec(&r.spec);
        cost_sum += est.timerons;
        rows_sum += est.rows as f64;
        if r.spec.plan.is_write() {
            writes += 1;
        }
    }
    SnapshotFeatures {
        log_mean_cost: (cost_sum / n).max(1.0).log10(),
        write_fraction: writes as f64 / n,
        arrival_rate: n / window_secs,
        log_mean_rows: (rows_sum / n).max(1.0).log10(),
    }
}

/// E13 — dynamic workload characterization (Elnaffar \[19]): train on
/// labelled OLTP and DSS snapshot windows generated by the actual workload
/// generators, measure hold-out accuracy, then stream a mid-run shift and
/// count windows until detection.
pub fn e13_classifier() -> E13Result {
    let model = CostModel::oracle();
    let window = SimDuration::from_secs(5);
    let snap_stream = |mut src: Box<dyn Source>, windows: usize| -> Vec<SnapshotFeatures> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..windows {
            let end = t + window;
            let reqs = src.poll(t, end);
            out.push(features_of(&reqs, window.as_secs_f64(), &model));
            t = end;
        }
        out
    };

    // Training data: 40 windows of each type, varied rates.
    let mut train = Vec::new();
    for (i, rate) in [30.0, 60.0, 90.0, 120.0].into_iter().enumerate() {
        for f in snap_stream(Box::new(OltpSource::new(rate, 1_300 + i as u64)), 10) {
            train.push((f, "OLTP".to_string()));
        }
    }
    for (i, rate) in [0.5, 1.0, 2.0, 4.0].into_iter().enumerate() {
        for f in snap_stream(Box::new(BiSource::new(rate, 1_400 + i as u64)), 10) {
            train.push((f, "DSS".to_string()));
        }
    }
    let clf = WorkloadTypeClassifier::train(&train);

    // Hold-out accuracy.
    let mut correct = 0;
    let mut total = 0;
    for f in snap_stream(Box::new(OltpSource::new(75.0, 1_500)), 20) {
        total += 1;
        if clf.identify(&f) == "OLTP" {
            correct += 1;
        }
    }
    for f in snap_stream(Box::new(BiSource::new(1.5, 1_501)), 20) {
        total += 1;
        if clf.identify(&f) == "DSS" {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / total as f64;

    // Shift detection: 10 OLTP windows then DSS windows; count windows
    // after the shift until the first DSS verdict.
    let mut mix_pre = snap_stream(Box::new(OltpSource::new(60.0, 1_600)), 10);
    let post = snap_stream(Box::new(BiSource::new(2.0, 1_601)), 10);
    mix_pre.extend(post);
    let mut shift_detect_windows = 10;
    for (i, f) in mix_pre.iter().enumerate().skip(10) {
        if clf.identify(f) == "DSS" {
            shift_detect_windows = i - 10 + 1;
            break;
        }
    }
    E13Result {
        accuracy,
        shift_detect_windows,
    }
}

impl E13Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E13 — dynamic workload characterization (Elnaffar et al.)\n  \
             hold-out accuracy {:.1}% | OLTP->DSS shift detected after {} five-second window(s)\n",
            self.accuracy * 100.0,
            self.shift_detect_windows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_loop_keeps_oltp_alive() {
        let r = e10_mape();
        // The loop restores the OLTP tail by an order of magnitude...
        assert!(
            r.mape_oltp_p95 < r.fixed_oltp_p95 * 0.5,
            "mape p95 {} vs fixed {}",
            r.mape_oltp_p95,
            r.fixed_oltp_p95
        );
        // ...to (approximately) the 0.3 s goal, without losing completions.
        assert!(r.mape_oltp_p95 < 0.45, "p95 {}", r.mape_oltp_p95);
        assert!(r.mape_oltp_completed >= r.fixed_oltp_completed);
        assert!(
            r.mape_distinct_decisions >= 2,
            "the planner used its ladder"
        );
    }

    #[test]
    fn e13_classifier_is_accurate_and_fast() {
        let r = e13_classifier();
        assert!(r.accuracy > 0.9, "accuracy {}", r.accuracy);
        assert!(
            r.shift_detect_windows <= 2,
            "detected after {} windows",
            r.shift_detect_windows
        );
    }
}
