//! E3, E6, E11 — the scheduling experiments.

use serde::Serialize;
use wlm_core::api::Scheduler;
use wlm_core::api::WlmBuilder;
use wlm_core::policy::WorkloadPolicy;
use wlm_core::scheduling::{
    FcfsScheduler, MplFeedbackScheduler, PriorityScheduler, RankScheduler, Restructurer,
    ServiceClassConfig, UtilityScheduler,
};
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{AdHocSource, BiSource, OltpSource, Source};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::{Importance, Request};
use wlm_workload::sla::ServiceLevelAgreement;

/// A two-phase source: OLTP-heavy then BI-heavy (the "dynamic environment"
/// in which static thresholds fail, §3.3).
struct PhasedMix {
    oltp: OltpSource,
    bi: BiSource,
    switch_at: SimTime,
    switched: bool,
}

impl PhasedMix {
    fn new(seed: u64, switch_secs: u64) -> Self {
        PhasedMix {
            oltp: OltpSource::new(80.0, seed),
            bi: BiSource::new(0.2, seed + 1).with_size(6_000_000.0, 0.6),
            switch_at: SimTime::ZERO + SimDuration::from_secs(switch_secs),
            switched: false,
        }
    }
}

impl Source for PhasedMix {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        if !self.switched && to >= self.switch_at {
            self.switched = true;
            // Phase 2: BI floods in, OLTP drops off.
            self.oltp.set_rate(10.0);
            self.bi.set_rate(3.0);
        }
        let mut all = self.oltp.poll(from, to);
        all.extend(self.bi.poll(from, to));
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    fn label(&self) -> &str {
        "phased"
    }
}

/// One variant row of E3.
#[derive(Debug, Clone, Serialize)]
pub struct E3Row {
    /// Variant name.
    pub variant: String,
    /// OLTP p95 over the whole run, seconds.
    pub oltp_p95: f64,
    /// Total completions.
    pub completed: u64,
    /// BI queries finished.
    pub bi_completed: u64,
}

/// Result of E3.
#[derive(Debug, Clone, Serialize)]
pub struct E3Result {
    /// All variants.
    pub rows: Vec<E3Row>,
}

/// E3 — static MPLs under/over-load a dynamic environment; feedback MPL
/// adapts (§3.3). The mix flips from OLTP-heavy to BI-heavy at t=60s.
pub fn e3_dynamic_mpl() -> E3Result {
    let builder = || {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 8,
                memory_mb: 1_024,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .policy(
                WorkloadPolicy::new("oltp", Importance::High)
                    .with_sla(ServiceLevelAgreement::percentile(95.0, 0.5)),
            )
    };
    let run = |name: &str, scheduler: Box<dyn Scheduler>| -> E3Row {
        let mut mgr = builder().build().expect("valid configuration");
        mgr.set_scheduler(scheduler);
        let report = mgr.run(&mut PhasedMix::new(200, 60), SimDuration::from_secs(150));
        E3Row {
            variant: name.into(),
            oltp_p95: report.workload("oltp").map_or(f64::NAN, |w| w.summary.p95),
            completed: report.completed,
            bi_completed: report.workload("bi").map_or(0, |w| w.stats.completed),
        }
    };
    E3Result {
        rows: vec![
            run(
                "static MPL 64 (tuned for phase 1)",
                Box::new(FcfsScheduler::new(64)),
            ),
            run(
                "static MPL 6 (tuned for phase 2)",
                Box::new(FcfsScheduler::new(6)),
            ),
            run(
                "feedback-controlled MPL",
                Box::new(MplFeedbackScheduler::new(32, "oltp", 0.4)),
            ),
        ],
    }
}

impl E3Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E3 — static vs feedback MPL across a workload shift (§3.3)\n  variant                               oltp p95   total done  bi done\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<37} {:>7.3}s   {:>8}  {:>7}\n",
                r.variant, r.oltp_p95, r.completed, r.bi_completed
            ));
        }
        out
    }
}

/// One scheduler row of E6.
#[derive(Debug, Clone, Serialize)]
pub struct E6Row {
    /// Scheduler name.
    pub scheduler: String,
    /// OLTP p95, seconds.
    pub oltp_p95: f64,
    /// Whether OLTP met its SLO.
    pub oltp_met: bool,
    /// BI mean response, seconds.
    pub bi_mean: f64,
    /// Total completions.
    pub completed: u64,
}

/// Result of E6.
#[derive(Debug, Clone, Serialize)]
pub struct E6Result {
    /// All schedulers on the same mix and MPL budget.
    pub rows: Vec<E6Row>,
}

/// E6 — queue-management schedulers on a mixed load under one MPL budget
/// (§4.2.1): FCFS vs priority vs rank function vs Niu's utility scheduler.
pub fn e6_schedulers() -> E6Result {
    let builder = || {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 8,
                memory_mb: 1_024,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .policies([
                WorkloadPolicy::new("oltp", Importance::High)
                    .with_sla(ServiceLevelAgreement::percentile(95.0, 0.5)),
                WorkloadPolicy::new("bi", Importance::Medium),
            ])
    };
    let mix = || {
        MixedSource::new()
            .with(Box::new(OltpSource::new(40.0, 300)))
            .with(Box::new(
                BiSource::new(1.5, 301).with_size(8_000_000.0, 0.8),
            ))
    };
    let run = |name: &str, scheduler: Box<dyn Scheduler>| -> E6Row {
        let mut mgr = builder().build().expect("valid configuration");
        mgr.set_scheduler(scheduler);
        let report = mgr.run(&mut mix(), SimDuration::from_secs(120));
        E6Row {
            scheduler: name.into(),
            oltp_p95: report.workload("oltp").map_or(f64::NAN, |w| w.summary.p95),
            oltp_met: report.workload("oltp").is_some_and(|w| w.sla.met()),
            bi_mean: report.workload("bi").map_or(f64::NAN, |w| w.summary.mean),
            completed: report.completed,
        }
    };
    E6Result {
        rows: vec![
            run("FCFS (MPL 12)", Box::new(FcfsScheduler::new(12))),
            run("Priority (MPL 12)", Box::new(PriorityScheduler::new(12))),
            run("Rank/FEED (MPL 12)", Box::new(RankScheduler::new(12))),
            run(
                "Utility cost-limit (Niu)",
                Box::new(UtilityScheduler::new(
                    vec![
                        ServiceClassConfig {
                            workload: "oltp".into(),
                            goal_secs: 0.5,
                            importance_weight: 8.0,
                        },
                        ServiceClassConfig {
                            workload: "bi".into(),
                            goal_secs: 90.0,
                            importance_weight: 2.0,
                        },
                    ],
                    40_000_000.0,
                )),
            ),
        ],
    }
}

impl E6Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E6 — scheduler comparison on a mixed load (§4.2.1)\n  scheduler                   oltp p95   oltp SLO   bi mean    total done\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<27} {:>7.3}s   {:<7}  {:>7.2}s   {:>8}\n",
                r.scheduler,
                r.oltp_p95,
                if r.oltp_met { "MET" } else { "MISSED" },
                r.bi_mean,
                r.completed
            ));
        }
        out
    }
}

/// Result of E11.
#[derive(Debug, Clone, Serialize)]
pub struct E11Result {
    /// Short-query p95 without restructuring, seconds.
    pub short_p95_whole: f64,
    /// Short-query p95 with restructuring, seconds.
    pub short_p95_sliced: f64,
    /// Monster completions without restructuring.
    pub monsters_whole: u64,
    /// Monster completions with restructuring.
    pub monsters_sliced: u64,
}

/// E11 — query restructuring frees short queries from convoying behind
/// monsters (§3.3): an FCFS gate at MPL 2 with occasional huge ad-hoc
/// queries and a stream of small BI queries.
pub fn e11_restructuring() -> E11Result {
    let run = |restructure: bool| -> (f64, u64) {
        let mut mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 8,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .build()
            .expect("valid configuration");
        mgr.set_scheduler(Box::new(FcfsScheduler::new(2)));
        if restructure {
            mgr.set_restructurer(Restructurer {
                slice_threshold_timerons: 5_000_000.0,
                target_piece_timerons: 3_000_000.0,
                max_pieces: 24,
            });
        }
        let mut mix = MixedSource::new()
            .with(Box::new(
                BiSource::new(1.5, 400)
                    .with_label("short")
                    .with_size(300_000.0, 0.3),
            ))
            .with(Box::new(AdHocSource::new(0.08, 401)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(180));
        (
            report.workload("short").map_or(f64::NAN, |w| w.summary.p95),
            report.workload("adhoc").map_or(0, |w| w.stats.completed),
        )
    };
    let (short_p95_whole, monsters_whole) = run(false);
    let (short_p95_sliced, monsters_sliced) = run(true);
    E11Result {
        short_p95_whole,
        short_p95_sliced,
        monsters_whole,
        monsters_sliced,
    }
}

impl E11Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E11 — query restructuring (slicing) vs convoying (§3.3)\n  \
             whole monsters:  short-query p95 {:>8.3}s   monsters finished {}\n  \
             sliced monsters: short-query p95 {:>8.3}s   monsters finished {}\n  \
             slicing lets short queries overtake between pieces\n",
            self.short_p95_whole, self.monsters_whole, self.short_p95_sliced, self.monsters_sliced
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_feedback_beats_both_static_settings() {
        let r = e3_dynamic_mpl();
        let wide = &r.rows[0];
        let narrow = &r.rows[1];
        let feedback = &r.rows[2];
        // The wide static MPL lets phase-2 BI trash OLTP response times; the
        // narrow one throttles phase-1 throughput. Feedback lands near the
        // better of both on each axis.
        assert!(
            feedback.oltp_p95 < wide.oltp_p95 * 0.9 || feedback.completed > wide.completed,
            "feedback {feedback:?} vs wide {wide:?}"
        );
        assert!(
            feedback.completed as f64 >= narrow.completed as f64 * 0.95,
            "feedback {feedback:?} vs narrow {narrow:?}"
        );
    }

    #[test]
    fn e6_differentiated_schedulers_protect_oltp() {
        let r = e6_schedulers();
        let fcfs = &r.rows[0];
        let prio = &r.rows[1];
        let rank = &r.rows[2];
        let util = &r.rows[3];
        assert!(
            prio.oltp_p95 < fcfs.oltp_p95,
            "priority beats FCFS for OLTP"
        );
        assert!(rank.oltp_p95 < fcfs.oltp_p95, "rank beats FCFS for OLTP");
        assert!(util.oltp_p95 < fcfs.oltp_p95, "utility beats FCFS for OLTP");
    }

    #[test]
    fn e11_slicing_shrinks_short_query_tail() {
        let r = e11_restructuring();
        assert!(
            r.short_p95_sliced < r.short_p95_whole * 0.7,
            "sliced {} vs whole {}",
            r.short_p95_sliced,
            r.short_p95_whole
        );
    }
}
