//! E1 — the throughput-vs-MPL thrashing knee (§3.2 of the paper).
//!
//! "If the number of requests increases, throughput of the system increases
//! up to some maximum. Beyond the maximum, it begins to decrease
//! dramatically as the system starts thrashing", and "for the same database
//! system, different types of workloads have different optimal MPLs."
//!
//! The experiment drives a backlog of identical queries through an FCFS
//! gate at a fixed MPL and measures completion throughput, for two workload
//! types: memory-hungry analytical queries (early knee — memory overcommit)
//! and lean CPU/IO queries (late knee — pure saturation).

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_core::scheduling::FcfsScheduler;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::Source;
use wlm_workload::request::{Importance, Origin, Request, RequestId};

/// A pre-built backlog of requests all arriving at t=0.
pub struct Backlog {
    requests: Vec<Request>,
    served: bool,
}

impl Backlog {
    /// Build a backlog of `n` copies of a query with the given demands.
    pub fn uniform(n: usize, cpu_secs: f64, io_pages: u64, mem_mb: u64) -> Self {
        let requests = (0..n)
            .map(|i| {
                let mut plan = PlanBuilder::utility(cpu_secs, io_pages).build();
                plan.ops[0].mem_mb = mem_mb;
                Request {
                    id: RequestId(i as u64 + 1),
                    arrival: SimTime::ZERO,
                    origin: Origin::new("backlog", "bench", i as u64),
                    spec: plan.into_spec().labeled("backlog"),
                    importance: Importance::Medium,
                    shard_key: None,
                }
            })
            .collect();
        Backlog {
            requests,
            served: false,
        }
    }
}

impl Source for Backlog {
    fn poll(&mut self, _from: SimTime, _to: SimTime) -> Vec<Request> {
        if self.served {
            Vec::new()
        } else {
            self.served = true;
            std::mem::take(&mut self.requests)
        }
    }

    fn label(&self) -> &str {
        "backlog"
    }
}

/// One point of the MPL curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MplPoint {
    /// The fixed MPL.
    pub mpl: usize,
    /// Throughput of the memory-hungry analytical workload, completions/s.
    pub tput_analytical: f64,
    /// Throughput of the lean workload, completions/s.
    pub tput_lean: f64,
}

/// Result of E1.
#[derive(Debug, Clone, Serialize)]
pub struct E1Result {
    /// The measured curve.
    pub points: Vec<MplPoint>,
    /// argmax MPL of the analytical workload.
    pub knee_analytical: usize,
    /// argmax MPL of the lean workload.
    pub knee_lean: usize,
}

fn run_backlog(mpl: usize, cpu_secs: f64, io_pages: u64, mem_mb: u64) -> f64 {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            disk_pages_per_sec: 40_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(FcfsScheduler::new(mpl)));
    let mut backlog = Backlog::uniform(400, cpu_secs, io_pages, mem_mb);
    let horizon = SimDuration::from_secs(60);
    let report = mgr.run(&mut backlog, horizon);
    report.completed as f64 / horizon.as_secs_f64()
}

/// Run E1: sweep MPL for both workload types.
pub fn e1_mpl_curve() -> E1Result {
    let mpls = [1usize, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64];
    let points: Vec<MplPoint> = mpls
        .iter()
        .map(|&mpl| MplPoint {
            mpl,
            // Analytical: 0.3s CPU + 6k pages + 256 MiB each — eight of them
            // fill memory.
            tput_analytical: run_backlog(mpl, 0.3, 6_000, 256),
            // Lean: same CPU/IO, trivial memory.
            tput_lean: run_backlog(mpl, 0.3, 6_000, 4),
        })
        .collect();
    let knee = |f: fn(&MplPoint) -> f64| {
        points
            .iter()
            .max_by(|a, b| f(a).total_cmp(&f(b)))
            .map(|p| p.mpl)
            .unwrap_or(0)
    };
    E1Result {
        knee_analytical: knee(|p| p.tput_analytical),
        knee_lean: knee(|p| p.tput_lean),
        points,
    }
}

impl E1Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E1 — throughput vs MPL (thrashing knee; §3.2)\n  MPL   analytical(mem-hungry)   lean\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:>3}   {:>10.2}/s             {:>7.2}/s\n",
                p.mpl, p.tput_analytical, p.tput_lean
            ));
        }
        out.push_str(&format!(
            "  knee: analytical at MPL {}, lean at MPL {} (different optimal MPLs per workload type)\n",
            self.knee_analytical, self.knee_lean
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_workload_thrashes_lean_does_not() {
        let r = e1_mpl_curve();
        // Shape 1: the analytical curve rises then falls.
        let first = r.points.first().unwrap();
        let peak = r
            .points
            .iter()
            .map(|p| p.tput_analytical)
            .fold(0.0f64, f64::max);
        let last = r.points.last().unwrap();
        assert!(peak > first.tput_analytical * 1.3, "rises to a knee");
        assert!(
            last.tput_analytical < peak * 0.8,
            "falls beyond the knee: peak {peak}, at 64 {}",
            last.tput_analytical
        );
        // Shape 2: the lean workload's knee is at a higher MPL.
        assert!(r.knee_lean > r.knee_analytical);
        // Shape 3: lean throughput does not collapse at high MPL.
        assert!(last.tput_lean > 0.8 * r.points.iter().map(|p| p.tput_lean).fold(0.0f64, f64::max));
    }
}
