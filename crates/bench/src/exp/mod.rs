//! The quantitative experiments (E1–E27 of DESIGN.md).

pub mod ablations;
pub mod admission;
pub mod arrivals;
pub mod autonomic;
pub mod cluster;
pub mod crash;
pub mod durability;
pub mod elastic;
pub mod engine;
pub mod execution;
pub mod fabric;
pub mod facilities;
pub mod resilience;
pub mod scheduling;

pub use ablations::{a1_restructure_pieces, a2_checkpoint_interval, a3_mape_period};
pub use admission::{e14_metric_admission, e2_thresholds, e8_prediction};
pub use arrivals::e15_open_vs_closed;
pub use autonomic::{e10_mape, e13_classifier};
pub use cluster::{e20_shard_scaling, e21_routing_ablation};
pub use crash::{e18_crash_recovery, e19_poison_quarantine};
pub use durability::{e26_corrupted_checkpoint, e27_fault_sweep};
pub use elastic::{e24_elastic_flash_crowd, e25_retry_storm};
pub use engine::e1_mpl_curve;
pub use execution::{e12_kill_precision, e4_throttling, e5_suspend, e7_economic};
pub use fabric::{e22_gray_failure, e23_partition_heal};
pub use facilities::e9_facilities;
pub use resilience::{e16_resilience_ablation, e17_fault_recovery};
pub use scheduling::{e11_restructuring, e3_dynamic_mpl, e6_schedulers};
