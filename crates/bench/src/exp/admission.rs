//! E2, E8, E14 — the admission-control experiments.

use serde::Serialize;
use wlm_core::admission::{
    ConflictRatioAdmission, IndicatorAdmission, PredictionAdmission, PredictorKind,
    ThresholdAdmission, ThroughputFeedbackAdmission,
};
use wlm_core::api::WlmBuilder;
use wlm_core::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use wlm_core::policy::{AdmissionPolicy, AdmissionViolationAction, WorkloadPolicy};
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::{BiSource, OltpSource};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

fn overload_mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(50.0, seed)))
        .with(Box::new(
            BiSource::new(3.0, seed + 1).with_size(15_000_000.0, 0.9),
        ))
}

fn overload_builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 512,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies([
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 0.5)),
            WorkloadPolicy::new("bi", Importance::Medium),
        ])
        // The engine itself is priority-blind; admission control is the
        // only defence under test.
        .uniform_weights(true)
}

/// One variant's outcome in E2.
#[derive(Debug, Clone, Serialize)]
pub struct E2Row {
    /// Variant name.
    pub variant: String,
    /// OLTP transactions completed.
    pub oltp_completed: u64,
    /// OLTP p95, seconds.
    pub oltp_p95: f64,
    /// Whether OLTP met its SLA.
    pub oltp_sla_met: bool,
    /// BI queries completed.
    pub bi_completed: u64,
    /// BI requests rejected.
    pub bi_rejected: u64,
}

/// Result of E2.
#[derive(Debug, Clone, Serialize)]
pub struct E2Result {
    /// All variants.
    pub rows: Vec<E2Row>,
}

fn run_e2_variant(name: &str, admission: Option<Box<dyn AdmissionController>>) -> E2Row {
    let mut mgr = overload_builder().build().expect("valid configuration");
    if let Some(a) = admission {
        mgr.set_admission(a);
    }
    let report = mgr.run(&mut overload_mix(100), SimDuration::from_secs(150));
    let oltp = report.workload("oltp").cloned();
    let bi = report.workload("bi").cloned();
    E2Row {
        variant: name.into(),
        oltp_completed: oltp.as_ref().map_or(0, |w| w.stats.completed),
        oltp_p95: oltp.as_ref().map_or(f64::NAN, |w| w.summary.p95),
        oltp_sla_met: oltp.as_ref().is_some_and(|w| w.sla.met()),
        bi_completed: bi.as_ref().map_or(0, |w| w.stats.completed),
        bi_rejected: bi.as_ref().map_or(0, |w| w.stats.rejected),
    }
}

/// E2 — cost & MPL thresholds protect the system (§2.3/§3.2): the same
/// overload mix without admission control, with a BI MPL threshold, and
/// with per-priority threshold sets.
pub fn e2_thresholds() -> E2Result {
    let mpl_gate = ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_workload_mpl: Some(3),
            on_violation: AdmissionViolationAction::Defer,
            ..Default::default()
        },
    );
    let cost_gate = ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_cost_timerons: Some(10_000_000.0), // ~10s of work
            max_workload_mpl: Some(6),
            on_violation: AdmissionViolationAction::Reject,
            ..Default::default()
        },
    );
    E2Result {
        rows: vec![
            run_e2_variant("no admission control", None),
            run_e2_variant("BI MPL threshold (defer)", Some(Box::new(mpl_gate))),
            run_e2_variant("BI cost threshold (reject)", Some(Box::new(cost_gate))),
            run_e2_variant(
                "congestion indicators (defer low-prio)",
                Some(Box::new(IndicatorAdmission {
                    thresholds: wlm_core::admission::indicators::IndicatorThresholds {
                        cpu_utilization: 0.9,
                        io_utilization: 0.9,
                        blocked: 16,
                        queued: 64,
                        conflict_ratio: 1.3,
                    },
                    min_importance_when_congested: Importance::High,
                })),
            ),
        ],
    }
}

impl E2Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E2 — threshold admission under overload (§2.3/§3.2)\n  variant                                  oltp done  oltp p95   oltp SLA  bi done  bi rejected\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<40} {:>8}  {:>7.3}s   {:<7} {:>7}  {:>10}\n",
                r.variant,
                r.oltp_completed,
                r.oltp_p95,
                if r.oltp_sla_met { "MET" } else { "MISSED" },
                r.bi_completed,
                r.bi_rejected
            ));
        }
        out
    }
}

/// One error-level row of E8.
#[derive(Debug, Clone, Serialize)]
pub struct E8Row {
    /// Optimizer error sigma.
    pub error_sigma: f64,
    /// Gate accuracy of the naive cost threshold (fraction of decisions
    /// that were correct).
    pub cost_threshold_accuracy: f64,
    /// Gate accuracy of the PQR decision tree.
    pub pqr_accuracy: f64,
    /// Gate accuracy of the kNN predictor.
    pub knn_accuracy: f64,
}

/// Result of E8.
#[derive(Debug, Clone, Serialize)]
pub struct E8Result {
    /// Accuracy per optimizer-error level.
    pub rows: Vec<E8Row>,
}

/// E8 — prediction-based admission survives optimizer error (§3.2).
///
/// Ground truth: a query is a "long-runner" when its true work exceeds 30s.
/// Each gate sees only pre-execution information; gates are trained on one
/// stream of completed queries and evaluated on a second stream.
pub fn e8_prediction() -> E8Result {
    let rows = [0.0, 0.5, 1.0, 1.5]
        .into_iter()
        .map(|sigma| {
            let model = CostModel::with_error(sigma, 4242);
            let limit_secs = 30.0;

            // Build labelled requests from the BI generator.
            let make = |seed: u64, n: usize| -> Vec<ManagedRequest> {
                let mut src = BiSource::new(10.0, seed).with_size(8_000_000.0, 1.2);
                let mut out = Vec::new();
                let mut t = wlm_dbsim::time::SimTime::ZERO;
                while out.len() < n {
                    let step = t + SimDuration::from_secs(10);
                    for req in wlm_workload::generators::Source::poll(&mut src, t, step) {
                        let estimate = model.estimate_spec(&req.spec);
                        out.push(ManagedRequest {
                            workload: "bi".into(),
                            importance: req.importance,
                            weight: 1.0,
                            estimate,
                            request: req,
                        });
                    }
                    t = step;
                }
                out.truncate(n);
                out
            };
            let train = make(7_000, 400);
            let test = make(8_000, 400);

            let mut pqr = PredictionAdmission::new(PredictorKind::Pqr, limit_secs);
            let mut knn = PredictionAdmission::new(PredictorKind::Knn, limit_secs);
            for req in &train {
                let true_work = req.request.spec.plan.total_work();
                pqr.learn(req, true_work as f64 / 1e6, true_work);
                knn.learn(req, true_work as f64 / 1e6, true_work);
            }

            let snap = SystemSnapshot::default();
            let mut correct = [0usize; 3]; // cost, pqr, knn
            for req in &test {
                let truly_long = req.request.spec.plan.total_work() as f64 / 1e6 > limit_secs;
                let cost_rejects = req.estimate.exec_secs > limit_secs;
                let pqr_rejects = !matches!(pqr.decide(req, &snap), AdmissionDecision::Admit);
                let knn_rejects = !matches!(knn.decide(req, &snap), AdmissionDecision::Admit);
                for (i, rejects) in [cost_rejects, pqr_rejects, knn_rejects]
                    .into_iter()
                    .enumerate()
                {
                    if rejects == truly_long {
                        correct[i] += 1;
                    }
                }
            }
            let n = test.len() as f64;
            E8Row {
                error_sigma: sigma,
                cost_threshold_accuracy: correct[0] as f64 / n,
                pqr_accuracy: correct[1] as f64 / n,
                knn_accuracy: correct[2] as f64 / n,
            }
        })
        .collect();
    E8Result { rows }
}

impl E8Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E8 — admission-gate accuracy vs optimizer error (§3.2, prediction-based)\n  sigma   cost-threshold   PQR tree   kNN\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>4.1}    {:>8.1}%      {:>6.1}%   {:>5.1}%\n",
                r.error_sigma,
                r.cost_threshold_accuracy * 100.0,
                r.pqr_accuracy * 100.0,
                r.knn_accuracy * 100.0
            ));
        }
        out
    }
}

/// One variant row of E14.
#[derive(Debug, Clone, Serialize)]
pub struct E14Row {
    /// Variant name.
    pub variant: String,
    /// Transactions completed.
    pub completed: u64,
    /// Mean response, seconds.
    pub mean_resp: f64,
}

/// Result of E14.
#[derive(Debug, Clone, Serialize)]
pub struct E14Result {
    /// Lock-thrash scenario: none vs conflict-ratio vs throughput-feedback.
    pub rows: Vec<E14Row>,
}

/// E14 — performance-metric admission averts lock thrashing (§3.2:
/// Moenkeberg \[56], Heiss-Wagner \[26]). Heavy update transactions (an index
/// range scan plus an update) over a tiny hot-key set: each transaction
/// lives long enough to collide, blocked transactions keep their locks
/// (2PL), and uncontrolled concurrency convoys.
pub fn e14_metric_admission() -> E14Result {
    use wlm_dbsim::plan::{OperatorKind, PlanBuilder};
    use wlm_workload::generators::UniformSource;
    let run = |name: &str, admission: Option<Box<dyn AdmissionController>>| -> E14Row {
        let mut mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                disk_pages_per_sec: 4_000,
                memory_mb: 512,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .build()
            .expect("valid configuration");
        if let Some(a) = admission {
            mgr.set_admission(a);
        }
        // A CPU-resident update transaction: ~1s of processing between
        // acquiring its first and last lock, a 24 MiB working-memory grant,
        // cold pages. Blocked transactions keep locks *and* memory (2PL),
        // so an uncontrolled pile-up convoys on the hot keys and then pays
        // the paging penalty on top — the data-contention thrashing spiral.
        let mut template = PlanBuilder::index_lookup(3_000)
            .write(OperatorKind::Update, 3)
            .build()
            .into_spec();
        template.plan.ops[0].cpu_us = 1_000_000;
        template.working_set_pages = u64::MAX / 4;
        for op in &mut template.plan.ops {
            op.mem_mb = 24;
        }
        let mut src = UniformSource::new(template, 3.5, "txn", 55)
            .with_locks(12, 4)
            .with_importance(Importance::High);
        let report = mgr.run(&mut src, SimDuration::from_secs(120));
        let w = report.workload("txn").cloned();
        E14Row {
            variant: name.into(),
            completed: w.as_ref().map_or(0, |w| w.stats.completed),
            mean_resp: w.as_ref().map_or(f64::NAN, |w| w.summary.mean),
        }
    };
    E14Result {
        rows: vec![
            run("no admission control", None),
            run(
                "conflict-ratio gate (critical 1.3)",
                Some(Box::new(ConflictRatioAdmission::default())),
            ),
            run(
                "throughput-feedback MPL",
                Some(Box::new(ThroughputFeedbackAdmission::new(8))),
            ),
        ],
    }
}

impl E14Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E14 — lock-thrashing aversion by performance-metric admission (§3.2)\n  variant                              completed   mean resp\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<36} {:>8}   {:>8.3}s\n",
                r.variant, r.completed, r.mean_resp
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_admission_protects_oltp() {
        let r = e2_thresholds();
        let none = &r.rows[0];
        let mpl = &r.rows[1];
        let cost = &r.rows[2];
        // Shape: without admission control OLTP misses its SLA (its tail is
        // an order of magnitude worse); with either gate it meets it.
        assert!(!none.oltp_sla_met, "uncontrolled overload must violate");
        assert!(mpl.oltp_sla_met);
        assert!(cost.oltp_sla_met);
        assert!(
            none.oltp_p95 > mpl.oltp_p95 * 10.0,
            "p95 {} vs {}",
            none.oltp_p95,
            mpl.oltp_p95
        );
        // The gates never lose OLTP work.
        assert!(mpl.oltp_completed >= none.oltp_completed);
        // ...and the reject variant actually rejects BI work.
        assert!(cost.bi_rejected > 0);
        assert!(mpl.bi_rejected == 0, "defer mode never rejects");
        // The indicator gate also restores the SLA: it only reacts once
        // congestion shows in the monitor metrics, yet that is early enough
        // here because deferral stops the pile-up.
        let indicators = &r.rows[3];
        assert!(indicators.oltp_sla_met, "indicators row: {indicators:?}");
    }

    #[test]
    fn e8_learned_gates_beat_cost_threshold_under_error() {
        let r = e8_prediction();
        let exact = &r.rows[0];
        // With a perfect oracle the cost threshold is perfect.
        assert!(exact.cost_threshold_accuracy > 0.99);
        let noisy = r.rows.last().unwrap();
        // Under heavy error the learned gates win.
        assert!(
            noisy.pqr_accuracy > noisy.cost_threshold_accuracy + 0.03,
            "pqr {} vs cost {}",
            noisy.pqr_accuracy,
            noisy.cost_threshold_accuracy
        );
        assert!(
            noisy.knn_accuracy > noisy.cost_threshold_accuracy + 0.03,
            "knn {} vs cost {}",
            noisy.knn_accuracy,
            noisy.cost_threshold_accuracy
        );
    }

    #[test]
    fn e14_gates_beat_uncontrolled_contention() {
        let r = e14_metric_admission();
        let none = &r.rows[0];
        let conflict = &r.rows[1];
        assert!(
            conflict.completed > none.completed,
            "conflict gate {} vs none {}",
            conflict.completed,
            none.completed
        );
    }
}
