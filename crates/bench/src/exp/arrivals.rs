//! E15 — open vs. closed arrivals: a cautionary tale (Schroeder, Wierman &
//! Harchol-Balter, NSDI'06 — reference \[70] of the paper).
//!
//! The paper's scheduling discussion leans on \[69]\[70]: whether a workload
//! is *open* (arrivals independent of completions) or *closed* (a fixed
//! population with think times) changes what a workload manager must do.
//! Near saturation an open system's queue — and therefore its response
//! time — grows without bound, while a closed system self-limits: its MPL
//! can never exceed the population, so response times stay finite and
//! throughput saturates gracefully. Sizing MPLs or thresholds from a
//! closed-system test and deploying against open arrivals is the classic
//! mistake this experiment makes measurable.

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::{OperatorKind, PlanBuilder};
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::{ClosedLoopOltpSource, Source};

/// One load level's outcome under both arrival models.
#[derive(Debug, Clone, Serialize)]
pub struct E15Row {
    /// Offered load as a fraction of capacity (open: arrival rate ×
    /// service demand; closed: population chosen for the same nominal
    /// demand).
    pub load: f64,
    /// Open system mean response, seconds.
    pub open_mean: f64,
    /// Open system backlog (requests still in flight at the end).
    pub open_backlog: usize,
    /// Closed system mean response, seconds.
    pub closed_mean: f64,
    /// Closed system backlog at the end.
    pub closed_backlog: usize,
}

/// Result of E15.
#[derive(Debug, Clone, Serialize)]
pub struct E15Result {
    /// Rows across load levels.
    pub rows: Vec<E15Row>,
}

/// Closed-loop arrivals carrying the same query template as the open side
/// (apples-to-apples service demands).
struct ClosedTemplateSource {
    inner: ClosedLoopOltpSource,
    template: wlm_dbsim::plan::QuerySpec,
}

impl Source for ClosedTemplateSource {
    fn poll(
        &mut self,
        from: wlm_dbsim::time::SimTime,
        to: wlm_dbsim::time::SimTime,
    ) -> Vec<wlm_workload::request::Request> {
        let mut reqs = self.inner.poll(from, to);
        for r in &mut reqs {
            let label = r.spec.label.clone();
            r.spec = self.template.clone().labeled(label);
        }
        reqs
    }

    fn on_completion(&mut self, label: &str, at: wlm_dbsim::time::SimTime) {
        self.inner.on_completion(label, at);
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

fn engine() -> EngineConfig {
    EngineConfig {
        cores: 1,
        disk_pages_per_sec: 2_000,
        memory_mb: 4_096,
        ..Default::default()
    }
}

fn run(source: &mut dyn Source, secs: u64) -> (f64, usize) {
    let mut mgr = WlmBuilder::new()
        .engine(engine())
        .cost_model(CostModel::oracle())
        .build()
        .expect("valid configuration");
    let report = mgr.run(source, SimDuration::from_secs(secs));
    let mean = report
        .workloads
        .first()
        .map_or(f64::NAN, |w| w.summary.mean);
    (mean, mgr.engine().mpl() + mgr.queued() + mgr.deferred())
}

/// Run E15: sweep the offered load through and past saturation under both
/// arrival models. Transactions read cold pages (no buffer-pool rescue):
/// ~8 pages at 2 000 pages/s is 4 ms of disk each, so capacity is
/// ≈ 250 txns/s.
pub fn e15_open_vs_closed() -> E15Result {
    let capacity_tps = 250.0;
    let template = || {
        let mut spec = PlanBuilder::index_lookup(300)
            .write(OperatorKind::Update, 2)
            .build()
            .into_spec();
        spec.working_set_pages = u64::MAX / 4; // cold reads
        spec
    };
    let rows = [0.5, 0.8, 0.95, 1.2]
        .into_iter()
        .map(|load| {
            let rate = capacity_tps * load;
            let mut open =
                wlm_workload::generators::UniformSource::new(template(), rate, "txn", 1_500);
            let (open_mean, open_backlog) = run(&mut open, 60);
            // Closed population sized so its *maximum* possible throughput
            // matches the open arrival rate: N = rate × (think + service).
            let think = 0.05;
            let service = 1.0 / capacity_tps;
            let n = ((rate * (think + service)).round() as usize).max(1);
            let mut closed = ClosedTemplateSource {
                inner: ClosedLoopOltpSource::new(n, think, 1_501),
                template: template(),
            };
            let (closed_mean, closed_backlog) = run(&mut closed, 60);
            E15Row {
                load,
                open_mean,
                open_backlog,
                closed_mean,
                closed_backlog,
            }
        })
        .collect();
    E15Result { rows }
}

impl E15Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E15 — open vs closed arrivals near saturation (Schroeder et al. [70])\n  load   open mean   open backlog   closed mean   closed backlog\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>4.2}   {:>8.3}s   {:>10}   {:>10.3}s   {:>12}\n",
                r.load, r.open_mean, r.open_backlog, r.closed_mean, r.closed_backlog
            ));
        }
        out.push_str(
            "  past saturation the open backlog grows without bound; the closed\n  population self-limits (its MPL can never exceed N)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_explodes_closed_self_limits() {
        let r = e15_open_vs_closed();
        let light = &r.rows[0];
        let over = r.rows.last().unwrap();
        // Below saturation both behave.
        assert!(light.open_mean < 0.2, "open light {}", light.open_mean);
        assert!(
            light.closed_mean < 0.2,
            "closed light {}",
            light.closed_mean
        );
        // Past saturation the open system's backlog explodes...
        assert!(
            over.open_backlog > 500,
            "open backlog {}",
            over.open_backlog
        );
        // ...while the closed population stays bounded by N.
        assert!(
            over.closed_backlog < 30,
            "closed backlog {}",
            over.closed_backlog
        );
        // And the open response times dwarf the closed ones.
        assert!(over.open_mean > over.closed_mean * 3.0);
    }
}
