//! E20/E21 — the sharded cluster under hierarchical workload management.
//!
//! E20 is the scale-out claim: a partitionable OLTP mix offered at a fixed
//! per-shard rate (weak scaling) should complete near-linearly more work
//! as shards are added, with SLA violation rates flat — the global
//! front-end adds routing, not a bottleneck. The pinned shape: ≥3×
//! aggregate throughput at 4 shards versus 1.
//!
//! E21 is the routing/failover ablation, in two halves. The cache half
//! runs a cache-sensitive partitioned mix (small per-shard buffer pools,
//! partition hot sets that only fit warm on a bounded number of shards)
//! under each routing policy: affinity keeps every partition warm on its
//! home shard, while round-robin drags each shard's pool through all
//! sixteen partitions and pays physical reads for the churn. The failover
//! half strands a deterministic batch-report burst on its affinity home
//! shard and kills that shard's controller: with [`FailoverPolicy::Reroute`]
//! the batch moves to the survivors and completes inside its response
//! goal; with [`FailoverPolicy::WaitForRestart`] it waits out the outage
//! and blows the goal on every completion.

use serde::Serialize;
use wlm_cluster::{ClusterBuilder, FailoverPolicy, RoutingPolicy};
use wlm_core::api::WlmBuilder;
use wlm_core::policy::WorkloadPolicy;
use wlm_core::scheduling::FcfsScheduler;
use wlm_dbsim::bufferpool::BufferPool;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{BatchReportSource, OltpSource};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// Simulated run length of each E20/E21 configuration, seconds.
const RUN_SECS: u64 = 30;
/// OLTP arrivals offered per shard in E20 (weak scaling), per second.
const E20_RATE_PER_SHARD: f64 = 20.0;
/// Partitions the E20 key space is split into.
const E20_PARTITIONS: u64 = 64;
/// Partitions in the E21 cache-sensitivity mix.
const E21_PARTITIONS: u64 = 16;
/// The shard `batch_report` affinity-hashes to in a 4-shard cluster
/// (splitmix64 of the label's FNV-1a key, modulo 4) — the shard the E21
/// failover half kills so the batch is deterministically stranded.
const E21_BATCH_HOME_SHARD: usize = 0;

/// One shard count's outcome in E20.
#[derive(Debug, Clone, Serialize)]
pub struct E20Row {
    /// Shards in the cluster.
    pub shards: usize,
    /// Offered OLTP arrivals per second (weak scaling: 20/s per shard).
    pub offered_per_sec: f64,
    /// Completions over the run.
    pub completed: u64,
    /// Aggregate throughput, completions/second.
    pub throughput: f64,
    /// Aggregate throughput relative to the 1-shard row.
    pub speedup: f64,
    /// OLTP response-goal violations.
    pub goal_violations: u64,
    /// Violations per completion — the flat line the claim needs.
    pub violation_rate: f64,
}

/// Result of E20.
#[derive(Debug, Clone, Serialize)]
pub struct E20Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Rows across shard counts, 1-shard first.
    pub rows: Vec<E20Row>,
}

/// One routing policy's outcome on the E21 cache-sensitive mix.
#[derive(Debug, Clone, Serialize)]
pub struct E21RoutingRow {
    /// Routing policy name.
    pub policy: &'static str,
    /// Completions over the run.
    pub completed: u64,
    /// Aggregate throughput, completions/second.
    pub throughput: f64,
    /// OLTP response-goal violations.
    pub goal_violations: u64,
}

/// One failover policy's outcome under the E21 shard kill.
#[derive(Debug, Clone, Serialize)]
pub struct E21FailoverRow {
    /// Failover policy name.
    pub failover: &'static str,
    /// Completions over the run.
    pub completed: u64,
    /// Requests moved off the killed shard.
    pub rerouted: u64,
    /// Batch-report response-goal violations (the stranded cohort).
    pub batch_violations: u64,
    /// OLTP response-goal violations.
    pub oltp_violations: u64,
}

/// Result of E21.
#[derive(Debug, Clone, Serialize)]
pub struct E21Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Cache-sensitivity ablation, one row per routing policy.
    pub routing: Vec<E21RoutingRow>,
    /// Shard-kill ablation, one row per failover policy.
    pub failover: Vec<E21FailoverRow>,
}

/// An E20 shard: comfortably provisioned, so added shards translate
/// straight into added completions.
fn e20_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 2.0)),
        )
}

/// Run E20: the same per-shard load against 1, 2 and 4 shards.
pub fn e20_shard_scaling(seed: u64) -> E20Result {
    let mut rows: Vec<E20Row> = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut cluster = ClusterBuilder::new()
            .shards(shards)
            .routing(RoutingPolicy::Affinity)
            .shard_builder(Box::new(e20_shard))
            .build()
            .expect("valid configuration");
        let offered = E20_RATE_PER_SHARD * shards as f64;
        let mut src = OltpSource::new(offered, seed).with_partitions(E20_PARTITIONS);
        let report = cluster.run(&mut src, SimDuration::from_secs(RUN_SECS));
        let goal_violations = cluster.goal_violations_in("oltp");
        let base = rows.first().map_or(report.throughput, |r| r.throughput);
        rows.push(E20Row {
            shards,
            offered_per_sec: offered,
            completed: report.completed,
            throughput: report.throughput,
            speedup: if base > 0.0 {
                report.throughput / base
            } else {
                0.0
            },
            goal_violations,
            violation_rate: if report.completed > 0 {
                goal_violations as f64 / report.completed as f64
            } else {
                0.0
            },
        });
    }
    E20Result { seed, rows }
}

/// An E21 cache-half shard: a buffer pool two orders of magnitude smaller
/// than a partition-churning working set, and a disk slow enough that the
/// resulting physical reads are the bottleneck.
fn e21_cache_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 25,
            memory_mb: 4_096,
            buffer_pool: BufferPool {
                pages: 2_048,
                max_hit: 0.95,
            },
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .scheduler(Box::new(FcfsScheduler::new(16)))
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 3.0)),
        )
}

/// An E21 failover-half shard: healthy pool, moderate disk, a tight MPL so
/// the stranded batch is mostly still queued when the controller dies.
fn e21_failover_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 2_000,
            memory_mb: 4_096,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .scheduler(Box::new(FcfsScheduler::new(4)))
        .policies([
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 5.0)),
            WorkloadPolicy::new("batch_report", Importance::Low)
                .with_sla(ServiceLevelAgreement::avg_response(20.0)),
        ])
}

fn e21_cache_run(seed: u64, policy: RoutingPolicy) -> E21RoutingRow {
    let mut cluster = ClusterBuilder::new()
        .shards(4)
        .routing(policy)
        .shard_builder(Box::new(e21_cache_shard))
        // Each shard can hold 6 of the 16 partition hot sets warm — enough
        // for any shard's affinity-assigned partitions, far too few for
        // round-robin's all-partitions churn.
        .warm_cache(6, 8_192)
        .build()
        .expect("valid configuration");
    let mut src = OltpSource::new(100.0, seed).with_partitions(E21_PARTITIONS);
    let report = cluster.run(&mut src, SimDuration::from_secs(RUN_SECS));
    E21RoutingRow {
        policy: policy.name(),
        completed: report.completed,
        throughput: report.throughput,
        goal_violations: cluster.goal_violations_in("oltp"),
    }
}

fn e21_failover_run(seed: u64, failover: FailoverPolicy) -> E21FailoverRow {
    let mut cluster = ClusterBuilder::new()
        .shards(4)
        .routing(RoutingPolicy::Affinity)
        .failover(failover)
        .shard_builder(Box::new(e21_failover_shard))
        .build()
        .expect("valid configuration");
    // The 40-query report burst lands on its affinity home shard at t=6 s;
    // that shard's controller dies at t=8 s with the burst barely started
    // and stays down until t=32 s.
    cluster
        .schedule_outage(E21_BATCH_HOME_SHARD, 8.0, 24.0)
        .expect("shard exists");
    let release = SimTime::ZERO + SimDuration::from_secs(6);
    let mut src = MixedSource::new()
        .with(Box::new(
            OltpSource::new(40.0, seed).with_partitions(E21_PARTITIONS),
        ))
        .with(Box::new(BatchReportSource::new(release, 40, seed + 1)));
    let report = cluster.run(&mut src, SimDuration::from_secs(40));
    E21FailoverRow {
        failover: failover.name(),
        completed: report.completed,
        rerouted: report.rerouted,
        batch_violations: cluster.goal_violations_in("batch_report"),
        oltp_violations: cluster.goal_violations_in("oltp"),
    }
}

/// Run E21: the routing ablation on the cache-sensitive mix, then the
/// failover ablation under the shard kill.
pub fn e21_routing_ablation(seed: u64) -> E21Result {
    let routing = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstandingCost,
        RoutingPolicy::Affinity,
    ]
    .into_iter()
    .map(|p| e21_cache_run(seed, p))
    .collect();
    let failover = [FailoverPolicy::Reroute, FailoverPolicy::WaitForRestart]
        .into_iter()
        .map(|f| e21_failover_run(seed, f))
        .collect();
    E21Result {
        seed,
        routing,
        failover,
    }
}

impl E20Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E20 — shard scaling on a partitionable OLTP mix (seed {:#x})\n  shards   offered/s   completed   throughput   speedup   SLA viol. rate\n",
            self.seed
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>6}   {:>9.0}   {:>9}   {:>8.1}/s   {:>6.2}x   {:>13.4}\n",
                r.shards, r.offered_per_sec, r.completed, r.throughput, r.speedup, r.violation_rate
            ));
        }
        out.push_str(
            "  weak scaling: per-shard load is constant, so aggregate throughput\n  grows with the shard count while violation rates stay flat\n",
        );
        out
    }
}

impl E21Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E21 — routing and failover ablation (seed {:#x})\n  cache-sensitive mix, 4 shards, small pools:\n  policy                   completed   throughput   goal violations\n",
            self.seed
        );
        for r in &self.routing {
            out.push_str(&format!(
                "  {:<22}   {:>9}   {:>8.1}/s   {:>15}\n",
                r.policy, r.completed, r.throughput, r.goal_violations
            ));
        }
        out.push_str(
            "  shard kill with a stranded report burst:\n  failover               completed   rerouted   batch viol.   oltp viol.\n",
        );
        for r in &self.failover {
            out.push_str(&format!(
                "  {:<20}   {:>9}   {:>8}   {:>11}   {:>10}\n",
                r.failover, r.completed, r.rerouted, r.batch_violations, r.oltp_violations
            ));
        }
        out.push_str(
            "  affinity keeps partition hot sets warm; re-route keeps a dead\n  shard's work inside its response goals\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x5eed;

    /// The E20 acceptance shape: ≥3× aggregate throughput at 4 shards
    /// versus 1, with SLA violation rates flat across shard counts.
    #[test]
    fn e20_scales_near_linearly_with_flat_violations() {
        let r = e20_shard_scaling(SEED);
        assert_eq!(r.rows.len(), 3);
        let one = &r.rows[0];
        let four = r.rows.last().unwrap();
        assert_eq!(four.shards, 4);
        assert!(
            four.speedup >= 3.0,
            "4-shard speedup {:.2} < 3.0 ({} vs {} completed)",
            four.speedup,
            four.completed,
            one.completed
        );
        for row in &r.rows {
            assert!(
                row.violation_rate <= 0.02,
                "{} shards: violation rate {:.4} not flat-at-zero",
                row.shards,
                row.violation_rate
            );
        }
    }

    /// The E21 cache claim: affinity routing beats round-robin on the
    /// cache-sensitive mix, in both throughput and goal violations.
    #[test]
    fn e21_affinity_beats_round_robin_on_cache_sensitive_mix() {
        let r = e21_routing_ablation(SEED);
        let rr = r
            .routing
            .iter()
            .find(|row| row.policy == "round_robin")
            .unwrap();
        let aff = r
            .routing
            .iter()
            .find(|row| row.policy == "affinity")
            .unwrap();
        assert!(
            aff.completed > rr.completed,
            "affinity {} ≤ round-robin {}",
            aff.completed,
            rr.completed
        );
        assert!(
            aff.goal_violations < rr.goal_violations,
            "affinity {} viol. ≥ round-robin {} viol.",
            aff.goal_violations,
            rr.goal_violations
        );
        assert!(
            rr.goal_violations > 0,
            "round-robin must actually churn pools cold"
        );

        // The failover claim: re-route moves the stranded burst and bounds
        // its violations; wait-for-restart blows the batch response goal.
        let re = r.failover.iter().find(|f| f.failover == "reroute").unwrap();
        let wait = r
            .failover
            .iter()
            .find(|f| f.failover == "wait_for_restart")
            .unwrap();
        assert!(re.rerouted > 0, "the kill must actually move work");
        assert!(
            re.batch_violations < wait.batch_violations,
            "reroute {} batch viol. ≥ wait {} batch viol.",
            re.batch_violations,
            wait.batch_violations
        );
    }
}
