//! E24/E25 — overload robustness under flash crowds.
//!
//! E24 is the elasticity claim: an autoscaled shard pool riding a
//! flash-crowd trapezoid should hold its SLA violation rate within a
//! small margin of a statically over-provisioned cluster that keeps the
//! whole pool active for the entire run — while billing strictly fewer
//! shard-hours. The autoscaler spins shards up through the
//! spawning → warming lifecycle as the ramp builds pressure, and
//! drain-then-retires them through the exactly-once finished book once
//! the crowd disperses.
//!
//! E25 is the retry-storm ablation: the same surge hits a deliberately
//! small engine twice, once with the retry-release token bucket
//! ([`RetryBudgetConfig`]) and once without. Without the budget, every
//! timeout kill re-injects a retry whose backoff is shorter than the
//! queue it rejoins, so the storm keeps the engine saturated after the
//! fresh surge has passed; with the budget, retry releases are capped at
//! a fraction of fresh admissions and post-surge goodput recovers.

use serde::Serialize;
use wlm_cluster::{ClusterBuilder, ElasticConfig, RoutingPolicy};
use wlm_core::api::WlmBuilder;
use wlm_core::manager::WorkloadManager;
use wlm_core::policy::WorkloadPolicy;
use wlm_core::resilience::{ResilienceConfig, RetryBudgetConfig, RetryPolicy};
use wlm_core::scheduling::FcfsScheduler;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{OltpSource, SurgeRamp, SurgeSource};
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// Shards in the E24 pool (the static arm keeps all of them active).
const E24_POOL: usize = 6;
/// Floor the E24 autoscaler may not drain below.
const E24_MIN_SHARDS: usize = 2;
/// Simulated run length of each E24 arm, seconds.
const E24_RUN_SECS: u64 = 60;
/// Baseline OLTP arrivals per second, before surge amplification.
const E24_BASE_RATE: f64 = 15.0;
/// Partitions the E24 key space is split into.
const E24_PARTITIONS: u64 = 32;
/// The E24 flash crowd: a 6× trapezoid with a gradual 8-second build-up
/// (the hysteresis-friendly onset the autoscaler is tuned against) and a
/// 15-second calm tail after the decay for drain-then-retire.
const E24_RAMP: SurgeRamp = SurgeRamp {
    start_secs: 15.0,
    ramp_secs: 8.0,
    hold_secs: 12.0,
    decay_secs: 5.0,
    peak: 6.0,
};
/// The violation-rate margin the autoscaled arm must stay within.
const E24_VIOLATION_MARGIN: f64 = 0.05;

/// Simulated run length of each E25 arm, seconds.
const E25_RUN_SECS: u64 = 45;
/// End of the E25 pre-surge phase (= surge ramp start), seconds.
const E25_PRE_END: u64 = 10;
/// End of the E25 surge phase (= ramp + hold + decay), seconds.
const E25_SURGE_END: u64 = 22;
/// Baseline OLTP arrivals per second in E25.
const E25_BASE_RATE: f64 = 20.0;
/// The E25 flash crowd: sharp 8× spike, 12 seconds door to door.
const E25_RAMP: SurgeRamp = SurgeRamp {
    start_secs: 10.0,
    ramp_secs: 2.0,
    hold_secs: 8.0,
    decay_secs: 2.0,
    peak: 8.0,
};

/// One provisioning arm's outcome in E24.
#[derive(Debug, Clone, Serialize)]
pub struct E24Row {
    /// Arm name (`static-over-provisioned`, `autoscaled`).
    pub variant: &'static str,
    /// Completions over the run.
    pub completed: u64,
    /// Aggregate throughput, completions/second.
    pub throughput: f64,
    /// OLTP response-goal violations.
    pub goal_violations: u64,
    /// Violations per completion — compared across arms under the margin.
    pub violation_rate: f64,
    /// Shard-seconds billed (non-retired shards × elapsed time) — the
    /// cost the autoscaled arm must strictly undercut.
    pub shard_seconds: f64,
    /// Shards spun up by the autoscaler (0 for the static arm).
    pub scale_ups: u64,
    /// Shards drained and retired by the autoscaler (0 for the static arm).
    pub scale_downs: u64,
}

/// Result of E24.
#[derive(Debug, Clone, Serialize)]
pub struct E24Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Shards in the pool.
    pub pool: usize,
    /// The autoscaled arm's shard floor.
    pub min_shards: usize,
    /// Static arm first, autoscaled arm second.
    pub rows: Vec<E24Row>,
}

/// One phase of an E25 arm's timeline.
#[derive(Debug, Clone, Serialize)]
pub struct E25Phase {
    /// Phase name (`pre-surge`, `surge`, `post-surge`).
    pub phase: &'static str,
    /// OLTP completions inside the phase.
    pub completed: u64,
    /// Completions per second of phase time — the goodput the claim
    /// compares across phases.
    pub goodput: f64,
}

/// One retry-budget arm's outcome in E25.
#[derive(Debug, Clone, Serialize)]
pub struct E25Arm {
    /// Arm name (`unsuppressed`, `suppressed`).
    pub variant: &'static str,
    /// Pre-surge / surge / post-surge phases.
    pub phases: Vec<E25Phase>,
    /// Post-surge goodput over pre-surge goodput: 1.0 = full recovery.
    pub recovery: f64,
    /// Retries scheduled over the run.
    pub retries_scheduled: u64,
    /// Retry releases held back by the suppression bucket.
    pub retries_suppressed: u64,
    /// Requests dropped after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Timeout kills over the run.
    pub killed: u64,
}

/// Result of E25.
#[derive(Debug, Clone, Serialize)]
pub struct E25Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Unsuppressed arm first, suppressed arm second.
    pub arms: Vec<E25Arm>,
}

/// An E24 shard: the comfortable E20 provisioning, so the claim isolates
/// *when shards are active*, not how strong each one is.
fn e24_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 2.0)),
        )
}

/// The E24 autoscaler tuning: a fast debounce (0.2 s at the 10 ms engine
/// quantum) so spin-up tracks the 8-second ramp, a 3-second calm window
/// before each drain, and a raised scale-down threshold so the light
/// baseline load actually parks the surge capacity again.
fn e24_elastic_cfg() -> ElasticConfig {
    ElasticConfig {
        min_shards: E24_MIN_SHARDS,
        ema_alpha: 0.3,
        scale_up_pressure: 0.8,
        scale_down_pressure: 0.5,
        sustain_ticks: 20,
        calm_ticks: 300,
        warmup_secs: 0.5,
        drain_grace_secs: 2.0,
        queue_target: 16.0,
    }
}

fn e24_run(seed: u64, elastic: Option<ElasticConfig>) -> E24Row {
    let variant = if elastic.is_some() {
        "autoscaled"
    } else {
        "static-over-provisioned"
    };
    let mut builder = ClusterBuilder::new()
        .shards(E24_POOL)
        .routing(RoutingPolicy::LeastOutstandingCost)
        .shard_builder(Box::new(e24_shard));
    if let Some(cfg) = elastic {
        builder = builder.elastic(cfg);
    }
    let mut cluster = builder.build().expect("valid configuration");
    let inner = OltpSource::new(E24_BASE_RATE, seed).with_partitions(E24_PARTITIONS);
    let (src, _handle) = SurgeSource::new(Box::new(inner), seed + 1);
    let mut src = src.with_ramp(E24_RAMP);
    let report = cluster.run(&mut src, SimDuration::from_secs(E24_RUN_SECS));
    let goal_violations = cluster.goal_violations_in("oltp");
    E24Row {
        variant,
        completed: report.completed,
        throughput: report.throughput,
        goal_violations,
        violation_rate: if report.completed > 0 {
            goal_violations as f64 / report.completed as f64
        } else {
            0.0
        },
        shard_seconds: report.shard_seconds,
        scale_ups: report.scale_ups,
        scale_downs: report.scale_downs,
    }
}

/// Run E24: the same flash-crowd trapezoid against a statically
/// over-provisioned pool and an autoscaled one.
pub fn e24_elastic_flash_crowd(seed: u64) -> E24Result {
    E24Result {
        seed,
        pool: E24_POOL,
        min_shards: E24_MIN_SHARDS,
        rows: vec![e24_run(seed, None), e24_run(seed, Some(e24_elastic_cfg()))],
    }
}

impl E24Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E24 — elastic pool vs static over-provisioning, 6x flash crowd (seed {})\n  arm                       done   thrpt    goals   rate     shard-s   ups   downs\n",
            self.seed
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<24}  {:>5}   {:>5.1}   {:>5}   {:>5.3}   {:>7.1}   {:>3}   {:>5}\n",
                r.variant,
                r.completed,
                r.throughput,
                r.goal_violations,
                r.violation_rate,
                r.shard_seconds,
                r.scale_ups,
                r.scale_downs
            ));
        }
        out.push_str(&format!(
            "  claim: autoscaled violation rate within {E24_VIOLATION_MARGIN} of static at strictly fewer shard-seconds\n",
        ));
        out
    }
}

/// The E25 engine: two cores behind a wide-open MPL, so an 8× surge
/// stretches every running query's residence past the 1-second timeout.
fn e25_manager() -> WorkloadManager {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 4_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .scheduler(Box::new(FcfsScheduler::new(24)))
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 2.0)),
        )
        .build()
        .expect("valid configuration")
}

/// The storm-prone retry policy both E25 arms share: a deep attempt
/// budget with a backoff ceiling *shorter* than the overloaded queue's
/// wait, so each kill re-injects before the queue can drain — the
/// self-sustaining feedback loop suppression must break.
fn e25_storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_backoff_secs: 0.2,
        max_backoff_secs: 1.0,
        multiplier: 1.5,
        jitter_frac: 0.2,
    }
}

fn e25_arm(variant: &'static str, seed: u64, budget: Option<RetryBudgetConfig>) -> E25Arm {
    let mut mgr = e25_manager();
    let mut res = ResilienceConfig::new(seed)
        .with_timeout("oltp", 1.0)
        .with_retry(e25_storm_policy());
    if let Some(b) = budget {
        res = res.with_retry_budget(b);
    }
    mgr.set_resilience(res);
    let inner = OltpSource::new(E25_BASE_RATE, seed);
    let (src, _handle) = SurgeSource::new(Box::new(inner), seed + 1);
    let mut src = src.with_ramp(E25_RAMP);
    let mut phases = Vec::new();
    let mut seen = 0usize;
    for (phase, until_secs) in [
        ("pre-surge", E25_PRE_END),
        ("surge", E25_SURGE_END),
        ("post-surge", E25_RUN_SECS),
    ] {
        let start_secs = mgr.now().as_secs_f64();
        let target = SimTime(until_secs * 1_000_000);
        mgr.run(&mut src, target.since(mgr.now()));
        let completed = mgr
            .report()
            .workload("oltp")
            .map_or(0, |w| w.stats.responses_secs.len());
        let span = (until_secs as f64 - start_secs).max(f64::EPSILON);
        phases.push(E25Phase {
            phase,
            completed: (completed - seen) as u64,
            goodput: (completed - seen) as f64 / span,
        });
        seen = completed;
    }
    let report = mgr.report();
    let res = mgr.resilience_report().expect("resilience layer enabled");
    let pre = phases[0].goodput;
    let post = phases[2].goodput;
    E25Arm {
        variant,
        phases,
        recovery: if pre > 0.0 { post / pre } else { 0.0 },
        retries_scheduled: res.retries_scheduled,
        retries_suppressed: res.retries_suppressed,
        retries_exhausted: res.retries_exhausted,
        killed: report.workload("oltp").map_or(0, |w| w.stats.killed),
    }
}

/// Run E25: the retry-storm ablation — identical engine, surge and
/// storm-prone retry policy, with and without the suppression bucket.
pub fn e25_retry_storm(seed: u64) -> E25Result {
    E25Result {
        seed,
        arms: vec![
            e25_arm("unsuppressed", seed, None),
            e25_arm("suppressed", seed, Some(RetryBudgetConfig::default())),
        ],
    }
}

impl E25Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E25 — retry-storm suppression through an 8x surge (seed {})\n  arm            pre g/s   surge g/s   post g/s   recovery   retries   held   kills\n",
            self.seed
        );
        for a in &self.arms {
            out.push_str(&format!(
                "  {:<12}   {:>7.1}   {:>9.1}   {:>8.1}   {:>8.2}   {:>7}   {:>4}   {:>5}\n",
                a.variant,
                a.phases[0].goodput,
                a.phases[1].goodput,
                a.phases[2].goodput,
                a.recovery,
                a.retries_scheduled,
                a.retries_suppressed,
                a.killed
            ));
        }
        out.push_str(
            "  the budget caps retry releases at a fraction of fresh admissions, so the\n  queue the surge built drains instead of refilling itself\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x5eed;

    #[test]
    fn autoscaled_pool_matches_static_sla_at_fewer_shard_hours() {
        let r = e24_elastic_flash_crowd(SEED);
        let [stat, auto] = &r.rows[..] else {
            panic!("two arms expected");
        };
        assert_eq!(stat.variant, "static-over-provisioned");
        assert_eq!(auto.variant, "autoscaled");
        assert!(stat.completed > 0 && auto.completed > 0);
        // The static arm never scales; the autoscaled lifecycle engaged in
        // both directions.
        assert_eq!(stat.scale_ups + stat.scale_downs, 0);
        assert!(auto.scale_ups > 0, "surge must trigger spin-up");
        assert!(auto.scale_downs > 0, "calm tail must trigger drain");
        // The acceptance claim: SLA parity within the margin at strictly
        // fewer shard-hours.
        assert!(
            auto.shard_seconds < stat.shard_seconds,
            "autoscaled {} vs static {}",
            auto.shard_seconds,
            stat.shard_seconds
        );
        assert!(
            auto.violation_rate <= stat.violation_rate + E24_VIOLATION_MARGIN,
            "autoscaled {} vs static {}",
            auto.violation_rate,
            stat.violation_rate
        );
    }

    #[test]
    fn suppression_recovers_where_the_unsuppressed_storm_stays_collapsed() {
        let r = e25_retry_storm(SEED);
        let [unsup, sup] = &r.arms[..] else {
            panic!("two arms expected");
        };
        assert_eq!(unsup.variant, "unsuppressed");
        assert_eq!(sup.variant, "suppressed");
        // The surge actually bred a storm, and only the budgeted arm held
        // releases back.
        assert!(unsup.retries_scheduled > 0, "storm must ignite");
        assert!(unsup.killed > 0, "timeouts must fire");
        assert_eq!(unsup.retries_suppressed, 0);
        assert!(sup.retries_suppressed > 0, "the bucket must engage");
        // Both arms were healthy before the surge.
        assert!(unsup.phases[0].completed > 0 && sup.phases[0].completed > 0);
        // The acceptance claim: post-surge goodput recovers only under
        // suppression.
        assert!(
            sup.recovery > unsup.recovery,
            "suppressed {} vs unsuppressed {}",
            sup.recovery,
            unsup.recovery
        );
        assert!(
            sup.recovery > 0.5,
            "suppressed arm must recover: {}",
            sup.recovery
        );
    }

    #[test]
    fn e24_and_e25_are_deterministic_per_seed() {
        let a = serde_json::to_string(&e24_elastic_flash_crowd(3)).unwrap();
        let b = serde_json::to_string(&e24_elastic_flash_crowd(3)).unwrap();
        assert_eq!(a, b);
        let c = serde_json::to_string(&e25_retry_storm(3)).unwrap();
        let d = serde_json::to_string(&e25_retry_storm(3)).unwrap();
        assert_eq!(c, d);
    }
}
