//! E22/E23 — the cluster fabric as a failure domain: gray links,
//! partitions, and exactly-once accounting across both.
//!
//! E22 is the gray-failure ablation. A four-shard affinity cluster runs a
//! partitioned OLTP mix over a lossy-capable link; shard 1's link turns
//! into a straggler (delay multiplied by a severity factor) for a ten
//! second window. Without a failure detector the front-end keeps routing
//! into the slow link and the SLA violation rate grows with severity;
//! with the detector and hedged re-dispatch, suspicion diverts new
//! arrivals and re-sends the in-flight work to healthy peers, so the
//! violation rate stays pinned near the fault-free baseline no matter how
//! gray the link gets.
//!
//! E23 is the partition-heal timeline. A three-shard cluster loses shard
//! 1 behind a full partition; the detector declares it dead from
//! heartbeat silence, its in-flight and accepted-but-unfinished work is
//! hedged to the survivors, and the partitioned shard keeps completing
//! its local copies — completions the front-end parks until the heal.
//! At heal the parked completions flush through the exactly-once filter
//! and the hedge losers that could not be cancelled during the partition
//! are reconciled. The pinned claim is the accounting identity: every
//! request handed out by the source is accounted exactly once — nothing
//! lost to the partition, nothing double-counted by the races it forced.

use serde::Serialize;
use std::collections::BTreeMap;
use wlm_chaos::NetFault;
use wlm_cluster::{
    ClusterBuilder, DetectorConfig, HedgeConfig, LinkConfig, RoutingPolicy, ShardHealth,
};
use wlm_core::api::WlmBuilder;
use wlm_core::policy::WorkloadPolicy;
use wlm_core::scheduling::FcfsScheduler;
use wlm_dbsim::bufferpool::BufferPool;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{OltpSource, Source};
use wlm_workload::request::{Importance, Request, RequestId};
use wlm_workload::sla::ServiceLevelAgreement;

/// Simulated run length of each E22 configuration, seconds.
const E22_RUN_SECS: u64 = 30;
/// The gray window on shard 1's link: `[start, end)` seconds.
const E22_WINDOW: (f64, f64) = (5.0, 15.0);
/// Default severity sweep: the gray window's delay multipliers.
const E22_SEVERITIES: [f64; 3] = [8.0, 40.0, 160.0];

/// One variant of one severity in E22.
#[derive(Debug, Clone, Serialize)]
pub struct E22Variant {
    /// Variant name: `blind` (link only) or `detected` (detector + hedging).
    pub variant: &'static str,
    /// Completions over the run (exactly-once accounted).
    pub completed: u64,
    /// OLTP response-goal violations across shards.
    pub goal_violations: u64,
    /// Violations per completion.
    pub violation_rate: f64,
    /// Hedged re-dispatches issued.
    pub hedged: u64,
    /// Link messages lost to loss draws or partitions.
    pub link_dropped: u64,
    /// Retransmissions the ack timeout triggered.
    pub retransmits: u64,
}

/// One severity's outcome in E22.
#[derive(Debug, Clone, Serialize)]
pub struct E22Row {
    /// The gray window's delay multiplier on shard 1's link.
    pub severity: f64,
    /// The `blind` and `detected` variants at this severity.
    pub variants: Vec<E22Variant>,
}

/// Result of E22.
#[derive(Debug, Clone, Serialize)]
pub struct E22Result {
    /// The seed behind the arrival streams and the link model.
    pub seed: u64,
    /// The fault-free baseline violation rate (detector + hedging on,
    /// no gray window).
    pub fault_free_rate: f64,
    /// Rows across severities, mildest first.
    pub rows: Vec<E22Row>,
}

/// A shard-health transition observed on E23's partitioned shard.
#[derive(Debug, Clone, Serialize)]
pub struct E23Transition {
    /// Simulated time of the transition, seconds.
    pub at_secs: f64,
    /// The verdict the detector moved to.
    pub health: &'static str,
}

/// Result of E23.
#[derive(Debug, Clone, Serialize)]
pub struct E23Result {
    /// The seed behind the arrival stream and the link model.
    pub seed: u64,
    /// Requests the source handed to the cluster.
    pub handed_out: u64,
    /// Distinct requests the source saw complete (exactly once each).
    pub accounted: u64,
    /// Requests the source saw complete more than once — the pinned zero.
    pub double_counted: u64,
    /// Hedged re-dispatches issued against the partitioned shard.
    pub hedged: u64,
    /// Second finishers of hedge races, absorbed by the front-end.
    pub duplicate_completions: u64,
    /// Link messages lost to the partition.
    pub link_dropped: u64,
    /// Retransmissions the ack timeout triggered.
    pub retransmits: u64,
    /// Deliveries the shard-side dedup dropped as already seen.
    pub redelivered: u64,
    /// Shard 1's health verdicts over the run, transition by transition.
    pub timeline: Vec<E23Transition>,
}

/// The E22 link: a measurable but comfortable base delay, a retransmit
/// timer slow enough not to flood a straggling link with copies.
fn e22_link(seed: u64) -> LinkConfig {
    LinkConfig {
        delay_secs: 0.03,
        retransmit_secs: 2.0,
        seed: seed ^ 0x22,
        ..LinkConfig::default()
    }
}

/// The E22 detector: nominal round trips are ~0.06 s, so the gray
/// threshold (4× the expected 0.08 s) trips once the link stretches past
/// a handful of expected round trips; total silence past one second is
/// indistinguishable from death and treated as such.
fn e22_detector() -> DetectorConfig {
    DetectorConfig {
        expected_rtt_secs: 0.08,
        gray_score: 4.0,
        recover_score: 2.0,
        dead_silence_secs: 1.0,
        ema_alpha: 0.4,
    }
}

/// An E22 shard: comfortably provisioned, so every violation is the
/// link's fault rather than the engine's.
fn e22_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 2.0)),
        )
}

/// Run one E22 configuration and reduce it to a variant row.
fn e22_run(seed: u64, severity: Option<f64>, detected: bool) -> E22Variant {
    let mut b = ClusterBuilder::new()
        .shards(4)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(e22_shard))
        .link(e22_link(seed));
    if detected {
        b = b
            .failure_detector(e22_detector())
            .hedged_redispatch(HedgeConfig::default());
    }
    let mut cluster = b.build().expect("valid configuration");
    if let Some(factor) = severity {
        cluster
            .schedule_net_fault(
                E22_WINDOW.0,
                NetFault::GrayShard {
                    shard: 1,
                    delay_factor: factor,
                },
            )
            .expect("valid fault");
        cluster
            .schedule_net_fault(
                E22_WINDOW.1,
                NetFault::GrayShard {
                    shard: 1,
                    delay_factor: 1.0,
                },
            )
            .expect("valid fault");
    }
    let mut src = OltpSource::new(40.0, seed);
    let report = cluster.run(&mut src, SimDuration::from_secs(E22_RUN_SECS));
    let goal_violations = cluster.goal_violations_in("oltp");
    E22Variant {
        variant: if detected { "detected" } else { "blind" },
        completed: report.completed,
        goal_violations,
        violation_rate: if report.completed > 0 {
            goal_violations as f64 / report.completed as f64
        } else {
            0.0
        },
        hedged: report.hedged,
        link_dropped: report.link_dropped,
        retransmits: report.retransmits,
    }
}

/// Run E22: the gray-failure ablation across the severity sweep (or the
/// single `--severity` override).
pub fn e22_gray_failure(seed: u64, severity: Option<f64>) -> E22Result {
    let fault_free = e22_run(seed, None, true);
    let severities: Vec<f64> = match severity {
        Some(s) => vec![s],
        None => E22_SEVERITIES.to_vec(),
    };
    let rows = severities
        .into_iter()
        .map(|s| E22Row {
            severity: s,
            variants: vec![e22_run(seed, Some(s), false), e22_run(seed, Some(s), true)],
        })
        .collect();
    E22Result {
        seed,
        fault_free_rate: fault_free.violation_rate,
        rows,
    }
}

/// The source wrapper behind E23's accounting identity: counts every
/// request handed to the cluster and every completion the cluster
/// reports back, by request id, so lost and double-counted requests are
/// both directly observable.
struct CountingSource {
    inner: OltpSource,
    /// Stop generating arrivals here so the tail can drain before the
    /// run's deadline.
    cutoff: SimTime,
    handed_out: u64,
    seen: BTreeMap<RequestId, u32>,
}

impl CountingSource {
    fn new(rate: f64, seed: u64, cutoff: SimTime) -> Self {
        CountingSource {
            inner: OltpSource::new(rate, seed),
            cutoff,
            handed_out: 0,
            seen: BTreeMap::new(),
        }
    }
}

impl Source for CountingSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        if from >= self.cutoff {
            return Vec::new();
        }
        let reqs = self.inner.poll(from, to.min(self.cutoff));
        self.handed_out += reqs.len() as u64;
        reqs
    }

    fn on_request_completion(&mut self, request: RequestId, _label: &str, _at: SimTime) {
        *self.seen.entry(request).or_insert(0) += 1;
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// An E23 shard. Shard 1 — the one the partition cuts off — is
/// deliberately slow (one core, modest disk, a tight MPL), so it carries
/// a standing queue into the partition and keeps completing local copies
/// of work the survivors are racing on.
fn e23_shard(shard: usize) -> WlmBuilder {
    let b = WlmBuilder::new().cost_model(CostModel::oracle()).policy(
        WorkloadPolicy::new("oltp", Importance::High)
            .with_sla(ServiceLevelAgreement::percentile(95.0, 5.0)),
    );
    if shard == 1 {
        b.engine(EngineConfig {
            cores: 1,
            disk_pages_per_sec: 40,
            memory_mb: 1_024,
            // A cold, tiny pool: the OLTP lookups actually touch the slow
            // disk, so shard 1 carries a standing queue into the partition.
            buffer_pool: BufferPool {
                pages: 64,
                max_hit: 0.1,
            },
            ..Default::default()
        })
        .scheduler(Box::new(FcfsScheduler::new(2)))
    } else {
        b.engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 2_048,
            ..Default::default()
        })
    }
}

/// Run E23: partition shard 1, watch the detector declare it dead, hedge
/// its work, heal, and check the exactly-once accounting identity.
pub fn e23_partition_heal(seed: u64) -> E23Result {
    let mut cluster = ClusterBuilder::new()
        .shards(3)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(e23_shard))
        .link(LinkConfig {
            delay_secs: 0.02,
            retransmit_secs: 0.5,
            seed: seed ^ 0x23,
            ..LinkConfig::default()
        })
        .failure_detector(DetectorConfig {
            expected_rtt_secs: 0.05,
            gray_score: 4.0,
            recover_score: 2.0,
            dead_silence_secs: 1.5,
            ema_alpha: 0.4,
        })
        .hedged_redispatch(HedgeConfig::default())
        .build()
        .expect("valid configuration");
    cluster
        .schedule_net_fault(
            5.0,
            NetFault::Partition {
                shard: 1,
                active: true,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            12.0,
            NetFault::Partition {
                shard: 1,
                active: false,
            },
        )
        .expect("valid fault");

    let cutoff = SimTime::ZERO + SimDuration::from_secs(18);
    let deadline = SimTime::ZERO + SimDuration::from_secs(32);
    let mut src = CountingSource::new(30.0, seed, cutoff);
    let mut timeline = vec![E23Transition {
        at_secs: 0.0,
        health: ShardHealth::Healthy.name(),
    }];
    while cluster.now() < deadline {
        cluster.tick(&mut src);
        let health = cluster.shard_health(1).expect("shard exists").name();
        if timeline.last().map(|t| t.health) != Some(health) {
            timeline.push(E23Transition {
                at_secs: cluster.now().as_secs_f64(),
                health,
            });
        }
    }
    let report = cluster.report();
    let accounted = src.seen.len() as u64;
    let double_counted = src.seen.values().filter(|&&n| n > 1).count() as u64;
    E23Result {
        seed,
        handed_out: src.handed_out,
        accounted,
        double_counted,
        hedged: report.hedged,
        duplicate_completions: report.duplicate_completions,
        link_dropped: report.link_dropped,
        retransmits: report.retransmits,
        redelivered: report.redelivered,
        timeline,
    }
}

impl E22Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E22 — gray-failure ablation on shard 1's link (seed {:#x})\n  fault-free violation rate: {:.4}\n  severity   variant    completed   SLA viol. rate   hedged   dropped   retransmits\n",
            self.seed, self.fault_free_rate
        );
        for row in &self.rows {
            for v in &row.variants {
                out.push_str(&format!(
                    "  {:>8.0}   {:<8}   {:>9}   {:>14.4}   {:>6}   {:>7}   {:>11}\n",
                    row.severity,
                    v.variant,
                    v.completed,
                    v.violation_rate,
                    v.hedged,
                    v.link_dropped,
                    v.retransmits
                ));
            }
        }
        out.push_str(
            "  blind routing pays for the straggler in violations that grow with\n  severity; detection + hedging stays pinned at the fault-free rate\n",
        );
        out
    }
}

impl E23Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E23 — partition-heal timeline with exactly-once accounting (seed {:#x})\n  handed out {}, accounted {}, double-counted {}\n  hedged {}, duplicate completions absorbed {}, link drops {}, retransmits {}, redeliveries {}\n  shard 1 health:",
            self.seed,
            self.handed_out,
            self.accounted,
            self.double_counted,
            self.hedged,
            self.duplicate_completions,
            self.link_dropped,
            self.retransmits,
            self.redelivered
        );
        for t in &self.timeline {
            out.push_str(&format!(" {:.2}s={}", t.at_secs, t.health));
        }
        out.push_str(
            "\n  the partition loses no request and double-counts none: held\n  completions flush through the exactly-once filter at heal\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0x5eed;

    /// The E23 stack without any scheduled fault: the lossy-link plumbing
    /// alone (acks, retransmits, dedup, detector, hedger) must neither
    /// lose nor double-count a single request.
    #[test]
    fn e23_fault_free_stack_accounts_exactly_once() {
        let mut cluster = ClusterBuilder::new()
            .shards(3)
            .routing(RoutingPolicy::RoundRobin)
            .shard_builder(Box::new(e23_shard))
            .link(LinkConfig {
                delay_secs: 0.02,
                retransmit_secs: 0.5,
                seed: SEED ^ 0x23,
                ..LinkConfig::default()
            })
            .failure_detector(DetectorConfig {
                expected_rtt_secs: 0.05,
                gray_score: 4.0,
                recover_score: 2.0,
                dead_silence_secs: 1.5,
                ema_alpha: 0.4,
            })
            .hedged_redispatch(HedgeConfig::default())
            .build()
            .expect("valid configuration");
        let cutoff = SimTime::ZERO + SimDuration::from_secs(18);
        let deadline = SimTime::ZERO + SimDuration::from_secs(32);
        let mut src = CountingSource::new(30.0, SEED, cutoff);
        while cluster.now() < deadline {
            cluster.tick(&mut src);
        }
        let doubles = src.seen.values().filter(|&&n| n > 1).count();
        assert_eq!(doubles, 0, "no faults, no hedging, still double-counted");
        assert_eq!(
            src.seen.len() as u64,
            src.handed_out,
            "a fault-free run must account for every request"
        );
    }

    /// Headroom the detector variant's violation rate may sit above the
    /// fault-free baseline — the pinned bound of the E22 claim.
    const E22_RATE_HEADROOM: f64 = 0.03;

    /// The E22 acceptance shape: the blind baseline's violation rate
    /// grows with gray severity, while detection + hedging stays within
    /// a small headroom of the fault-free baseline at every severity —
    /// and actually hedges.
    #[test]
    fn e22_detection_bounds_gray_failure_violations() {
        let r = e22_gray_failure(SEED, None);
        assert_eq!(r.rows.len(), E22_SEVERITIES.len());
        assert!(
            r.fault_free_rate <= 0.01,
            "fault-free baseline not clean: {:.4}",
            r.fault_free_rate
        );
        let blind = |row: &E22Row| {
            row.variants
                .iter()
                .find(|v| v.variant == "blind")
                .expect("blind variant present")
                .clone()
        };
        let detected = |row: &E22Row| {
            row.variants
                .iter()
                .find(|v| v.variant == "detected")
                .expect("detected variant present")
                .clone()
        };
        let first = blind(r.rows.first().unwrap());
        let worst = blind(r.rows.last().unwrap());
        assert!(
            worst.violation_rate > first.violation_rate,
            "blind violations must grow with severity: {:.4} vs {:.4}",
            worst.violation_rate,
            first.violation_rate
        );
        assert!(
            worst.violation_rate > r.fault_free_rate + E22_RATE_HEADROOM,
            "the worst gray window must actually hurt the blind baseline: {:.4}",
            worst.violation_rate
        );
        for row in &r.rows {
            let d = detected(row);
            assert!(
                d.violation_rate <= r.fault_free_rate + E22_RATE_HEADROOM,
                "severity {}: detected rate {:.4} above baseline {:.4} + {:.2}",
                row.severity,
                d.violation_rate,
                r.fault_free_rate,
                E22_RATE_HEADROOM
            );
        }
        assert!(
            detected(r.rows.last().unwrap()).hedged > 0,
            "suspicion must hedge in-flight work at the worst severity"
        );
    }

    /// The E23 acceptance shape: the accounting identity holds across
    /// the partition — every handed-out request accounted exactly once —
    /// and the run exercised the machinery it claims to (dead verdict,
    /// hedges, absorbed duplicates, a healthy ending).
    #[test]
    fn e23_partition_heal_accounts_exactly_once() {
        let r = e23_partition_heal(SEED);
        assert_eq!(
            r.accounted, r.handed_out,
            "no request may be lost to the partition"
        );
        assert_eq!(r.double_counted, 0, "no request may be counted twice");
        assert!(r.hedged > 0, "the dead verdict must hedge stranded work");
        assert!(
            r.duplicate_completions > 0,
            "the heal must flush at least one already-won race"
        );
        assert!(
            r.timeline.iter().any(|t| t.health == "dead"),
            "the partition must read as death: {:?}",
            r.timeline
        );
        assert_eq!(
            r.timeline.last().map(|t| t.health),
            Some("healthy"),
            "the heal must end healthy: {:?}",
            r.timeline
        );
    }
}
