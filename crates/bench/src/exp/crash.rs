//! E18/E19 — the crash-tolerant control plane.
//!
//! E18 measures what controller checkpoints buy when the control plane
//! crashes mid-run: the same faulted scenario runs uninterrupted, with a
//! crash recovered from a cadence checkpoint
//! ([`WorkloadManager::restore`]), and with a crash recovered cold (no
//! checkpoint — every queue forgotten, every live query orphaned). The
//! claims pinned by tests: the recovered run converges back to the
//! uninterrupted steady state, and its post-crash SLA violations are
//! bounded by the cold restart's.
//!
//! E19 is the runaway-query ("poison") ablation: a trickle of queries too
//! large to ever beat their timeout runs with and without the poison
//! quarantine. Without it, every poison query burns its full kill/retry
//! budget; with it, three strikes land the request in quarantine and the
//! admission gate turns away any resubmission. A controller crash in the
//! middle of the storm shows the quarantine surviving the crash — it is
//! checkpointed state, which is the point.

use serde::Serialize;
use wlm_chaos::{run_with_chaos, ChaosDriver, FaultPlanBuilder};
use wlm_core::api::WlmBuilder;
use wlm_core::manager::{ControllerState, RecoveryReport, WorkloadManager};
use wlm_core::policy::WorkloadPolicy;
use wlm_core::resilience::{
    BreakerConfig, LadderConfig, QuarantineConfig, ResilienceConfig, RetryPolicy,
};
use wlm_core::scheduling::PriorityScheduler;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::metrics::summarize;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{BiSource, OltpSource, PoisonSource, Source};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::{Importance, Request};
use wlm_workload::sla::ServiceLevelAgreement;

/// Simulated run length, seconds.
const RUN_SECS: u64 = 45;
/// Engine quantum, milliseconds (one control cycle).
const QUANTUM_MS: u64 = 10;
/// Default crash cycle for E18 (16 s into the 45 s run, off the
/// checkpoint cadence so recovery has a real drift window to reconcile).
pub const E18_DEFAULT_CRASH_AT: u64 = 1_600;
/// Default checkpoint cadence for E18, control cycles.
pub const E18_DEFAULT_CHECKPOINT_EVERY: u64 = 250;

/// How the crash variant recovers.
#[derive(Debug, Clone, Copy)]
enum CrashMode {
    /// No crash: the uninterrupted baseline.
    None,
    /// Crash recovered from a cadence checkpoint taken every `n` cycles.
    Checkpointed(u64),
    /// Crash recovered cold (no checkpoint was ever taken).
    Cold,
}

/// One recovery strategy's outcome under the shared crash.
#[derive(Debug, Clone, Serialize)]
pub struct E18Variant {
    /// Strategy name (`uninterrupted`, `checkpoint-restore`, `cold-restart`).
    pub variant: &'static str,
    /// Goal misses + kills + rejections of the SLA-bearing workloads
    /// (oltp, bi) accrued *after* the crash point.
    pub sla_violations_post_crash: u64,
    /// Post-crash goal misses alone.
    pub goal_violations_post_crash: u64,
    /// Post-crash kills (includes recovery's orphan kills).
    pub killed_post_crash: u64,
    /// Post-crash admission rejections.
    pub rejected_post_crash: u64,
    /// Completions on the final books (a cold restart forgets its
    /// pre-crash books, so this is post-crash-only for that variant).
    pub completed: u64,
    /// Mean OLTP response over the last third of the recorded responses —
    /// the end-of-run steady state the recovered run must converge to.
    pub steady_oltp_mean: f64,
    /// What recovery did (absent for the uninterrupted baseline).
    pub recovery: Option<RecoveryReport>,
    /// Cadence checkpoints taken over the run.
    pub checkpoints_taken: u64,
}

/// Result of E18.
#[derive(Debug, Clone, Serialize)]
pub struct E18Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Control cycle the crash lands on.
    pub crash_at_cycle: u64,
    /// Checkpoint cadence of the checkpointed variant, cycles.
    pub checkpoint_every: u64,
    /// Recovery strategies, baseline first.
    pub variants: Vec<E18Variant>,
}

fn manager() -> WorkloadManager {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 20_000,
            memory_mb: 4_096,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 12.0)),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(60.0)),
            WorkloadPolicy::new("poison", Importance::Medium)
                .with_sla(ServiceLevelAgreement::best_effort()),
        ])
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(12)));
    mgr
}

fn e18_mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(25.0, seed)))
        .with(Box::new(BiSource::new(1.0, seed + 1)))
}

/// (goal misses, kills, rejections) across the SLA-bearing workloads.
fn sla_counts(mgr: &WorkloadManager) -> (u64, u64, u64) {
    let report = mgr.report();
    let (mut goals, mut killed, mut rejected) = (0, 0, 0);
    for name in ["oltp", "bi"] {
        goals += mgr.goal_violations_in(name);
        if let Some(w) = report.workload(name) {
            killed += w.stats.killed;
            rejected += w.stats.rejected;
        }
    }
    (goals, killed, rejected)
}

/// The same counts as read from a checkpoint — the baseline the restored
/// controller's books rewind to.
fn sla_counts_in_state(state: &ControllerState) -> (u64, u64, u64) {
    let (mut goals, mut killed, mut rejected) = (0, 0, 0);
    for name in ["oltp", "bi"] {
        goals += state.goal_violations.get(name).copied().unwrap_or(0);
        if let Some(w) = state.stats.get(name) {
            killed += w.killed;
            rejected += w.rejected;
        }
    }
    (goals, killed, rejected)
}

fn run_crash_variant(
    variant: &'static str,
    seed: u64,
    crash_at: u64,
    mode: CrashMode,
) -> E18Variant {
    let mut mgr = manager();
    mgr.set_resilience(
        ResilienceConfig::new(seed)
            .with_timeout("oltp", 3.0)
            .with_retry(RetryPolicy::default())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default())
            .with_quarantine(QuarantineConfig::default()),
    );
    let mut src = e18_mix(seed);
    let plan = match mode {
        CrashMode::None => FaultPlanBuilder::new(seed).build(),
        _ => FaultPlanBuilder::new(seed)
            .controller_crash(crash_at)
            .build(),
    };
    let mut driver = ChaosDriver::new(plan);
    if let CrashMode::Checkpointed(every) = mode {
        driver = driver.with_checkpoint_every(every);
    }
    // Segment 1: up to (but not including) the crash cycle, so the
    // post-crash baseline can be read at the boundary.
    let total_ms = RUN_SECS * 1_000;
    let crash_ms = (crash_at * QUANTUM_MS).min(total_ms);
    run_with_chaos(
        &mut mgr,
        &mut src,
        SimDuration::from_millis(crash_ms),
        &mut driver,
    );
    // The books the run resumes from: the boundary books (uninterrupted),
    // the restored checkpoint's books, or nothing at all (cold restart).
    let pre = match mode {
        CrashMode::None => sla_counts(&mgr),
        CrashMode::Checkpointed(every) => {
            // The crash restores the latest cadence point at or before the
            // crash cycle; when the crash cycle is itself on the cadence,
            // the checkpoint taken right before the crash is the boundary
            // state itself.
            let state = if crash_at.is_multiple_of(every) {
                mgr.checkpoint()
            } else {
                driver
                    .last_checkpoint()
                    .expect("cadence includes cycle 0")
                    .clone()
            };
            sla_counts_in_state(&state)
        }
        CrashMode::Cold => (0, 0, 0),
    };
    // Segment 2: the crash fires on the first cycle, then the run plays out.
    run_with_chaos(
        &mut mgr,
        &mut src,
        SimDuration::from_millis(total_ms - crash_ms),
        &mut driver,
    );
    let report = mgr.report();
    let (goals, killed, rejected) = sla_counts(&mgr);
    let goal_violations_post_crash = goals.saturating_sub(pre.0);
    let killed_post_crash = killed.saturating_sub(pre.1);
    let rejected_post_crash = rejected.saturating_sub(pre.2);
    let responses = report
        .workload("oltp")
        .map(|w| w.stats.responses_secs.clone())
        .unwrap_or_default();
    let tail = &responses[responses.len() - responses.len() / 3..];
    E18Variant {
        variant,
        sla_violations_post_crash: goal_violations_post_crash
            + killed_post_crash
            + rejected_post_crash,
        goal_violations_post_crash,
        killed_post_crash,
        rejected_post_crash,
        completed: report.completed,
        steady_oltp_mean: summarize(tail).mean,
        recovery: driver.last_recovery(),
        checkpoints_taken: driver.checkpoints_taken(),
    }
}

/// Run E18: crash the controller at `crash_at` (default
/// [`E18_DEFAULT_CRASH_AT`]) and compare recovery from a cadence
/// checkpoint (default every [`E18_DEFAULT_CHECKPOINT_EVERY`] cycles)
/// against a cold restart and against the uninterrupted baseline.
pub fn e18_crash_recovery(
    seed: u64,
    crash_at: Option<u64>,
    checkpoint_every: Option<u64>,
) -> E18Result {
    let crash_at = crash_at.unwrap_or(E18_DEFAULT_CRASH_AT);
    let every = checkpoint_every
        .unwrap_or(E18_DEFAULT_CHECKPOINT_EVERY)
        .max(1);
    let variants = vec![
        run_crash_variant("uninterrupted", seed, crash_at, CrashMode::None),
        run_crash_variant(
            "checkpoint-restore",
            seed,
            crash_at,
            CrashMode::Checkpointed(every),
        ),
        run_crash_variant("cold-restart", seed, crash_at, CrashMode::Cold),
    ];
    E18Result {
        seed,
        crash_at_cycle: crash_at,
        checkpoint_every: every,
        variants,
    }
}

impl E18Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E18 — controller crash at cycle {} (checkpoint every {} cycles, seed {})\n  strategy             post-crash viol.   goals   kills   rejects   steady oltp   readopt/requeue/orphans\n",
            self.crash_at_cycle, self.checkpoint_every, self.seed
        );
        for v in &self.variants {
            let rec = v.recovery.map_or("-".to_string(), |r| {
                format!("{}/{}/{}", r.readopted, r.requeued, r.orphans_killed)
            });
            out.push_str(&format!(
                "  {:<18}   {:>16}   {:>5}   {:>5}   {:>7}   {:>10.3}s   {}\n",
                v.variant,
                v.sla_violations_post_crash,
                v.goal_violations_post_crash,
                v.killed_post_crash,
                v.rejected_post_crash,
                v.steady_oltp_mean,
                rec
            ));
        }
        out.push_str(
            "  the checkpointed controller re-adopts its running set and converges;\n  the cold restart orphans every live query and rebuilds from nothing\n",
        );
        out
    }
}

/// One quarantine stance's outcome under the shared poison storm.
#[derive(Debug, Clone, Serialize)]
pub struct E19Variant {
    /// Stack name (`no-quarantine`, `quarantine`).
    pub variant: &'static str,
    /// Requests in the poison quarantine at end of run.
    pub quarantined: usize,
    /// Admissions and retry releases turned away by the quarantine
    /// (includes the post-run resubmission probe).
    pub quarantine_rejections: u64,
    /// Retries the resilience layer scheduled over the run.
    pub retries_scheduled: u64,
    /// Requests dropped after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Final kills charged to the poison workload.
    pub poison_killed: u64,
    /// Goal misses + kills + rejections of the SLA-bearing workloads.
    pub sla_violations: u64,
    /// Total completions across all workloads.
    pub completed: u64,
    /// OLTP 95th-percentile response, seconds.
    pub oltp_p95: f64,
}

/// Result of E19.
#[derive(Debug, Clone, Serialize)]
pub struct E19Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Ablation variants, unprotected first.
    pub variants: Vec<E19Variant>,
}

/// Poison arrival rate for the E19 storm, queries per second.
const POISON_RATE: f64 = 0.4;

fn e19_mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(25.0, seed)))
        .with(Box::new(BiSource::new(1.0, seed + 1)))
        .with(Box::new(PoisonSource::new(POISON_RATE, seed + 3)))
}

/// Replays captured requests once, at their (rewritten) arrival times —
/// the stubborn client resubmitting the same request ids.
struct ReplaySource {
    label: String,
    reqs: Vec<Request>,
}

impl Source for ReplaySource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        let mut rest = Vec::new();
        for r in self.reqs.drain(..) {
            if r.arrival <= to {
                out.push(r);
            } else {
                rest.push(r);
            }
        }
        self.reqs = rest;
        out
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Resubmit the storm's first poison requests (same request ids) after the
/// run: the admission gate must turn the quarantined ones away.
fn poison_probe(mgr: &mut WorkloadManager, seed: u64) {
    let mut generator = PoisonSource::new(POISON_RATE, seed + 3);
    let mut reqs = generator.poll(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(RUN_SECS),
    );
    reqs.truncate(3);
    let now = mgr.now();
    for r in &mut reqs {
        r.arrival = now;
    }
    let mut src = ReplaySource {
        label: "poison".into(),
        reqs,
    };
    mgr.run(&mut src, SimDuration::from_millis(500));
}

fn run_poison_variant(variant: &'static str, seed: u64, quarantine: bool) -> E19Variant {
    let mut mgr = manager();
    let mut resilience = ResilienceConfig::new(seed)
        .with_timeout("oltp", 3.0)
        .with_timeout("poison", 2.0)
        .with_retry(RetryPolicy::aggressive());
    if quarantine {
        resilience = resilience.with_quarantine(QuarantineConfig::default());
    }
    mgr.set_resilience(resilience);
    let mut src = e19_mix(seed);
    // A crash mid-storm, recovered from a cadence checkpoint in both
    // variants: the quarantine is checkpointed state and must survive it.
    let plan = FaultPlanBuilder::new(seed).controller_crash(2_000).build();
    let mut driver = ChaosDriver::new(plan).with_checkpoint_every(250);
    run_with_chaos(
        &mut mgr,
        &mut src,
        SimDuration::from_secs(RUN_SECS),
        &mut driver,
    );
    poison_probe(&mut mgr, seed);
    let report = mgr.report();
    let res = mgr.resilience_report().expect("resilience layer enabled");
    let (goals, killed, rejected) = sla_counts(&mgr);
    E19Variant {
        variant,
        quarantined: res.quarantined,
        quarantine_rejections: res.quarantine_rejections,
        retries_scheduled: res.retries_scheduled,
        retries_exhausted: res.retries_exhausted,
        poison_killed: report.workload("poison").map_or(0, |w| w.stats.killed),
        sla_violations: goals + killed + rejected,
        completed: report.completed,
        oltp_p95: report.workload("oltp").map_or(0.0, |w| w.summary.p95),
    }
}

/// Run E19: the poison-storm quarantine ablation, crash included.
pub fn e19_poison_quarantine(seed: u64) -> E19Result {
    E19Result {
        seed,
        variants: vec![
            run_poison_variant("no-quarantine", seed, false),
            run_poison_variant("quarantine", seed, true),
        ],
    }
}

impl E19Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E19 — poison storm with a mid-run crash, quarantine ablation (seed {})\n  stack            quarantined   rejections   retries   exhausted   poison kills   sla viol.   oltp p95\n",
            self.seed
        );
        for v in &self.variants {
            out.push_str(&format!(
                "  {:<14}   {:>11}   {:>10}   {:>7}   {:>9}   {:>12}   {:>9}   {:>7.2}s\n",
                v.variant,
                v.quarantined,
                v.quarantine_rejections,
                v.retries_scheduled,
                v.retries_exhausted,
                v.poison_killed,
                v.sla_violations,
                v.oltp_p95
            ));
        }
        out.push_str(
            "  three strikes quarantine a runaway for good — surviving the crash —\n  instead of burning its whole retry budget against a hopeless timeout\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_recovery_converges_and_bounds_violations() {
        let r = e18_crash_recovery(7, None, None);
        let [unint, ckpt, cold] = &r.variants[..] else {
            panic!("three variants expected");
        };
        // The recovery shapes are as designed.
        let ckpt_rec = ckpt.recovery.expect("checkpointed crash recovered");
        assert!(ckpt_rec.readopted > 0, "live queries re-adopted");
        assert_eq!(ckpt_rec.from_cycle, 1_500, "latest cadence before 1600");
        let cold_rec = cold.recovery.expect("cold crash recovered");
        assert_eq!(cold_rec.readopted, 0, "cold restart re-adopts nothing");
        assert!(
            cold_rec.orphans_killed > 0,
            "cold restart orphans the engine"
        );
        assert!(unint.recovery.is_none() && unint.checkpoints_taken == 0);
        assert!(ckpt.checkpoints_taken > 0);
        // The acceptance claims: the recovered run converges back to the
        // uninterrupted steady state, and checkpointed recovery bounds the
        // post-crash SLA damage a cold restart takes.
        assert!(unint.steady_oltp_mean > 0.0);
        assert!(
            ckpt.steady_oltp_mean <= unint.steady_oltp_mean * 2.0 + 0.1,
            "recovered steady state {} vs uninterrupted {}",
            ckpt.steady_oltp_mean,
            unint.steady_oltp_mean
        );
        assert!(cold.sla_violations_post_crash > 0, "the crash must bite");
        assert!(
            ckpt.sla_violations_post_crash <= cold.sla_violations_post_crash,
            "checkpointed {} vs cold {}",
            ckpt.sla_violations_post_crash,
            cold.sla_violations_post_crash
        );
    }

    #[test]
    fn quarantine_tames_the_poison_storm() {
        let r = e19_poison_quarantine(7);
        let [without, with] = &r.variants[..] else {
            panic!("two variants expected");
        };
        assert_eq!(without.quarantined, 0);
        assert_eq!(without.quarantine_rejections, 0);
        assert!(with.quarantined > 0, "poison lands in quarantine");
        assert!(
            with.quarantine_rejections > 0,
            "resubmitting a quarantined id is turned away"
        );
        assert!(
            with.retries_scheduled < without.retries_scheduled,
            "quarantine {} vs open retry budget {}",
            with.retries_scheduled,
            without.retries_scheduled
        );
        assert!(
            with.sla_violations <= without.sla_violations,
            "quarantine {} vs no-quarantine {}",
            with.sla_violations,
            without.sla_violations
        );
    }

    #[test]
    fn e18_is_deterministic_per_seed() {
        let a = serde_json::to_string(&e18_crash_recovery(3, Some(800), Some(100))).unwrap();
        let b = serde_json::to_string(&e18_crash_recovery(3, Some(800), Some(100))).unwrap();
        assert_eq!(a, b);
    }
}
