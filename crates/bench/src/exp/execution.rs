//! E4, E5, E7, E12 — the execution-control experiments.

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_core::execution::{
    optimal_suspend_plan, EconomicReallocator, ProgressGuidedKiller, SuspendCosts, ThresholdKiller,
    UtilityThrottler,
};
use wlm_core::policy::WorkloadPolicy;
use wlm_dbsim::engine::{DbEngine, EngineConfig};
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{BiSource, UtilitySource};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::Importance;

/// Result of E4.
#[derive(Debug, Clone, Serialize)]
pub struct E4Result {
    /// Production mean response with the utility running untrottled.
    pub oltp_mean_unthrottled: f64,
    /// Production mean response with PI throttling.
    pub oltp_mean_throttled: f64,
    /// Baseline production mean (no utility at all).
    pub oltp_mean_baseline: f64,
    /// Utility completion time untrottled, seconds.
    pub utility_secs_unthrottled: f64,
    /// Utility completion time throttled, seconds.
    pub utility_secs_throttled: f64,
    /// The degradation target the policy allowed (fraction over baseline).
    pub allowed_degradation: f64,
}

/// E4 — PI-controlled utility throttling holds production degradation at
/// the policy level (Parekh et al. \[64]). An online backup runs against an
/// OLTP workload; the policy allows 30% degradation over baseline.
pub fn e4_throttling() -> E4Result {
    use wlm_workload::generators::UniformSource;
    let engine = || EngineConfig {
        // A single production core: the utility competes head-on, as in the
        // original experiments on small servers.
        cores: 1,
        disk_pages_per_sec: 20_000,
        memory_mb: 1_024,
        ..Default::default()
    };
    // Production: CPU-bound report queries (~0.15s each at full speed).
    let production = || {
        let template = PlanBuilder::table_scan(100_000)
            .sort()
            .aggregate(100)
            .build()
            .into_spec();
        UniformSource::new(template, 5.0, "production", 500).with_importance(Importance::High)
    };
    let run = |with_utility: bool, throttle_baseline: Option<f64>| -> (f64, f64) {
        let mut mgr = WlmBuilder::new()
            .engine(engine())
            .cost_model(CostModel::oracle())
            .uniform_weights(true)
            .build()
            .expect("valid configuration");
        if let Some(baseline_secs) = throttle_baseline {
            mgr.add_exec_controller(Box::new(UtilityThrottler::new(
                "production",
                baseline_secs,
                0.15,
            )));
        }
        let mut mix = MixedSource::new().with(Box::new(production()));
        if with_utility {
            mix.push(Box::new(UtilitySource::new(
                SimTime::ZERO + SimDuration::from_secs(10),
                150.0,
                0,
            )));
        }
        let report = mgr.run(&mut mix, SimDuration::from_secs(900));
        let utility_secs = report
            .workload("utility")
            .and_then(|w| w.stats.responses_secs.first().copied())
            .unwrap_or(f64::NAN);
        // Production degradation is meaningful only while the utility is
        // live: average production responses over that window (or the whole
        // run for the no-utility baseline).
        let window_end = if utility_secs.is_nan() {
            f64::INFINITY
        } else {
            10.0 + utility_secs
        };
        let samples: Vec<f64> = mgr
            .query_log()
            .entries()
            .iter()
            .filter(|e| e.label == "production")
            .filter(|e| {
                let t = e.arrival.as_secs_f64();
                (10.0..window_end).contains(&t)
            })
            .map(|e| e.response.as_secs_f64())
            .collect();
        let prod_mean = if samples.is_empty() {
            f64::NAN
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        (prod_mean, utility_secs)
    };
    // The controller needs the baseline performance of the production
    // applications; measure it the way a DBA would — a run without the
    // utility.
    let (oltp_mean_baseline, _) = run(false, None);
    let (oltp_mean_unthrottled, utility_secs_unthrottled) = run(true, None);
    let (oltp_mean_throttled, utility_secs_throttled) = run(true, Some(oltp_mean_baseline));
    E4Result {
        oltp_mean_baseline,
        oltp_mean_unthrottled,
        oltp_mean_throttled,
        utility_secs_unthrottled,
        utility_secs_throttled,
        allowed_degradation: 0.15,
    }
}

impl E4Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E4 — PI utility throttling (Parekh et al.)\n  \
             production mean: baseline {:.4}s | utility untrottled {:.4}s | throttled {:.4}s (policy: <= {:.0}% over baseline)\n  \
             utility runtime: untrottled {:.0}s -> throttled {:.0}s (the price of the policy)\n",
            self.oltp_mean_baseline,
            self.oltp_mean_unthrottled,
            self.oltp_mean_throttled,
            self.allowed_degradation * 100.0,
            self.utility_secs_unthrottled,
            self.utility_secs_throttled
        )
    }
}

/// One row of E5: suspend/resume overheads at one suspend point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct E5Row {
    /// Progress fraction at which the query was suspended.
    pub suspend_at_fraction: f64,
    /// DumpState suspend cost, µs.
    pub dump_suspend_us: u64,
    /// DumpState resume cost, µs.
    pub dump_resume_us: u64,
    /// GoBack suspend cost, µs.
    pub goback_suspend_us: u64,
    /// GoBack resume (redo) cost, µs.
    pub goback_resume_us: u64,
}

/// Result of E5.
#[derive(Debug, Clone, Serialize)]
pub struct E5Result {
    /// Cost rows across suspend points.
    pub rows: Vec<E5Row>,
    /// Total overhead of the optimal plan for a 10-query suspension episode
    /// under a tight budget, µs.
    pub plan_optimal_us: u64,
    /// Total overhead of all-GoBack for the same episode, µs.
    pub plan_all_goback_us: u64,
    /// Total overhead of all-DumpState (ignoring the budget), µs.
    pub plan_all_dump_us: u64,
}

/// E5 — suspend-and-resume strategy trade-offs (Chandramouli et al. \[10]):
/// GoBack suspends almost for free but redoes work; DumpState pays
/// state-proportional costs both ways; the optimal plan minimises total
/// overhead under a suspend-cost budget.
pub fn e5_suspend() -> E5Result {
    let make_engine = || {
        DbEngine::new(EngineConfig {
            cores: 4,
            // Checkpoints further apart than the latest suspend point, so
            // the GoBack redo cost grows monotonically with progress across
            // the sweep (suspending right after a checkpoint makes the redo
            // ~zero — that is the asynchronous-checkpointing payoff, shown
            // by the episode planner below).
            checkpoint_every_us: 10_000_000,
            ..Default::default()
        })
    };
    let spec = || {
        PlanBuilder::table_scan(8_000_000)
            .filter(0.4)
            .aggregate(100)
            .build()
            .into_spec()
    };
    let rows: Vec<E5Row> = [0.2, 0.5, 0.8]
        .into_iter()
        .map(|fraction| {
            let measure = |strategy: SuspendStrategy| -> (u64, u64) {
                let mut e = make_engine();
                let id = e.submit(spec());
                while e.progress(id).map(|p| p.fraction).unwrap_or(1.0) < fraction {
                    e.step();
                }
                let sq = e.suspend(id, strategy).expect("suspendable");
                (sq.suspend_cost_us, sq.resume_cost_us)
            };
            let (dump_suspend_us, dump_resume_us) = measure(SuspendStrategy::DumpState);
            let (goback_suspend_us, goback_resume_us) = measure(SuspendStrategy::GoBack);
            E5Row {
                suspend_at_fraction: fraction,
                dump_suspend_us,
                dump_resume_us,
                goback_suspend_us,
                goback_resume_us,
            }
        })
        .collect();

    // Episode planning: 10 queries with varying state/redo profiles, budget
    // covering roughly a third of the dump costs.
    let costs: Vec<SuspendCosts> = (0..10)
        .map(|i| SuspendCosts {
            dump_suspend_us: 200_000 + i * 50_000,
            dump_resume_us: 200_000 + i * 50_000,
            goback_suspend_us: 100,
            goback_resume_us: 150_000 * (i + 1),
        })
        .collect();
    let budget: u64 = 1_500_000;
    let plan = optimal_suspend_plan(&costs, budget);
    let plan_optimal_us = costs.iter().zip(&plan).map(|(c, s)| c.total(*s)).sum();
    let plan_all_goback_us = costs.iter().map(|c| c.total(SuspendStrategy::GoBack)).sum();
    let plan_all_dump_us = costs
        .iter()
        .map(|c| c.total(SuspendStrategy::DumpState))
        .sum();
    E5Result {
        rows,
        plan_optimal_us,
        plan_all_goback_us,
        plan_all_dump_us,
    }
}

impl E5Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E5 — suspend-and-resume strategies (Chandramouli et al.)\n  at    DumpState susp/resume     GoBack susp/resume\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>3.0}%  {:>9.1}ms / {:>7.1}ms   {:>6.2}ms / {:>8.1}ms\n",
                r.suspend_at_fraction * 100.0,
                r.dump_suspend_us as f64 / 1e3,
                r.dump_resume_us as f64 / 1e3,
                r.goback_suspend_us as f64 / 1e3,
                r.goback_resume_us as f64 / 1e3,
            ));
        }
        out.push_str(&format!(
            "  10-query episode under a 1.5s suspend budget: optimal plan {:.2}s total overhead\n  (all-GoBack {:.2}s, all-DumpState {:.2}s — the DP spends the budget where redo hurts most)\n",
            self.plan_optimal_us as f64 / 1e6,
            self.plan_all_goback_us as f64 / 1e6,
            self.plan_all_dump_us as f64 / 1e6
        ));
        out
    }
}

/// Result of E7.
#[derive(Debug, Clone, Serialize)]
pub struct E7Result {
    /// Work completed per workload in phase 1 (gold more important).
    pub phase1_gold_done: u64,
    /// Work completed by the other workload in phase 1.
    pub phase1_silver_done: u64,
    /// Work completed per workload in phase 2 (importance flipped).
    pub phase2_gold_done: u64,
    /// Silver's completions in phase 2.
    pub phase2_silver_done: u64,
}

/// E7 — economic, policy-driven resource allocation tracks a run-time
/// importance flip (Boughton \[4], Zhang \[78]): two identical query streams;
/// "gold" starts 4x as important; at half time the policy flips.
pub fn e7_economic() -> E7Result {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 10_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("gold", Importance::High),
            WorkloadPolicy::new("silver", Importance::High),
        ])
        .build()
        .expect("valid configuration");
    // A fixed MPL keeps the saturation healthy; the market decides how
    // fast each admitted query progresses.
    mgr.set_scheduler(Box::new(wlm_core::scheduling::FcfsScheduler::new(12)));
    let mut realloc = EconomicReallocator::new(100.0);
    realloc.set_importance("gold", 8.0);
    realloc.set_importance("silver", 2.0);
    // Keep a handle to flip the policy mid-run: EconomicReallocator is
    // cloned into the manager, so we re-add a fresh one at the flip.
    mgr.add_exec_controller(Box::new(realloc));

    // Offered load far above capacity: completions then track each
    // workload's cleared resource share rather than its arrivals.
    let mut mix = MixedSource::new()
        .with(Box::new(
            BiSource::new(2.0, 700)
                .with_label("gold")
                .with_size(3_000_000.0, 0.4),
        ))
        .with(Box::new(
            BiSource::new(2.0, 701)
                .with_label("silver")
                .with_size(3_000_000.0, 0.4),
        ));

    let phase = SimDuration::from_secs(90);
    let r1 = mgr.run(&mut mix, phase);
    let phase1_gold = r1.workload("gold").map_or(0, |w| w.stats.completed);
    let phase1_silver = r1.workload("silver").map_or(0, |w| w.stats.completed);

    // The importance flip: a live policy change.
    mgr.clear_exec_controllers();
    let mut flipped = EconomicReallocator::new(100.0);
    flipped.set_importance("gold", 2.0);
    flipped.set_importance("silver", 8.0);
    mgr.add_exec_controller(Box::new(flipped));
    let r2 = mgr.run(&mut mix, phase);
    E7Result {
        phase1_gold_done: phase1_gold,
        phase1_silver_done: phase1_silver,
        phase2_gold_done: r2.workload("gold").map_or(0, |w| w.stats.completed) - phase1_gold,
        phase2_silver_done: r2.workload("silver").map_or(0, |w| w.stats.completed) - phase1_silver,
    }
}

impl E7Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E7 — economic resource allocation under an importance flip (Boughton/Zhang)\n  \
             phase 1 (gold 8 : silver 2): gold finished {:>4}, silver {:>4}\n  \
             phase 2 (gold 2 : silver 8): gold finished {:>4}, silver {:>4}\n  \
             the market re-clears on the policy change — no controller retuning\n",
            self.phase1_gold_done,
            self.phase1_silver_done,
            self.phase2_gold_done,
            self.phase2_silver_done
        )
    }
}

/// Result of E12.
#[derive(Debug, Clone, Serialize)]
pub struct E12Result {
    /// Kills by the manual elapsed-time threshold.
    pub time_kills: u64,
    /// Of which were "cheap" victims (little remaining work): wasted kills.
    pub time_wasted_kills: u64,
    /// Kills by the progress-guided controller.
    pub progress_kills: u64,
    /// Of which were cheap victims.
    pub progress_wasted_kills: u64,
}

/// E12 — progress indicators kill precisely; manual time thresholds kill
/// queued-but-cheap queries (§5.2's open problem). A congested system where
/// small queries spend a long time queued inside the engine behind hogs.
pub fn e12_kill_precision() -> E12Result {
    let run = |progress_guided: bool| -> (u64, u64) {
        let mut mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 2,
                disk_pages_per_sec: 5_000,
                memory_mb: 256,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .build()
            .expect("valid configuration");
        if progress_guided {
            // The progress indicator only kills queries with a lot of work
            // left — the hogs, never the cheap crawlers.
            let mut k = ProgressGuidedKiller::new(20.0);
            k.min_elapsed_secs = 8.0;
            mgr.add_exec_controller(Box::new(k));
        } else {
            mgr.add_exec_controller(Box::new(ThresholdKiller::new(8.0)));
        }
        // The hogs are high-importance quarter-end reports — no execution
        // policy may touch them — and the cheap exploration queries crawl
        // past any elapsed-time threshold purely because of the contention
        // the hogs create. Killing a crawler frees nothing (§5.2).
        let mut mix = MixedSource::new()
            .with(Box::new(
                BiSource::new(0.2, 800)
                    .with_label("hog")
                    .with_size(30_000_000.0, 0.4)
                    .with_importance(Importance::High),
            ))
            .with(Box::new(
                BiSource::new(2.0, 801)
                    .with_label("small")
                    .with_size(1_500_000.0, 0.3)
                    .with_importance(Importance::Low),
            ));
        let report = mgr.run(&mut mix, SimDuration::from_secs(180));
        let hog_kills = report.workload("hog").map_or(0, |w| w.stats.killed);
        let small_kills = report.workload("small").map_or(0, |w| w.stats.killed);
        (hog_kills + small_kills, small_kills)
    };
    let (time_kills, time_wasted_kills) = run(false);
    let (progress_kills, progress_wasted_kills) = run(true);
    E12Result {
        time_kills,
        time_wasted_kills,
        progress_kills,
        progress_wasted_kills,
    }
}

impl E12Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "E12 — kill precision: time threshold vs progress indicator (§3.4/§5.2)\n  \
             elapsed-time threshold: {} kills, {} of them cheap victims (wasted)\n  \
             progress-guided:        {} kills, {} of them cheap victims\n",
            self.time_kills,
            self.time_wasted_kills,
            self.progress_kills,
            self.progress_wasted_kills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_throttling_restores_production_and_costs_the_utility() {
        let r = e4_throttling();
        // Shape: the untrottled utility degrades production well past the
        // policy; throttling pulls it back near the allowed band.
        assert!(
            r.oltp_mean_unthrottled > r.oltp_mean_baseline * 1.25,
            "utility must hurt: baseline {} with-utility {}",
            r.oltp_mean_baseline,
            r.oltp_mean_unthrottled
        );
        assert!(
            r.oltp_mean_throttled < r.oltp_mean_unthrottled * 0.92,
            "throttling must help: {} -> {}",
            r.oltp_mean_unthrottled,
            r.oltp_mean_throttled
        );
        // Throttled production lands inside the policy band (with margin
        // for measurement noise).
        assert!(
            r.oltp_mean_throttled < r.oltp_mean_baseline * (1.0 + r.allowed_degradation) * 1.15,
            "policy band: baseline {} throttled {}",
            r.oltp_mean_baseline,
            r.oltp_mean_throttled
        );
        assert!(
            r.utility_secs_throttled > r.utility_secs_unthrottled * 1.2,
            "the utility pays: {} -> {}",
            r.utility_secs_unthrottled,
            r.utility_secs_throttled
        );
    }

    #[test]
    fn e5_strategy_tradeoffs_hold() {
        let r = e5_suspend();
        for row in &r.rows {
            assert!(
                row.goback_suspend_us < row.dump_suspend_us,
                "GoBack suspends cheaper at {:.0}%",
                row.suspend_at_fraction * 100.0
            );
        }
        // Dump costs grow with accumulated state.
        assert!(r.rows[2].dump_suspend_us > r.rows[0].dump_suspend_us);
        // The optimal plan is never worse than either pure strategy that
        // fits the budget.
        assert!(r.plan_optimal_us <= r.plan_all_goback_us);
    }

    #[test]
    fn e7_allocation_follows_the_flip() {
        let r = e7_economic();
        assert!(
            r.phase1_gold_done > r.phase1_silver_done,
            "phase1 {} vs {}",
            r.phase1_gold_done,
            r.phase1_silver_done
        );
        assert!(
            r.phase2_silver_done > r.phase2_gold_done,
            "phase2 {} vs {}",
            r.phase2_gold_done,
            r.phase2_silver_done
        );
    }

    #[test]
    fn e12_progress_guided_kills_waste_less() {
        let r = e12_kill_precision();
        assert!(r.time_wasted_kills > 0, "the naive killer wastes kills");
        assert!(
            r.progress_wasted_kills < r.time_wasted_kills,
            "progress {} vs time {}",
            r.progress_wasted_kills,
            r.time_wasted_kills
        );
    }
}
