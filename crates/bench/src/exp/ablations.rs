//! Ablation studies of the framework's own design choices (A1–A3).
//!
//! These are not paper artifacts; they quantify the internal trade-offs
//! DESIGN.md calls out so a downstream user can tune them:
//!
//! * **A1 — restructuring piece count**: more pieces free short queries
//!   sooner but add queueing/dispatch overhead per piece;
//! * **A2 — checkpoint interval**: denser checkpoints shrink GoBack redo at
//!   no modelled I/O cost here, i.e. the sweep shows the *redo-at-suspend*
//!   curve the interval controls;
//! * **A3 — MAPE planning period**: faster planning reacts sooner but
//!   oscillates more (measured as control actions issued).

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_core::autonomic::{AutonomicController, GoalSpec};
use wlm_core::policy::WorkloadPolicy;
use wlm_core::scheduling::{FcfsScheduler, Restructurer};
use wlm_dbsim::engine::{DbEngine, EngineConfig};
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::{AdHocSource, BiSource, OltpSource, Source};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// One A1 row.
#[derive(Debug, Clone, Serialize)]
pub struct A1Row {
    /// Maximum pieces a monster may be sliced into (1 = no restructuring).
    pub max_pieces: usize,
    /// Short-query p95, seconds.
    pub short_p95: f64,
    /// Monster mean response, seconds (the overhead side).
    pub monster_mean: f64,
}

/// Result of A1.
#[derive(Debug, Clone, Serialize)]
pub struct A1Result {
    /// Sweep rows.
    pub rows: Vec<A1Row>,
}

/// A1 — piece-count sweep for query restructuring.
pub fn a1_restructure_pieces() -> A1Result {
    let run = |max_pieces: usize| -> (f64, f64) {
        let mut mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 8,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .build()
            .expect("valid configuration");
        mgr.set_scheduler(Box::new(FcfsScheduler::new(2)));
        if max_pieces > 1 {
            mgr.set_restructurer(Restructurer {
                slice_threshold_timerons: 5_000_000.0,
                target_piece_timerons: 1.0, // always want max pieces
                max_pieces,
            });
        }
        let mut mix = MixedSource::new()
            .with(Box::new(
                BiSource::new(1.5, 400)
                    .with_label("short")
                    .with_size(300_000.0, 0.3),
            ))
            .with(Box::new(AdHocSource::new(0.08, 401)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(180));
        (
            report.workload("short").map_or(f64::NAN, |w| w.summary.p95),
            report
                .workload("adhoc")
                .map_or(f64::NAN, |w| w.summary.mean),
        )
    };
    A1Result {
        rows: [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|max_pieces| {
                let (short_p95, monster_mean) = run(max_pieces);
                A1Row {
                    max_pieces,
                    short_p95,
                    monster_mean,
                }
            })
            .collect(),
    }
}

impl A1Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "A1 — restructuring piece-count sweep (design-choice ablation)\n  pieces   short p95   monster mean\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>6}   {:>8.3}s   {:>10.3}s\n",
                r.max_pieces, r.short_p95, r.monster_mean
            ));
        }
        out.push_str(
            "  diminishing returns past ~8 pieces; monsters pay queue re-entry per piece\n",
        );
        out
    }
}

/// One A2 row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct A2Row {
    /// Checkpoint interval, seconds of work.
    pub interval_secs: f64,
    /// Mean GoBack redo cost over suspend points at 25/50/75%, seconds.
    pub mean_redo_secs: f64,
}

/// Result of A2.
#[derive(Debug, Clone, Serialize)]
pub struct A2Result {
    /// Sweep rows.
    pub rows: Vec<A2Row>,
}

/// A2 — checkpoint-interval sweep: how asynchronous checkpointing bounds
/// the GoBack redo cost.
pub fn a2_checkpoint_interval() -> A2Result {
    let rows = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
        .into_iter()
        .map(|interval_secs| {
            let mut total_redo = 0.0;
            let points = [0.25, 0.5, 0.75];
            for &frac in &points {
                let mut e = DbEngine::new(EngineConfig {
                    cores: 4,
                    checkpoint_every_us: (interval_secs * 1e6) as u64,
                    ..Default::default()
                });
                let id = e.submit(
                    PlanBuilder::table_scan(8_000_000)
                        .filter(0.4)
                        .aggregate(100)
                        .build()
                        .into_spec(),
                );
                while e.progress(id).map(|p| p.fraction).unwrap_or(1.0) < frac {
                    e.step();
                }
                let sq = e.suspend(id, SuspendStrategy::GoBack).expect("suspend");
                total_redo += sq.resume_cost_us as f64 / 1e6;
            }
            A2Row {
                interval_secs,
                mean_redo_secs: total_redo / points.len() as f64,
            }
        })
        .collect();
    A2Result { rows }
}

impl A2Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "A2 — checkpoint-interval sweep (GoBack redo bound)\n  interval   mean redo at suspend\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>6.1}s   {:>10.3}s\n",
                r.interval_secs, r.mean_redo_secs
            ));
        }
        out.push_str("  redo is bounded by the checkpoint interval, as designed\n");
        out
    }
}

/// One A3 row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct A3Row {
    /// MAPE planning period, seconds.
    pub plan_every_secs: f64,
    /// OLTP p95 over the run, seconds.
    pub oltp_p95: f64,
    /// Control decisions issued (responsiveness/oscillation proxy).
    pub decisions: usize,
}

/// Result of A3.
#[derive(Debug, Clone, Serialize)]
pub struct A3Result {
    /// Sweep rows.
    pub rows: Vec<A3Row>,
}

/// A3 — MAPE planning-period sweep on the E10 shift scenario.
pub fn a3_mape_period() -> A3Result {
    let rows = [1.0, 2.0, 5.0, 10.0, 20.0]
        .into_iter()
        .map(|plan_every_secs| {
            let mut mgr = WlmBuilder::new()
                .engine(EngineConfig {
                    cores: 8,
                    memory_mb: 256,
                    ..Default::default()
                })
                .cost_model(CostModel::oracle())
                .policies(vec![WorkloadPolicy::new("oltp", Importance::Critical)
                    .with_sla(ServiceLevelAgreement::percentile(95.0, 0.3))])
                .uniform_weights(true)
                .build()
                .expect("valid configuration");
            let mut controller = AutonomicController::new(vec![GoalSpec {
                workload: "oltp".into(),
                goal_secs: 0.3,
                importance_weight: 10.0,
            }]);
            controller.plan_every_secs = plan_every_secs;
            let decisions = controller.decisions();
            mgr.add_exec_controller(Box::new(controller));
            let mut mix = MixedSource::new()
                .with(Box::new(OltpSource::new(40.0, 900)))
                .with(Box::new(DelayedBi {
                    inner: BiSource::new(4.0, 901).with_size(40_000_000.0, 0.6),
                    start_secs: 45.0,
                }));
            let report = mgr.run(&mut mix, SimDuration::from_secs(180));
            let n_decisions = decisions
                .borrow()
                .iter()
                .filter(|(_, d)| !matches!(d, wlm_core::autonomic::LoopDecision::Steady))
                .count();
            A3Row {
                plan_every_secs,
                oltp_p95: report.workload("oltp").map_or(f64::NAN, |w| w.summary.p95),
                decisions: n_decisions,
            }
        })
        .collect();
    A3Result { rows }
}

struct DelayedBi {
    inner: BiSource,
    start_secs: f64,
}

impl Source for DelayedBi {
    fn poll(
        &mut self,
        from: wlm_dbsim::time::SimTime,
        to: wlm_dbsim::time::SimTime,
    ) -> Vec<wlm_workload::request::Request> {
        let reqs = self.inner.poll(from, to);
        if to.as_secs_f64() < self.start_secs {
            return Vec::new();
        }
        reqs
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

impl A3Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "A3 — MAPE planning-period sweep (design-choice ablation)\n  period   oltp p95   non-steady decisions\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>5.0}s   {:>7.3}s   {:>9}\n",
                r.plan_every_secs, r.oltp_p95, r.decisions
            ));
        }
        out.push_str("  slow planners detect the shift late; fast ones act (and churn) more\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_more_pieces_help_shorts_then_plateau() {
        let r = a1_restructure_pieces();
        let whole = &r.rows[0];
        let best_sliced = r.rows[1..]
            .iter()
            .map(|r| r.short_p95)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_sliced < whole.short_p95 * 0.5,
            "slicing must help shorts: whole {} best {}",
            whole.short_p95,
            best_sliced
        );
    }

    #[test]
    fn a2_redo_shrinks_with_denser_checkpoints() {
        let r = a2_checkpoint_interval();
        let dense = r.rows.first().unwrap();
        let sparse = r.rows.last().unwrap();
        assert!(
            dense.mean_redo_secs < sparse.mean_redo_secs * 0.5,
            "dense {} vs sparse {}",
            dense.mean_redo_secs,
            sparse.mean_redo_secs
        );
        // Redo never exceeds the checkpoint interval (plus one quantum of
        // overshoot).
        for row in &r.rows {
            assert!(
                row.mean_redo_secs <= row.interval_secs + 1.0,
                "redo {} interval {}",
                row.mean_redo_secs,
                row.interval_secs
            );
        }
    }

    #[test]
    fn a3_fast_planning_beats_slow() {
        let r = a3_mape_period();
        let fastest = r.rows.first().unwrap();
        let slowest = r.rows.last().unwrap();
        assert!(
            fastest.oltp_p95 < slowest.oltp_p95,
            "fast {} vs slow {}",
            fastest.oltp_p95,
            slowest.oltp_p95
        );
        assert!(fastest.decisions >= slowest.decisions);
    }
}
