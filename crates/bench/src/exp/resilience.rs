//! E16/E17 — resilience under injected faults.
//!
//! E16 is the ablation behind the taxonomy's execution-control claim that
//! *reactive* control (kill, hold, shed) must be paired with *recovery*
//! mechanisms to protect SLAs through a fault: the same faulted scenario
//! runs with timeouts only ("no-retry"), with retry budgets, and with the
//! full stack (retry + circuit breakers + degradation ladder), counting
//! SLA violations (goal misses, kills and rejections of the SLA-bearing
//! workloads) under each.
//!
//! E17 replays a compound fault (IO collapse + core loss + flash crowd +
//! lock storm) against the full stack and reports the three phases —
//! pre-fault, fault, recovery — to show degradation is bounded and
//! service is restored.

use serde::Serialize;
use wlm_chaos::{run_with_chaos, ChaosDriver, FaultPlan, FaultPlanBuilder};
use wlm_core::api::WlmBuilder;
use wlm_core::manager::{RunReport, WorkloadManager};
use wlm_core::policy::WorkloadPolicy;
use wlm_core::resilience::{BreakerConfig, LadderConfig, ResilienceConfig, RetryPolicy};
use wlm_core::scheduling::PriorityScheduler;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::metrics::summarize;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{AdHocSource, BiSource, OltpSource, SurgeSource};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// One resilience stack's outcome under the shared fault plan.
#[derive(Debug, Clone, Serialize)]
pub struct E16Variant {
    /// Stack name (`no-retry`, `retry`, `retry+breaker+ladder`).
    pub variant: &'static str,
    /// Goal misses + kills + rejections across the SLA-bearing workloads
    /// (oltp and bi; best-effort ad-hoc sheds are free by definition).
    pub sla_violations: u64,
    /// Goal misses alone (completions over the tightest response target).
    pub goal_violations: u64,
    /// Kills (timeouts that exhausted or lacked a retry budget).
    pub killed: u64,
    /// Admission-gate and ladder rejections.
    pub rejected: u64,
    /// Total completions across all workloads.
    pub completed: u64,
    /// OLTP 95th-percentile response, seconds.
    pub oltp_p95: f64,
    /// Retries the stack scheduled (0 when retries are off).
    pub retries_scheduled: u64,
    /// Requests dropped after exhausting their budget.
    pub retries_exhausted: u64,
    /// Circuit-breaker state transitions (0 when breakers are off).
    pub breaker_transitions: u64,
    /// Degradation-ladder rung moves (0 when the ladder is off).
    pub ladder_steps: u64,
}

/// Result of E16.
#[derive(Debug, Clone, Serialize)]
pub struct E16Result {
    /// The seed behind the fault plan and arrival streams.
    pub seed: u64,
    /// Ablation variants, weakest stack first.
    pub variants: Vec<E16Variant>,
}

/// One phase of the E17 timeline.
#[derive(Debug, Clone, Serialize)]
pub struct E17Phase {
    /// Phase name (`pre-fault`, `fault`, `recovery`).
    pub phase: &'static str,
    /// OLTP completions inside the phase.
    pub oltp_completions: u64,
    /// Mean OLTP response over the phase, seconds.
    pub oltp_mean: f64,
    /// 95th-percentile OLTP response over the phase, seconds.
    pub oltp_p95: f64,
    /// Goal misses (oltp + bi) inside the phase.
    pub goal_violations: u64,
}

/// Result of E17.
#[derive(Debug, Clone, Serialize)]
pub struct E17Result {
    /// The seed behind the fault plan and arrival streams.
    pub seed: u64,
    /// Pre-fault / fault / recovery phases.
    pub phases: Vec<E17Phase>,
    /// Retries scheduled over the run.
    pub retries_scheduled: u64,
    /// Circuit-breaker state transitions over the run.
    pub breaker_transitions: u64,
    /// Degradation-ladder rung moves over the run.
    pub ladder_steps: u64,
    /// Fault-plan events applied.
    pub faults_applied: u64,
    /// Fault-plan events the engine rejected or that had no target.
    pub faults_skipped: u64,
}

fn manager() -> WorkloadManager {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 20_000,
            memory_mb: 4_096,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 12.0)),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(60.0)),
            WorkloadPolicy::new("adhoc", Importance::Low)
                .with_sla(ServiceLevelAgreement::best_effort()),
        ])
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(12)));
    mgr
}

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(25.0, seed)))
        .with(Box::new(BiSource::new(1.0, seed + 1)))
        .with(Box::new(AdHocSource::new(2.0, seed + 2)))
}

/// The shared E16 fault window: disk collapses to 8% of nominal and three
/// of four cores go offline for eight seconds mid-run.
fn e16_plan(seed: u64) -> FaultPlan {
    FaultPlanBuilder::new(seed)
        .io_spike(15.0, 8.0, 0.08)
        .core_loss(15.0, 8.0, 3)
        .build()
}

/// Violations of the SLA-bearing workloads: goal misses plus kills plus
/// rejections for oltp and bi.
fn sla_violations(mgr: &WorkloadManager, report: &RunReport) -> (u64, u64, u64, u64) {
    let mut goals = 0;
    let mut killed = 0;
    let mut rejected = 0;
    for name in ["oltp", "bi"] {
        goals += mgr.goal_violations_in(name);
        if let Some(w) = report.workload(name) {
            killed += w.stats.killed;
            rejected += w.stats.rejected;
        }
    }
    (goals + killed + rejected, goals, killed, rejected)
}

fn run_variant(variant: &'static str, seed: u64, resilience: ResilienceConfig) -> E16Variant {
    let mut mgr = manager();
    mgr.set_resilience(resilience);
    let mut src = mix(seed);
    let mut driver = ChaosDriver::new(e16_plan(seed));
    let report = run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(45), &mut driver);
    let (sla_violations, goal_violations, killed, rejected) = sla_violations(&mgr, &report);
    let res = mgr.resilience_report().expect("resilience layer enabled");
    E16Variant {
        variant,
        sla_violations,
        goal_violations,
        killed,
        rejected,
        completed: report.completed,
        oltp_p95: report.workload("oltp").map_or(f64::NAN, |w| w.summary.p95),
        retries_scheduled: res.retries_scheduled,
        retries_exhausted: res.retries_exhausted,
        breaker_transitions: res.breaker_transitions,
        ladder_steps: res.ladder_steps,
    }
}

/// Run E16: the resilience ablation. Every variant sees the identical
/// fault plan, arrival streams and 3-second OLTP timeout; they differ
/// only in what happens after a timeout kill.
pub fn e16_resilience_ablation(seed: u64) -> E16Result {
    let base = || ResilienceConfig::new(seed).with_timeout("oltp", 3.0);
    let variants = vec![
        run_variant("no-retry", seed, base()),
        run_variant("retry", seed, base().with_retry(RetryPolicy::aggressive())),
        run_variant(
            "retry+breaker+ladder",
            seed,
            base()
                .with_retry(RetryPolicy::aggressive())
                .with_breaker(BreakerConfig::default())
                .with_ladder(LadderConfig::default()),
        ),
    ];
    E16Result { seed, variants }
}

impl E16Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E16 — resilience ablation under an 8s IO+CPU fault (seed {})\n  stack                   violations   goals   kills   rejects   oltp p95   retries\n",
            self.seed
        );
        for v in &self.variants {
            out.push_str(&format!(
                "  {:<22}  {:>9}   {:>5}   {:>5}   {:>7}   {:>7.2}s   {:>7}\n",
                v.variant,
                v.sla_violations,
                v.goal_violations,
                v.killed,
                v.rejected,
                v.oltp_p95,
                v.retries_scheduled
            ));
        }
        out.push_str(
            "  retry turns timeout kills into delayed completions; the breaker and\n  ladder keep the retry storm off the degraded engine\n",
        );
        out
    }
}

/// Run E17: a compound fault (IO collapse + core loss + flash crowd +
/// lock storm) against the full resilience stack, reported in three
/// phases.
pub fn e17_fault_recovery(seed: u64) -> E17Result {
    let mut mgr = manager();
    mgr.set_resilience(
        ResilienceConfig::new(seed)
            .with_timeout("oltp", 3.0)
            .with_retry(RetryPolicy::aggressive())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default()),
    );
    let (mut src, handle) = SurgeSource::new(Box::new(mix(seed)), seed + 3);
    let plan = FaultPlanBuilder::new(seed)
        .io_spike(15.0, 10.0, 0.15)
        .core_loss(16.0, 8.0, 2)
        .flash_crowd(15.0, 10.0, 3.0)
        .lock_storm(18.0, 12, 4, 24, 1.5)
        .build();
    let mut driver = ChaosDriver::new(plan).with_surge(handle);
    let mut phases = Vec::new();
    let mut seen_responses = 0usize;
    let mut seen_goals = 0u64;
    for (phase, until_secs) in [("pre-fault", 15u64), ("fault", 30), ("recovery", 60)] {
        let target = SimTime(until_secs * 1_000_000);
        let remaining = target.since(mgr.now());
        run_with_chaos(&mut mgr, &mut src, remaining, &mut driver);
        let report = mgr.report();
        let responses = report
            .workload("oltp")
            .map(|w| w.stats.responses_secs.clone())
            .unwrap_or_default();
        let slice = &responses[seen_responses.min(responses.len())..];
        let summary = summarize(slice);
        let goals = mgr.goal_violations_in("oltp") + mgr.goal_violations_in("bi");
        phases.push(E17Phase {
            phase,
            oltp_completions: slice.len() as u64,
            oltp_mean: summary.mean,
            oltp_p95: summary.p95,
            goal_violations: goals - seen_goals,
        });
        seen_responses = responses.len();
        seen_goals = goals;
    }
    let res = mgr.resilience_report().expect("resilience layer enabled");
    E17Result {
        seed,
        phases,
        retries_scheduled: res.retries_scheduled,
        breaker_transitions: res.breaker_transitions,
        ladder_steps: res.ladder_steps,
        faults_applied: driver.applied(),
        faults_skipped: driver.skipped(),
    }
}

impl E17Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E17 — SLA recovery through a compound fault, full stack (seed {})\n  phase        oltp done   mean        p95        goal misses\n",
            self.seed
        );
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<10}   {:>8}   {:>7.3}s   {:>7.3}s   {:>10}\n",
                p.phase, p.oltp_completions, p.oltp_mean, p.oltp_p95, p.goal_violations
            ));
        }
        out.push_str(&format!(
            "  {} retries, {} breaker transitions, {} ladder steps; {} fault events applied\n",
            self.retries_scheduled,
            self.breaker_transitions,
            self.ladder_steps,
            self.faults_applied
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stack_strictly_beats_no_retry() {
        let r = e16_resilience_ablation(7);
        assert_eq!(r.variants.len(), 3);
        let none = &r.variants[0];
        let full = &r.variants[2];
        // The acceptance claim: the full stack achieves strictly fewer SLA
        // violations than timeouts alone under the same fault plan.
        assert!(
            full.sla_violations < none.sla_violations,
            "full {} vs no-retry {}",
            full.sla_violations,
            none.sla_violations
        );
        // The fault actually hurt the unprotected stack...
        assert!(none.sla_violations > 0, "fault plan must bite");
        // ...and each mechanism actually engaged.
        assert_eq!(none.retries_scheduled, 0);
        assert!(full.retries_scheduled > 0, "retries engaged");
        assert!(full.breaker_transitions > 0, "breaker engaged");
    }

    #[test]
    fn fault_phase_degrades_and_recovery_restores() {
        let r = e17_fault_recovery(11);
        assert_eq!(r.faults_skipped, 0, "every planned fault must land");
        assert_eq!(r.faults_applied, 7, "4 windows: 3 paired + 1 storm");
        let [pre, fault, post] = &r.phases[..] else {
            panic!("three phases expected");
        };
        assert!(pre.oltp_completions > 0 && post.oltp_completions > 0);
        // Degradation during the fault window...
        assert!(
            fault.oltp_mean > pre.oltp_mean * 2.0,
            "fault {} vs pre {}",
            fault.oltp_mean,
            pre.oltp_mean
        );
        // ...and recovery after it.
        assert!(
            post.oltp_mean < fault.oltp_mean,
            "post {} vs fault {}",
            post.oltp_mean,
            fault.oltp_mean
        );
    }

    #[test]
    fn e16_is_deterministic_per_seed() {
        let a = serde_json::to_string(&e16_resilience_ablation(3)).unwrap();
        let b = serde_json::to_string(&e16_resilience_ablation(3)).unwrap();
        assert_eq!(a, b);
    }
}
