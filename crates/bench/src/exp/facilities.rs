//! E9 — the three commercial facilities on the same consolidation scenario
//! (§4.1): each emulation manages an identical OLTP + BI overload with its
//! own technique set; the outcome differences reflect the paper's Table 4
//! classification.

use serde::Serialize;
use wlm_core::api::WlmBuilder;
use wlm_core::manager::WorkloadManager;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::SimDuration;
use wlm_systems::{Db2WorkloadManager, ResourceGovernor, TeradataAsm};
use wlm_workload::generators::{BiSource, OltpSource};
use wlm_workload::mix::MixedSource;

/// One facility's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct E9Row {
    /// Facility name.
    pub facility: String,
    /// OLTP-class completions (whatever the facility calls that class).
    pub oltp_completed: u64,
    /// OLTP-class p95, seconds.
    pub oltp_p95: f64,
    /// Total completions.
    pub total_completed: u64,
    /// Rejections.
    pub rejected: u64,
    /// Kills.
    pub killed: u64,
}

/// Result of E9.
#[derive(Debug, Clone, Serialize)]
pub struct E9Result {
    /// Unmanaged baseline plus one row per facility.
    pub rows: Vec<E9Row>,
}

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(50.0, seed)))
        .with(Box::new(
            BiSource::new(3.0, seed + 1).with_size(15_000_000.0, 0.9),
        ))
}

fn builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 256,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.3, 99))
        .uniform_weights(true)
}

fn summarize(facility: &str, oltp_class: &str, mgr: &mut WorkloadManager) -> E9Row {
    let report = mgr.run(&mut mix(1_000), SimDuration::from_secs(120));
    let oltp = report.workload(oltp_class).cloned();
    E9Row {
        facility: facility.into(),
        oltp_completed: oltp.as_ref().map_or(0, |w| w.stats.completed),
        oltp_p95: oltp.as_ref().map_or(f64::NAN, |w| w.summary.p95),
        total_completed: report.completed,
        rejected: report.rejected,
        killed: report.killed,
    }
}

/// Run E9.
pub fn e9_facilities() -> E9Result {
    let mut rows = Vec::new();

    let mut baseline = builder().build().expect("valid configuration");
    rows.push(summarize("unmanaged baseline", "oltp", &mut baseline));

    let db2 = Db2WorkloadManager::example();
    let mut mgr = db2.build(builder()).expect("valid configuration");
    rows.push(summarize(
        "IBM DB2 Workload Manager",
        "INTERACTIVE",
        &mut mgr,
    ));

    let rg = ResourceGovernor::example();
    let mut mgr = rg.build(builder()).expect("valid configuration");
    rows.push(summarize(
        "SQL Server Resource/Query Governor",
        "oltp_group",
        &mut mgr,
    ));

    let asm = TeradataAsm::example();
    let mut mgr = asm.build(builder()).expect("valid configuration");
    rows.push(summarize(
        "Teradata Active System Management",
        "WD-Tactical",
        &mut mgr,
    ));

    E9Result { rows }
}

impl E9Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "E9 — the commercial facilities on one consolidation overload (§4.1)\n  facility                                oltp done   oltp p95   total done  rejected  killed\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<39} {:>8}   {:>7.3}s   {:>9}  {:>8}  {:>6}\n",
                r.facility, r.oltp_completed, r.oltp_p95, r.total_completed, r.rejected, r.killed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_facility_beats_the_unmanaged_baseline_for_oltp() {
        let r = e9_facilities();
        let baseline = &r.rows[0];
        for row in &r.rows[1..] {
            assert!(
                row.oltp_p95 < baseline.oltp_p95 * 0.5,
                "{}: p95 {} vs baseline {}",
                row.facility,
                row.oltp_p95,
                baseline.oltp_p95
            );
            assert!(
                row.oltp_completed as f64 >= baseline.oltp_completed as f64 * 0.95,
                "{}: completions {} vs baseline {}",
                row.facility,
                row.oltp_completed,
                baseline.oltp_completed
            );
        }
    }
}
