//! E26/E27 — checkpoint durability and the fault-space sweep.
//!
//! E26 measures what the checksummed, generation-chained checkpoint
//! envelope buys when the checkpoint *medium* — not just the controller
//! — fails. The same faulted scenario runs three ways: uninterrupted;
//! with a cadence checkpoint truncated at rest and a crash shortly
//! after, recovered through the envelope store (verification rejects
//! the damaged generation and falls back one cadence point); and the
//! blind ablation (raw bytes, no envelope), where the same damage makes
//! the newest checkpoint unusable and the controller restarts cold.
//! The pinned claims: the fallback restore's post-crash SLA violations
//! stay within a fixed bound of the uninterrupted run's, and the blind
//! arm fails verification (its recovery re-adopts nothing).
//!
//! E27 turns the hand-picked fault schedules of E16–E25 into a budgeted
//! sweep. The [`wlm_chaos::explore`] enumerator walks a grid of
//! controller crash points × a second-shard kill × link-degradation
//! windows × a torn checkpoint write; each schedule drives a canonical
//! two-shard cluster run, and four invariants are machine-checked on
//! every outcome (exactly-once, work conservation, bounded recovery, no
//! stuck requests). The pinned claims: the sweep reports **zero**
//! violations across the grid, and a known-bad synthetic schedule —
//! at-rest corruption of a crash-time strip image, which *loses queued
//! work by design* — is caught by the conservation invariant and shrunk
//! to its two-fault core.

use serde::Serialize;
use std::collections::BTreeMap;
use wlm_chaos::{
    explore, run_with_chaos, shrink, ChaosDriver, ExploreConfig, FaultPlanBuilder, NetFault,
    RunOutcome, Schedule, ScheduleFault, Verdict,
};
use wlm_cluster::{Cluster, ClusterBuilder, LinkConfig, RoutingPolicy};
use wlm_core::api::WlmBuilder;
use wlm_core::events::RingRecorder;
use wlm_core::manager::store::{CorruptionKind, StoreConfig};
use wlm_core::manager::{RecoveryReport, WorkloadManager};
use wlm_core::policy::WorkloadPolicy;
use wlm_core::scheduling::PriorityScheduler;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::{BiSource, OltpSource, Source};
use wlm_workload::mix::MixedSource;
use wlm_workload::request::{Importance, Request, RequestId};
use wlm_workload::sla::ServiceLevelAgreement;

/// E26 run length, seconds.
const E26_RUN_SECS: u64 = 45;
/// E26 checkpoint cadence, control cycles.
const E26_CHECKPOINT_EVERY: u64 = 250;
/// E26 corruption cycle: lands exactly on a cadence point, so the
/// generation written there is the one damaged at rest.
const E26_CORRUPT_AT: u64 = 1_500;
/// E26 crash cycle: one drift window after the damaged save.
const E26_CRASH_AT: u64 = 1_600;
/// The E26 pinned bound: post-crash SLA violations of the fallback
/// restore may exceed the uninterrupted run's by at most this many.
pub const E26_VIOLATION_BOUND: u64 = 60;

/// One recovery arm's outcome under the shared corruption + crash.
#[derive(Debug, Clone, Serialize)]
pub struct E26Variant {
    /// Arm name (`uninterrupted`, `envelope-fallback`, `blind-restore`).
    pub variant: &'static str,
    /// Goal misses + kills + rejections of the SLA-bearing workloads
    /// over the whole run.
    pub sla_violations: u64,
    /// Completions on the final books.
    pub completed: u64,
    /// What recovery did (absent for the uninterrupted baseline).
    pub recovery: Option<RecoveryReport>,
    /// `checkpoint_rejected` events the restore emitted.
    pub checkpoint_rejected: u64,
    /// `checkpoint_fallback` events the restore emitted.
    pub checkpoint_fallback: u64,
    /// Restores where no generation verified and the controller
    /// restarted cold.
    pub cold_restarts: u64,
    /// Checkpoint generations held by the store at end of run.
    pub generations: usize,
}

/// Result of E26.
#[derive(Debug, Clone, Serialize)]
pub struct E26Result {
    /// The seed behind the arrival streams.
    pub seed: u64,
    /// Cycle whose cadence checkpoint is damaged at rest.
    pub corrupt_at_cycle: u64,
    /// Cycle the controller crash lands on.
    pub crash_at_cycle: u64,
    /// Checkpoint cadence, cycles.
    pub checkpoint_every: u64,
    /// The pinned violation bound of the fallback arm.
    pub violation_bound: u64,
    /// Recovery arms, baseline first.
    pub variants: Vec<E26Variant>,
}

fn e26_manager() -> WorkloadManager {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 20_000,
            memory_mb: 4_096,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 12.0)),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(60.0)),
        ])
        .build()
        .expect("valid configuration")
}

fn e26_mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(25.0, seed)))
        .with(Box::new(BiSource::new(1.0, seed + 1)))
}

/// Goal misses + kills + rejections across the SLA-bearing workloads.
fn e26_sla_violations(mgr: &WorkloadManager) -> u64 {
    let report = mgr.report();
    let mut total = 0;
    for name in ["oltp", "bi"] {
        total += mgr.goal_violations_in(name);
        if let Some(w) = report.workload(name) {
            total += w.stats.killed + w.stats.rejected;
        }
    }
    total
}

fn e26_arm(variant: &'static str, seed: u64, crash: bool, envelope: bool) -> E26Variant {
    let mut mgr = e26_manager();
    let trace = RingRecorder::new(1 << 14);
    mgr.subscribe(Box::new(trace.clone()));
    let mut src = e26_mix(seed);
    let mut builder = FaultPlanBuilder::new(seed);
    if crash {
        builder = builder
            .corrupt_checkpoint(E26_CORRUPT_AT, CorruptionKind::Truncate)
            .controller_crash(E26_CRASH_AT);
    }
    let mut driver = ChaosDriver::new(builder.build())
        .with_checkpoint_every(E26_CHECKPOINT_EVERY)
        .with_store(StoreConfig {
            envelope,
            ..StoreConfig::default()
        });
    run_with_chaos(
        &mut mgr,
        &mut src,
        SimDuration::from_secs(E26_RUN_SECS),
        &mut driver,
    );
    let events = trace.events();
    let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;
    E26Variant {
        variant,
        sla_violations: e26_sla_violations(&mgr),
        completed: mgr.report().completed,
        recovery: driver.last_recovery(),
        checkpoint_rejected: count("checkpoint_rejected"),
        checkpoint_fallback: count("checkpoint_fallback"),
        cold_restarts: driver.cold_restarts(),
        generations: driver.store().map_or(0, |s| s.generations()),
    }
}

/// Run E26: damage the cadence checkpoint at rest, crash the controller,
/// and compare envelope-verified fallback against the blind ablation and
/// the uninterrupted baseline.
pub fn e26_corrupted_checkpoint(seed: u64) -> E26Result {
    E26Result {
        seed,
        corrupt_at_cycle: E26_CORRUPT_AT,
        crash_at_cycle: E26_CRASH_AT,
        checkpoint_every: E26_CHECKPOINT_EVERY,
        violation_bound: E26_VIOLATION_BOUND,
        variants: vec![
            e26_arm("uninterrupted", seed, false, true),
            e26_arm("envelope-fallback", seed, true, true),
            e26_arm("blind-restore", seed, true, false),
        ],
    }
}

impl E26Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E26 — checkpoint truncated at cycle {}, crash at cycle {} (cadence {}, seed {})\n  arm                  sla viol.   completed   rejected/fallback   cold   readopt/requeue/orphans\n",
            self.corrupt_at_cycle, self.crash_at_cycle, self.checkpoint_every, self.seed
        );
        for v in &self.variants {
            let rec = v.recovery.map_or("-".to_string(), |r| {
                format!("{}/{}/{}", r.readopted, r.requeued, r.orphans_killed)
            });
            out.push_str(&format!(
                "  {:<18}   {:>9}   {:>9}   {:>17}   {:>4}   {}\n",
                v.variant,
                v.sla_violations,
                v.completed,
                format!("{}/{}", v.checkpoint_rejected, v.checkpoint_fallback),
                v.cold_restarts,
                rec
            ));
        }
        out.push_str(
            "  the envelope rejects the damaged generation and falls back one cadence\n  point; the blind store restores nothing and restarts cold\n",
        );
        out
    }
}

/// E27 run length, seconds: arrivals stop at the cutoff so every
/// surviving request can drain before the deadline.
const E27_RUN_SECS: u64 = 10;
/// E27 arrival cutoff, seconds (every scheduled fault window closes by
/// 4 s as well).
const E27_CUTOFF_SECS: u64 = 4;
/// E27 canonical OLTP arrival rate, queries/second.
const E27_OLTP_RATE: f64 = 2_000.0;
/// E27 canonical BI arrival rate, queries/second. Sub-millisecond OLTP
/// alone leaves the controllers empty at any crash instant; ~300k-row
/// scans (tens of milliseconds each) keep a standing running set and
/// wait queue resident, so every crash point finds controller-held
/// work — the work an unverified strip image silently loses. The rate
/// is sized so that even when Reroute failover concentrates the whole
/// sweep's scans on the one surviving shard, their aggregate disk
/// demand still drains inside the post-cutoff window.
const E27_BI_RATE: f64 = 12.0;

/// Result of E27.
#[derive(Debug, Clone, Serialize)]
pub struct E27Result {
    /// The base seed of the sweep.
    pub seed: u64,
    /// Schedules the budget admitted (all of them ran).
    pub schedules_run: usize,
    /// Size of the full grid before the budget cut.
    pub grid_size: usize,
    /// Total invariant violations across the sweep — the pinned zero.
    pub violations: usize,
    /// The failing verdicts, if any (each carries its schedule).
    pub failures: Vec<Verdict>,
    /// The known-bad synthetic schedule's violations, as rendered
    /// invariant breaches.
    pub known_bad_violations: Vec<String>,
    /// Faults left after shrinking the known-bad schedule.
    pub known_bad_minimal_faults: usize,
    /// The minimal reproducer, as a seed + schedule literal.
    pub known_bad_reproducer: String,
}

/// The audited source behind the conservation and exactly-once checks:
/// counts every request handed to the cluster and every completion
/// reported back, by id.
struct AuditedSource {
    inner: MixedSource,
    cutoff: SimTime,
    handed_out: u64,
    seen: BTreeMap<RequestId, u32>,
}

impl AuditedSource {
    fn new(seed: u64) -> Self {
        let inner = MixedSource::new()
            .with(Box::new(OltpSource::new(E27_OLTP_RATE, seed)))
            .with(Box::new(
                BiSource::new(E27_BI_RATE, seed ^ 0xb1).with_size(300_000.0, 0.5),
            ));
        AuditedSource {
            inner,
            cutoff: SimTime::ZERO + SimDuration::from_secs(E27_CUTOFF_SECS),
            handed_out: 0,
            seen: BTreeMap::new(),
        }
    }
}

impl Source for AuditedSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        if from >= self.cutoff {
            return Vec::new();
        }
        let reqs = self.inner.poll(from, to.min(self.cutoff));
        self.handed_out += reqs.len() as u64;
        reqs
    }

    fn on_request_completion(&mut self, request: RequestId, _label: &str, _at: SimTime) {
        *self.seen.entry(request).or_insert(0) += 1;
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// An E27 shard. The MPL cap matters: a rejoining shard inherits the
/// whole outage backlog in one burst, and uncapped admission of a
/// hundred-odd queries overcommits the engine's memory and crawls —
/// the sweep found exactly that before the cap was here.
fn e27_shard(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 20_000,
            memory_mb: 1_024,
            ..Default::default()
        })
        .scheduler(Box::new(PriorityScheduler::new(64)))
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::best_effort()),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::best_effort()),
        ])
}

fn e27_cluster(seed: u64) -> Cluster {
    ClusterBuilder::new()
        .shards(2)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(e27_shard))
        .link(LinkConfig {
            delay_secs: 0.02,
            retransmit_secs: 0.5,
            seed: seed ^ 0x27,
            ..LinkConfig::default()
        })
        .build()
        .expect("valid configuration")
}

/// Apply one schedule to a fresh canonical cluster and run it: the
/// adapter between [`wlm_chaos::explore`]'s abstract fault vocabulary
/// and the cluster's concrete APIs.
pub fn e27_run_schedule(schedule: &Schedule) -> RunOutcome {
    let mut cluster = e27_cluster(schedule.seed);
    for fault in &schedule.faults {
        match *fault {
            ScheduleFault::ShardCrash {
                shard,
                at_ds,
                dur_ds,
            } => cluster
                .schedule_outage(
                    shard,
                    ScheduleFault::secs(at_ds),
                    ScheduleFault::secs(dur_ds),
                )
                .expect("grid shard exists"),
            ScheduleFault::LinkLoss {
                shard,
                at_ds,
                dur_ds,
                loss_pct,
            } => {
                let loss_p = f64::from(loss_pct) / 100.0;
                cluster
                    .schedule_net_fault(
                        ScheduleFault::secs(at_ds),
                        NetFault::LinkLoss { shard, loss_p },
                    )
                    .expect("valid fault");
                cluster
                    .schedule_net_fault(
                        ScheduleFault::secs(at_ds + dur_ds),
                        NetFault::LinkLoss { shard, loss_p: 0.0 },
                    )
                    .expect("valid fault");
            }
            ScheduleFault::Partition {
                shard,
                at_ds,
                dur_ds,
            } => {
                cluster
                    .schedule_net_fault(
                        ScheduleFault::secs(at_ds),
                        NetFault::Partition {
                            shard,
                            active: true,
                        },
                    )
                    .expect("valid fault");
                cluster
                    .schedule_net_fault(
                        ScheduleFault::secs(at_ds + dur_ds),
                        NetFault::Partition {
                            shard,
                            active: false,
                        },
                    )
                    .expect("valid fault");
            }
            ScheduleFault::CorruptCheckpoint { shard, kind } => cluster
                .arm_checkpoint_fault(shard, kind)
                .expect("grid shard exists"),
        }
    }
    let mut src = AuditedSource::new(schedule.seed);
    let report = cluster.run(&mut src, SimDuration::from_secs(E27_RUN_SECS));
    let distinct: u64 = src.seen.len() as u64;
    let duplicates: u64 = src.seen.values().map(|&c| u64::from(c) - 1).sum();
    // Anything still live after the six-second drain is both in flight
    // (accounted — not lost) and permanently stuck (the run gave it
    // every chance to finish).
    let live: u64 = cluster
        .checkpoints()
        .iter()
        .map(|s| {
            (s.wait_queue.len() + s.deferred.len() + s.running.len() + s.suspended.len()) as u64
        })
        .sum();
    let all_alive = (0..2).all(|i| cluster.shard_alive(i).unwrap_or(false));
    RunOutcome {
        issued: src.handed_out,
        completed: distinct,
        killed: report.killed,
        rejected: report.rejected,
        shed: report.shed,
        in_flight: live,
        duplicate_completions: duplicates,
        stuck: live,
        // Every scheduled outage closes by the cutoff; a shard still
        // down at the deadline has blown any recovery bound.
        recovery_ticks: if all_alive { 0 } else { u64::MAX },
    }
}

/// The known-bad synthetic schedule of the E27 pin: a crash whose
/// strip-time checkpoint image is bit-flipped at rest (queued work is
/// unrecoverable by design), padded with three innocent faults the
/// shrinker must strip.
pub fn e27_known_bad(seed: u64) -> Schedule {
    Schedule {
        seed,
        faults: vec![
            ScheduleFault::LinkLoss {
                shard: 0,
                at_ds: 5,
                dur_ds: 20,
                loss_pct: 30,
            },
            ScheduleFault::ShardCrash {
                shard: 0,
                at_ds: 10,
                dur_ds: 20,
            },
            ScheduleFault::Partition {
                shard: 1,
                at_ds: 12,
                dur_ds: 10,
            },
            ScheduleFault::CorruptCheckpoint {
                shard: 0,
                kind: CorruptionKind::BitFlip,
            },
            ScheduleFault::ShardCrash {
                shard: 1,
                at_ds: 25,
                dur_ds: 15,
            },
        ],
    }
}

/// Run E27: sweep the budgeted grid, then catch and shrink the known-bad
/// synthetic schedule.
pub fn e27_fault_sweep(seed: u64, budget: Option<usize>) -> E27Result {
    let cfg = ExploreConfig {
        seed,
        budget: budget.unwrap_or(ExploreConfig::default().budget),
        ..ExploreConfig::default()
    };
    let report = explore(&cfg, e27_run_schedule);

    let is_failing =
        |s: &Schedule| !wlm_chaos::explore::check(&cfg, &e27_run_schedule(s)).is_empty();
    let bad = e27_known_bad(seed);
    let known_bad_violations: Vec<String> =
        wlm_chaos::explore::check(&cfg, &e27_run_schedule(&bad))
            .iter()
            .map(|v| v.to_string())
            .collect();
    let minimal = if known_bad_violations.is_empty() {
        bad.clone()
    } else {
        shrink(&bad, is_failing)
    };
    E27Result {
        seed,
        schedules_run: report.verdicts.len(),
        grid_size: report.grid_size,
        violations: report.violations(),
        failures: report.failures().into_iter().cloned().collect(),
        known_bad_violations,
        known_bad_minimal_faults: minimal.faults.len(),
        known_bad_reproducer: minimal.reproducer(),
    }
}

impl E27Result {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "E27 — fault-space sweep: {} of {} grid schedules run (seed {})\n  invariant violations across the sweep: {}\n",
            self.schedules_run, self.grid_size, self.seed, self.violations
        );
        for f in &self.failures {
            out.push_str(&format!(
                "  FAILING: {} — {:?}\n",
                f.schedule.reproducer(),
                f.violations
            ));
        }
        out.push_str(&format!(
            "  known-bad synthetic schedule: {} (shrunk to {} faults)\n    {}\n",
            self.known_bad_violations
                .first()
                .map_or("NOT CAUGHT", |v| v.as_str()),
            self.known_bad_minimal_faults,
            self.known_bad_reproducer
        ));
        out.push_str(
            "  the grid stays inside the write protocol's guarantee (torn writes are\n  caught); at-rest damage of a crash-time image loses work — and the\n  conservation invariant catches exactly that\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e26_fallback_bounds_violations_and_blind_fails_verification() {
        let r = e26_corrupted_checkpoint(7);
        let [unint, envelope, blind] = &r.variants[..] else {
            panic!("three arms expected");
        };
        assert!(unint.recovery.is_none());
        assert_eq!(unint.checkpoint_rejected, 0);

        // The envelope arm rejects the damaged generation and falls back
        // one cadence point — to the 1250-cycle checkpoint.
        let rec = envelope.recovery.expect("the crash recovered");
        assert_eq!(envelope.checkpoint_rejected, 1, "one generation rejected");
        assert_eq!(envelope.checkpoint_fallback, 1, "one fallback event");
        assert_eq!(envelope.cold_restarts, 0);
        assert_eq!(
            rec.from_cycle,
            E26_CORRUPT_AT - E26_CHECKPOINT_EVERY,
            "fallback lands on the previous cadence point"
        );
        assert!(rec.readopted > 0, "the fallback still re-adopts live work");

        // The blind ablation cannot tell damage from truth: the newest
        // raw image fails to parse and the controller restarts cold.
        assert_eq!(blind.cold_restarts, 1, "blind restore fails verification");
        let blind_rec = blind.recovery.expect("the crash recovered");
        assert_eq!(blind_rec.readopted, 0, "a cold restart re-adopts nothing");
        assert!(
            blind.completed < envelope.completed,
            "cold books forget the pre-crash run: {} vs {}",
            blind.completed,
            envelope.completed
        );

        // The pinned E26 bound.
        assert!(
            envelope.sla_violations <= unint.sla_violations + E26_VIOLATION_BOUND,
            "fallback {} vs uninterrupted {} (+{} allowed)",
            envelope.sla_violations,
            unint.sla_violations,
            E26_VIOLATION_BOUND
        );
    }

    #[test]
    fn e27_sweep_is_clean_and_the_known_bad_schedule_shrinks() {
        let r = e27_fault_sweep(7, None);
        assert_eq!(r.schedules_run, 36, "the pinned claim covers the full grid");
        assert_eq!(r.grid_size, 36);
        assert_eq!(r.violations, 0, "failures: {:?}", r.failures);

        assert!(
            r.known_bad_violations
                .iter()
                .any(|v| v.contains("work lost")),
            "the conservation invariant must catch the strip-image loss: {:?}",
            r.known_bad_violations
        );
        assert_eq!(
            r.known_bad_minimal_faults, 2,
            "shrinking must strip the three innocent faults: {}",
            r.known_bad_reproducer
        );
        assert!(
            r.known_bad_reproducer.contains("ShardCrash")
                && r.known_bad_reproducer.contains("CorruptCheckpoint"),
            "{}",
            r.known_bad_reproducer
        );
    }

    #[test]
    fn e26_and_e27_are_deterministic_per_seed() {
        let a = serde_json::to_string(&e27_fault_sweep(3, Some(6))).unwrap();
        let b = serde_json::to_string(&e27_fault_sweep(3, Some(6))).unwrap();
        assert_eq!(a, b);
    }
}
