//! The typed JSON envelope every experiment's `--json` output is wrapped
//! in.
//!
//! One schema covers E1–E23, the ablations and the figures job: an
//! [`Envelope`] carries the experiment id, the seed, the full harness
//! [`Flags`], and the experiment's own serialized result. Every field is
//! always present (unset flags serialize as `null`), so two runs with the
//! same seed and flags are byte-comparable line by line and downstream
//! `jq` filters never branch on field existence. The schema-stability test
//! at the bottom pins the exact field set; extending it is a deliberate,
//! reviewed act.

use serde::Serialize;

/// Harness flags echoed into every envelope, unset ones as `null`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Flags {
    /// `--trace`: decision-event trace lines follow each envelope.
    pub trace: bool,
    /// `--jobs N`: worker-thread override (`null` = available cores).
    pub jobs: Option<usize>,
    /// `--crash-at N`: E18's crash cycle (`null` = experiment default).
    pub crash_at: Option<u64>,
    /// `--checkpoint-every N`: E18's checkpoint cadence (`null` =
    /// experiment default).
    pub checkpoint_every: Option<u64>,
    /// `--severity F`: E22's single gray-severity override (`null` =
    /// the experiment's built-in severity sweep).
    pub severity: Option<f64>,
    /// `--budget N`: E27's schedule budget (`null` = the explorer's
    /// default, which admits the whole grid).
    pub budget: Option<usize>,
}

/// One experiment's machine-readable output: exactly one JSON line under
/// `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct Envelope {
    /// Experiment id (`e1` … `e23`, `a1` … `a3`, `figures`).
    pub experiment: &'static str,
    /// The seed the seeded experiments ran under (echoed for all, so the
    /// stream is diffable without knowing which experiments consume it).
    pub seed: u64,
    /// The harness flags the run was invoked with.
    pub flags: Flags,
    /// The experiment's own result, serialized by its result type.
    pub results: serde_json::Value,
}

impl Envelope {
    /// The envelope as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("envelopes always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schema every consumer scripts against: field names, order and
    /// null-ness of unset flags. If this test moved, a downstream `jq`
    /// pipeline somewhere broke.
    #[test]
    fn envelope_schema_is_stable() {
        let env = Envelope {
            experiment: "e20",
            seed: 0x5eed,
            flags: Flags::default(),
            results: serde_json::json!({"rows": []}),
        };
        assert_eq!(
            env.to_json_line(),
            r#"{"experiment":"e20","seed":24301,"flags":{"trace":false,"jobs":null,"crash_at":null,"checkpoint_every":null,"severity":null,"budget":null},"results":{"rows":[]}}"#
        );

        let env = Envelope {
            experiment: "e18",
            seed: 7,
            flags: Flags {
                trace: true,
                jobs: Some(4),
                crash_at: Some(1_600),
                checkpoint_every: Some(250),
                severity: Some(40.0),
                budget: Some(12),
            },
            results: serde_json::Value::Null,
        };
        assert_eq!(
            env.to_json_line(),
            r#"{"experiment":"e18","seed":7,"flags":{"trace":true,"jobs":4,"crash_at":1600,"checkpoint_every":250,"severity":40.0,"budget":12},"results":null}"#
        );
    }

    /// Same envelope, same bytes — the property the CI byte-compare of two
    /// same-seed runs rests on.
    #[test]
    fn serialization_is_deterministic() {
        let make = || Envelope {
            experiment: "e21",
            seed: 42,
            flags: Flags {
                jobs: Some(2),
                ..Flags::default()
            },
            results: serde_json::json!({"b": 1, "a": [1.5, 2.25]}),
        };
        assert_eq!(make().to_json_line(), make().to_json_line());
    }
}
