//! # wlm-bench — the experiment harness
//!
//! Regenerates every table and figure of the taxonomy paper (Figure 1,
//! Tables 1–5 — printed directly from the technique registry and facility
//! emulations) and runs the quantitative experiments E1–E25 of DESIGN.md
//! that validate each behavioural claim the paper makes about the surveyed
//! techniques. EXPERIMENTS.md records the paper-claim ↔ measured-shape
//! correspondence.
//!
//! Everything here is deterministic given the seeds baked into each
//! experiment, so reruns reproduce the recorded numbers exactly. With
//! `--json`, every experiment's output is wrapped in the one stable
//! [`envelope::Envelope`] schema.

pub mod envelope;
pub mod exp;

pub use envelope::{Envelope, Flags};
pub use exp::*;
