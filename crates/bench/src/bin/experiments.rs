//! The experiment harness binary: regenerates every table and figure of the
//! paper and runs the quantitative experiments E1–E25.
//!
//! Usage:
//!   experiments                # everything
//!   experiments figures        # only Figure 1 and Tables 1–5
//!   experiments e1 e5 e9       # selected experiments
//!   experiments --json e1      # machine-readable output (JSON lines only)
//!   experiments --trace e1     # append the decision-event trace as JSON lines
//!   experiments --jobs 4       # worker threads (default: available cores)
//!   experiments --seed 7 e16   # seed for the seeded experiments (E16–E25)
//!   experiments --crash-at 150 --checkpoint-every 25 e18
//!                              # E18 crash cycle and checkpoint cadence
//!   experiments --severity 40 e22
//!                              # E22 single gray-severity override
//!   experiments --budget 12 e27
//!                              # E27 fault-space sweep schedule budget
//!
//! Experiments are independent, so they run on a pool of worker threads;
//! output is printed in submission order regardless of completion order, so
//! runs are reproducible byte for byte. With `--json` the binary emits
//! *only* JSON lines — one typed [`wlm_bench::Envelope`]
//! (`{"experiment": ..., "seed": ..., "flags": ..., "results": ...}`) per
//! experiment — so the stream can be piped straight into `jq`, and one
//! schema covers E1–E25 (`wlm_bench::envelope` pins it with a test).
//! The seed (default `0x5eed`) feeds the experiments that take one; it is
//! echoed in every envelope — alongside the full flag set, unset flags as
//! `null` — so same-flag runs can be diffed byte for byte. With
//! `--trace` each experiment installs a thread-local event recorder; every
//! manager the experiment builds publishes its decision events
//! ([`wlm_core::events::WlmEvent`]) there, and the buffer is dumped after
//! the result as `{"experiment": ..., "event": ...}` lines.

use std::fmt::Write as _;
use wlm_bench::exp;
use wlm_core::registry::{builtin_registry, TABLE5_TECHNIQUES};
use wlm_core::taxonomy::render_table1;
use wlm_systems::table4::{render_table4, Facility};
use wlm_systems::{Db2WorkloadManager, ResourceGovernor, TeradataAsm};

/// Figure 1 and Tables 1–5, rendered to a string (kept off stdout so
/// `--json` stays machine-readable).
fn figures_text() -> String {
    let registry = builtin_registry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 1 — Taxonomy of Workload Management Techniques for DBMSs\n"
    );
    let _ = writeln!(out, "{}", registry.render_figure1());
    let _ = writeln!(out, "{}", render_table1());
    let _ = writeln!(out, "{}", registry.render_table2());
    let _ = writeln!(out, "{}", registry.render_table3());
    let rows = [
        Db2WorkloadManager::example().table4_row(),
        ResourceGovernor::example().table4_row(),
        TeradataAsm::example().table4_row(),
    ];
    let _ = writeln!(out, "{}", render_table4(&rows));
    let _ = writeln!(out, "{}", registry.render_table5(&TABLE5_TECHNIQUES));
    out
}

/// A runnable unit: produces the JSON value and the rendered text of one
/// experiment.
type JobFn = Box<dyn Fn() -> (serde_json::Value, String) + Send + Sync>;

struct Job {
    id: &'static str,
    run: JobFn,
}

/// What one worker hands back to the printer.
struct JobOutput {
    value: serde_json::Value,
    rendered: String,
    trace: Vec<serde_json::Value>,
}

/// Run one job, recording its decision events when `trace` is set. The
/// recorder is installed thread-locally, so every [`wlm_core`] manager the
/// job constructs on this thread subscribes to it automatically.
fn run_job(job: &Job, trace: bool) -> JobOutput {
    let recorder = trace.then(|| wlm_core::events::install_thread_trace(65_536));
    let (value, rendered) = (job.run)();
    let trace_events = recorder
        .map(|r| r.take())
        .unwrap_or_default()
        .iter()
        .map(|e| serde_json::to_value(e).expect("events serialize"))
        .collect();
    wlm_core::events::clear_thread_trace();
    JobOutput {
        value,
        rendered,
        trace: trace_events,
    }
}

/// Run the jobs on up to `workers` scoped threads, returning outputs in
/// submission order.
fn run_parallel(jobs: &[Job], workers: usize, trace: bool) -> Vec<JobOutput> {
    let mut outputs = Vec::with_capacity(jobs.len());
    for wave in jobs.chunks(workers.max(1)) {
        let wave_outputs = std::thread::scope(|s| {
            let handles: Vec<_> = wave
                .iter()
                .map(|job| s.spawn(move || run_job(job, trace)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("experiment worker panicked"))
                .collect::<Vec<_>>()
        });
        outputs.extend(wave_outputs);
    }
    outputs
}

fn main() {
    // Default seed for the seeded experiments when `--seed` is absent.
    const DEFAULT_SEED: u64 = 0x5eed;

    let mut json = false;
    let mut trace = false;
    let mut workers: Option<usize> = None;
    let mut seed: u64 = DEFAULT_SEED;
    let mut crash_at: Option<u64> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut severity: Option<f64> = None;
    let mut budget: Option<usize> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--trace" => trace = true,
            "--jobs" => workers = args.next().and_then(|v| v.parse().ok()),
            other if other.starts_with("--jobs=") => {
                workers = other["--jobs=".len()..].parse().ok();
            }
            "--seed" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            other if other.starts_with("--seed=") => {
                if let Ok(v) = other["--seed=".len()..].parse() {
                    seed = v;
                }
            }
            "--crash-at" => crash_at = args.next().and_then(|v| v.parse().ok()),
            other if other.starts_with("--crash-at=") => {
                crash_at = other["--crash-at=".len()..].parse().ok();
            }
            "--checkpoint-every" => {
                checkpoint_every = args.next().and_then(|v| v.parse().ok());
            }
            other if other.starts_with("--checkpoint-every=") => {
                checkpoint_every = other["--checkpoint-every=".len()..].parse().ok();
            }
            "--severity" => severity = args.next().and_then(|v| v.parse().ok()),
            other if other.starts_with("--severity=") => {
                severity = other["--severity=".len()..].parse().ok();
            }
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()),
            other if other.starts_with("--budget=") => {
                budget = other["--budget=".len()..].parse().ok();
            }
            other => selected.push(other.to_string()),
        }
    }
    let want = |id: &str| {
        selected.is_empty()
            || selected.iter().any(|s| s == id)
            || selected.iter().any(|s| s == "all")
    };

    let mut jobs: Vec<Job> = Vec::new();
    if want("figures") || want("fig1") {
        jobs.push(Job {
            id: "figures",
            run: Box::new(|| {
                let text = figures_text();
                (serde_json::json!({ "text": text }), text)
            }),
        });
    }

    macro_rules! job {
        ($id:literal, $f:path) => {
            if want($id) {
                jobs.push(Job {
                    id: $id,
                    run: Box::new(|| {
                        let result = $f();
                        (
                            serde_json::to_value(&result).expect("serializable"),
                            result.render(),
                        )
                    }),
                });
            }
        };
    }

    job!("e1", exp::e1_mpl_curve);
    job!("e2", exp::e2_thresholds);
    job!("e3", exp::e3_dynamic_mpl);
    job!("e4", exp::e4_throttling);
    job!("e5", exp::e5_suspend);
    job!("e6", exp::e6_schedulers);
    job!("e7", exp::e7_economic);
    job!("e8", exp::e8_prediction);
    job!("e9", exp::e9_facilities);
    job!("e10", exp::e10_mape);
    job!("e11", exp::e11_restructuring);
    job!("e12", exp::e12_kill_precision);
    job!("e13", exp::e13_classifier);
    job!("e14", exp::e14_metric_admission);
    job!("e15", exp::e15_open_vs_closed);

    // Like `job!`, for experiments parameterized by the run seed.
    macro_rules! seeded_job {
        ($id:literal, $f:path) => {
            if want($id) {
                jobs.push(Job {
                    id: $id,
                    run: Box::new(move || {
                        let result = $f(seed);
                        (
                            serde_json::to_value(&result).expect("serializable"),
                            result.render(),
                        )
                    }),
                });
            }
        };
    }

    seeded_job!("e16", exp::e16_resilience_ablation);
    seeded_job!("e17", exp::e17_fault_recovery);

    // E18 also takes the crash cycle and checkpoint cadence flags.
    if want("e18") {
        jobs.push(Job {
            id: "e18",
            run: Box::new(move || {
                let result = exp::e18_crash_recovery(seed, crash_at, checkpoint_every);
                (
                    serde_json::to_value(&result).expect("serializable"),
                    result.render(),
                )
            }),
        });
    }
    seeded_job!("e19", exp::e19_poison_quarantine);
    seeded_job!("e20", exp::e20_shard_scaling);
    seeded_job!("e21", exp::e21_routing_ablation);

    // E22 also takes the gray-severity override flag.
    if want("e22") {
        jobs.push(Job {
            id: "e22",
            run: Box::new(move || {
                let result = exp::e22_gray_failure(seed, severity);
                (
                    serde_json::to_value(&result).expect("serializable"),
                    result.render(),
                )
            }),
        });
    }
    seeded_job!("e23", exp::e23_partition_heal);
    seeded_job!("e24", exp::e24_elastic_flash_crowd);
    seeded_job!("e25", exp::e25_retry_storm);
    seeded_job!("e26", exp::e26_corrupted_checkpoint);

    // E27 also takes the schedule-budget flag.
    if want("e27") {
        jobs.push(Job {
            id: "e27",
            run: Box::new(move || {
                let result = exp::e27_fault_sweep(seed, budget);
                (
                    serde_json::to_value(&result).expect("serializable"),
                    result.render(),
                )
            }),
        });
    }

    job!("a1", exp::a1_restructure_pieces);
    job!("a2", exp::a2_checkpoint_interval);
    job!("a3", exp::a3_mape_period);

    let flags = wlm_bench::Flags {
        trace,
        jobs: workers,
        crash_at,
        checkpoint_every,
        severity,
        budget,
    };
    let workers = workers
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(1)
        .min(jobs.len().max(1));

    let outputs = run_parallel(&jobs, workers, trace);
    for (job, out) in jobs.iter().zip(outputs) {
        if json {
            let envelope = wlm_bench::Envelope {
                experiment: job.id,
                seed,
                flags: flags.clone(),
                results: out.value,
            };
            println!("{}", envelope.to_json_line());
        } else {
            println!("{}", out.rendered);
        }
        for event in out.trace {
            println!(
                "{}",
                serde_json::json!({ "experiment": job.id, "event": event })
            );
        }
    }
}
