//! The experiment harness binary: regenerates every table and figure of the
//! paper and runs the quantitative experiments E1–E14.
//!
//! Usage:
//!   experiments            # everything
//!   experiments figures    # only Figure 1 and Tables 1–5
//!   experiments e1 e5 e9   # selected experiments
//!   experiments --json e1  # machine-readable output

use wlm_bench::exp;
use wlm_core::registry::{builtin_registry, TABLE5_TECHNIQUES};
use wlm_core::taxonomy::render_table1;
use wlm_systems::table4::{render_table4, Facility};
use wlm_systems::{Db2WorkloadManager, ResourceGovernor, TeradataAsm};

fn figures() {
    let registry = builtin_registry();
    println!("FIGURE 1 — Taxonomy of Workload Management Techniques for DBMSs\n");
    println!("{}", registry.render_figure1());
    println!("{}", render_table1());
    println!("{}", registry.render_table2());
    println!("{}", registry.render_table3());
    let rows = [
        Db2WorkloadManager::example().table4_row(),
        ResourceGovernor::example().table4_row(),
        TeradataAsm::example().table4_row(),
    ];
    println!("{}", render_table4(&rows));
    println!("{}", registry.render_table5(&TABLE5_TECHNIQUES));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--json")
        .map(String::as_str)
        .collect();
    let want =
        |id: &str| selected.is_empty() || selected.contains(&id) || selected.contains(&"all");

    if want("figures") || want("fig1") {
        figures();
    }

    macro_rules! run {
        ($id:literal, $f:path) => {
            if want($id) {
                let result = $f();
                if json {
                    println!(
                        "{{\"experiment\":\"{}\",\"result\":{}}}",
                        $id,
                        serde_json::to_string(&result).expect("serializable")
                    );
                } else {
                    println!("{}", result.render());
                }
            }
        };
    }

    run!("e1", exp::e1_mpl_curve);
    run!("e2", exp::e2_thresholds);
    run!("e3", exp::e3_dynamic_mpl);
    run!("e4", exp::e4_throttling);
    run!("e5", exp::e5_suspend);
    run!("e6", exp::e6_schedulers);
    run!("e7", exp::e7_economic);
    run!("e8", exp::e8_prediction);
    run!("e9", exp::e9_facilities);
    run!("e10", exp::e10_mape);
    run!("e11", exp::e11_restructuring);
    run!("e12", exp::e12_kill_precision);
    run!("e13", exp::e13_classifier);
    run!("e14", exp::e14_metric_admission);
    run!("e15", exp::e15_open_vs_closed);
    run!("a1", exp::a1_restructure_pieces);
    run!("a2", exp::a2_checkpoint_interval);
    run!("a3", exp::a3_mape_period);
}
