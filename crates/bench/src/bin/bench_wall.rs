//! Wall-clock throughput harness for the two canonical configurations.
//!
//! Runs a fixed, seeded workload against (1) a single workload-managed
//! engine and (2) an 8-shard cluster under the global front-end, timing
//! each with the host's monotonic clock, and writes one JSON report —
//! `BENCH_8.json` in the working directory — plus a human-readable line
//! per configuration on stdout.
//!
//! The *simulated* side of each run is deterministic: same seed, same
//! completions, same tick count, every time. Only the two wall-clock
//! rates (`sim_ticks_per_sec`, `completed_per_wall_sec`) vary with the
//! host, which is the point — they are the regression needle for "did
//! the simulator get slower", while the deterministic fields pin *what*
//! was simulated. The report file is gitignored; compare it across
//! checkouts, don't commit it.
//!
//! Usage:
//!   bench_wall                 # both configurations, default seed
//!   bench_wall --seed 7        # override the seed
//!   bench_wall --secs 60       # override the simulated duration

use std::time::Instant;

use serde::Serialize;
use wlm_cluster::{ClusterBuilder, RoutingPolicy};
use wlm_core::api::WlmBuilder;
use wlm_core::policy::WorkloadPolicy;
use wlm_dbsim::engine::EngineConfig;
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::OltpSource;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// Default simulated duration per configuration, seconds.
const DEFAULT_SIM_SECS: u64 = 30;
/// Default seed for the arrival streams.
const DEFAULT_SEED: u64 = 0x5eed;
/// OLTP arrivals per second offered to each engine (weak scaling: the
/// 8-shard run offers 8× the single-engine rate).
const RATE_PER_ENGINE: f64 = 25.0;
/// Partitions the cluster key space is split into.
const PARTITIONS: u64 = 64;

/// One configuration's timed outcome.
#[derive(Debug, Clone, Serialize)]
struct WallRow {
    /// Configuration name (`single-engine`, `cluster-8`).
    config: &'static str,
    /// Seed behind the arrival stream.
    seed: u64,
    /// Simulated seconds covered.
    sim_secs: f64,
    /// Control quanta stepped (per shard, times shards).
    sim_ticks: u64,
    /// Requests completed — deterministic per seed.
    completed: u64,
    /// Wall-clock seconds the run took on this host.
    wall_secs: f64,
    /// Simulated control quanta per wall-clock second.
    sim_ticks_per_sec: f64,
    /// Completed requests per wall-clock second.
    completed_per_wall_sec: f64,
}

/// The whole report: both configurations, one file.
#[derive(Debug, Clone, Serialize)]
struct WallReport {
    rows: Vec<WallRow>,
}

fn bench_engine() -> EngineConfig {
    EngineConfig {
        cores: 2,
        disk_pages_per_sec: 10_000,
        memory_mb: 2_048,
        ..Default::default()
    }
}

fn bench_builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(bench_engine())
        .cost_model(CostModel::oracle())
        .policy(
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 2.0)),
        )
}

fn run_single(seed: u64, sim_secs: u64) -> WallRow {
    let mut mgr = bench_builder().build().expect("valid configuration");
    let quantum_us = bench_engine().quantum.as_micros();
    let mut src = OltpSource::new(RATE_PER_ENGINE, seed);
    let started = Instant::now();
    let report = mgr.run(&mut src, SimDuration::from_secs(sim_secs));
    let wall_secs = started.elapsed().as_secs_f64();
    row(
        "single-engine",
        seed,
        sim_secs,
        sim_secs * 1_000_000 / quantum_us,
        report.completed,
        wall_secs,
    )
}

fn run_cluster8(seed: u64, sim_secs: u64) -> WallRow {
    let mut cluster = ClusterBuilder::new()
        .shards(8)
        .routing(RoutingPolicy::Affinity)
        .shard_builder(Box::new(|_shard| bench_builder()))
        .build()
        .expect("valid configuration");
    let quantum_us = bench_engine().quantum.as_micros();
    let mut src = OltpSource::new(RATE_PER_ENGINE * 8.0, seed).with_partitions(PARTITIONS);
    let started = Instant::now();
    let report = cluster.run(&mut src, SimDuration::from_secs(sim_secs));
    let wall_secs = started.elapsed().as_secs_f64();
    row(
        "cluster-8",
        seed,
        sim_secs,
        8 * sim_secs * 1_000_000 / quantum_us,
        report.completed,
        wall_secs,
    )
}

fn row(
    config: &'static str,
    seed: u64,
    sim_secs: u64,
    sim_ticks: u64,
    completed: u64,
    wall_secs: f64,
) -> WallRow {
    let denom = wall_secs.max(f64::EPSILON);
    WallRow {
        config,
        seed,
        sim_secs: sim_secs as f64,
        sim_ticks,
        completed,
        wall_secs,
        sim_ticks_per_sec: sim_ticks as f64 / denom,
        completed_per_wall_sec: completed as f64 / denom,
    }
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut sim_secs = DEFAULT_SIM_SECS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            other if other.starts_with("--seed=") => {
                if let Ok(v) = other["--seed=".len()..].parse() {
                    seed = v;
                }
            }
            "--secs" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    sim_secs = v;
                }
            }
            other if other.starts_with("--secs=") => {
                if let Ok(v) = other["--secs=".len()..].parse() {
                    sim_secs = v;
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = WallReport {
        rows: vec![run_single(seed, sim_secs), run_cluster8(seed, sim_secs)],
    };
    for r in &report.rows {
        println!(
            "{:<14}  {:>7} ticks  {:>6} done  {:>7.3}s wall  {:>10.0} ticks/s  {:>8.0} done/s",
            r.config,
            r.sim_ticks,
            r.completed,
            r.wall_secs,
            r.sim_ticks_per_sec,
            r.completed_per_wall_sec
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_8.json", json).expect("write BENCH_8.json");
    println!("wrote BENCH_8.json");
}
