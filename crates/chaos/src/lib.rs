//! # wlm-chaos — deterministic fault injection for workload-management runs
//!
//! Workload management earns its keep when the system is degraded: a disk
//! losing bandwidth, cores going offline, a flash crowd tripling arrivals,
//! a lock storm freezing the hot keys. This crate turns those conditions
//! into *scheduled, seeded, replayable* experiments:
//!
//! * [`plan::FaultPlanBuilder`] builds a [`plan::FaultPlan`] — a
//!   time-sorted schedule of fault windows (IO collapse, core loss,
//!   buffer-pool shrink, memory pressure, lock storms, flash crowds,
//!   optimizer misestimation), each paired with its recovery event;
//! * [`driver::ChaosDriver`] replays the plan against a live
//!   [`WorkloadManager`](wlm_core::manager::WorkloadManager) run, applying
//!   engine faults between control cycles and steering a
//!   [`SurgeSource`](wlm_workload::generators::SurgeSource) for arrival
//!   surges;
//! * [`driver::run_with_chaos`] is the drop-in faulted counterpart of
//!   `WorkloadManager::run`;
//! * control-plane faults ([`plan::ControlFault`]) crash the controller
//!   (restored from the driver's cadence checkpoint, see
//!   [`driver::ChaosDriver::with_checkpoint_every`]) or stall it for a
//!   window of skipped cycles while the engine keeps executing.
//!
//! Everything is deterministic per seed: the same plan against the same
//! manager and sources produces byte-identical reports, which is what
//! makes resilience ablations (`wlm-bench` experiments E16/E17) and the
//! repo's determinism tests possible.
//!
//! ## Quick example
//!
//! ```
//! use wlm_chaos::{ChaosDriver, FaultPlanBuilder, run_with_chaos};
//! use wlm_core::api::WlmBuilder;
//! use wlm_dbsim::time::SimDuration;
//! use wlm_workload::generators::OltpSource;
//!
//! let plan = FaultPlanBuilder::new(42)
//!     .io_spike(5.0, 3.0, 0.25)    // quarter disk bandwidth for 3 s
//!     .core_loss(6.0, 2.0, 2)      // two cores offline for 2 s
//!     .build();
//! let mut driver = ChaosDriver::new(plan);
//! let mut mgr = WlmBuilder::new().build().expect("valid configuration");
//! let mut src = OltpSource::new(20.0, 1);
//! let report = run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(10), &mut driver);
//! assert!(driver.done() && report.completed > 0);
//! ```

pub mod driver;
pub mod explore;
pub mod plan;

pub use driver::{run_with_chaos, ChaosDriver};
pub use explore::{
    explore, shrink, ExploreConfig, ExploreReport, RunOutcome, Schedule, ScheduleFault, Verdict,
    Violation,
};
pub use plan::{
    ControlFault, FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder, NetFault, NetFaultEvent,
};
