//! # Deterministic fault-space exploration (Jepsen-lite)
//!
//! The resilience experiments E16–E25 pin behaviour at *hand-picked*
//! fault schedules; this module sweeps a *budgeted grid* of them. An
//! [`Explorer`] enumerates [`Schedule`]s — combinations of controller
//! crash points, link-loss and partition windows, shard kills, and
//! checkpoint corruption — runs a short canonical workload per schedule
//! through a caller-supplied run function, and checks four machine
//! invariants on each [`RunOutcome`]:
//!
//! 1. **exactly-once** — no request completes twice;
//! 2. **work conservation** — every issued request is accounted for
//!    (completed, killed, rejected, shed, or still in flight); a
//!    shortfall means a fault *lost* work silently;
//! 3. **bounded recovery** — no shard stays unavailable longer than
//!    its scheduled outage plus a pinned grace bound;
//! 4. **no stuck requests** — work issued before the drain horizon must
//!    finish by the end of the run.
//!
//! A failing schedule is [shrunk](shrink) by greedy delta-debugging to a
//! minimal reproducer and printed as a seed + schedule literal, so a
//! regression found by the sweep becomes a one-line deterministic test.
//!
//! The run function is a closure rather than a hard-wired target because
//! `wlm-cluster` depends on this crate: the cluster-driving adapter
//! lives with the experiments (`wlm-bench`) and the workspace tests.

use serde::{Deserialize, Serialize};
use wlm_core::manager::store::CorruptionKind;

/// SplitMix64 step — the repo's standard seed-derivation primitive.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fault in a schedule. Times are deciseconds of simulated time so
/// schedules stay integer-valued, totally ordered, and byte-stable
/// under serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "fault", rename_all = "snake_case")]
pub enum ScheduleFault {
    /// Crash `shard`'s controller at `at_ds`, down for `dur_ds`.
    ShardCrash {
        /// The shard that goes down.
        shard: usize,
        /// Crash time, deciseconds.
        at_ds: u32,
        /// Outage length, deciseconds.
        dur_ds: u32,
    },
    /// Degrade the link toward `shard`: drop each message with
    /// probability `loss_pct`/100 for the window.
    LinkLoss {
        /// The shard whose link degrades.
        shard: usize,
        /// Window start, deciseconds.
        at_ds: u32,
        /// Window length, deciseconds.
        dur_ds: u32,
        /// Per-message loss probability, percent.
        loss_pct: u32,
    },
    /// Fully partition `shard` from the front-end for the window.
    Partition {
        /// The partitioned shard.
        shard: usize,
        /// Window start, deciseconds.
        at_ds: u32,
        /// Window length, deciseconds.
        dur_ds: u32,
    },
    /// Arm a one-shot media fault against `shard`'s next sealed
    /// checkpoint write (crash freeze, reroute strip, or retirement).
    CorruptCheckpoint {
        /// The shard whose checkpoint medium is damaged.
        shard: usize,
        /// The damage applied.
        kind: CorruptionKind,
    },
}

impl ScheduleFault {
    /// Deciseconds → seconds, for driving wall-clock-style cluster APIs.
    pub fn secs(ds: u32) -> f64 {
        f64::from(ds) / 10.0
    }
}

/// One point in the fault space: a workload seed plus the fault list
/// applied to the canonical run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Seed for the canonical workload (and any stochastic fault, e.g.
    /// per-message link loss) of this run.
    pub seed: u64,
    /// The faults, in enumeration order.
    pub faults: Vec<ScheduleFault>,
}

impl Schedule {
    /// The schedule as a paste-able literal: seed + fault list. This is
    /// the one-line deterministic reproducer a failing sweep prints.
    pub fn reproducer(&self) -> String {
        format!("seed={} faults={:?}", self.seed, self.faults)
    }
}

/// What one canonical run under a schedule actually did, as counted by
/// the caller's run function. All invariants are checked against this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Requests the source issued into the system.
    pub issued: u64,
    /// Requests that completed (each counted once).
    pub completed: u64,
    /// Requests killed by policy (timeouts, admission actions).
    pub killed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests shed or permanently parked with an explicit verdict.
    pub shed: u64,
    /// Requests still queued/running when the run ended (accounted,
    /// just unfinished).
    pub in_flight: u64,
    /// Completions observed for an already-completed request id.
    pub duplicate_completions: u64,
    /// Requests issued before the drain horizon that never finished.
    pub stuck: u64,
    /// Worst ticks any shard stayed unavailable *past* its scheduled
    /// outage window.
    pub recovery_ticks: u64,
}

/// One invariant breach, with the numbers that witnessed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "violation", rename_all = "snake_case")]
pub enum Violation {
    /// A request id completed more than once.
    DuplicateCompletion {
        /// Extra completions observed.
        count: u64,
    },
    /// Issued work that no terminal or in-flight state accounts for.
    WorkLost {
        /// Requests issued.
        issued: u64,
        /// completed + killed + rejected + shed + in_flight.
        accounted: u64,
    },
    /// A shard stayed down longer than its window plus the grace bound.
    RecoveryExceeded {
        /// Observed ticks past the scheduled window.
        ticks: u64,
        /// The configured bound.
        bound: u64,
    },
    /// Requests issued before the drain horizon never finished.
    StuckRequests {
        /// How many.
        count: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateCompletion { count } => {
                write!(f, "exactly-once broken: {count} duplicate completions")
            }
            Violation::WorkLost { issued, accounted } => {
                write!(f, "work lost: {issued} issued, only {accounted} accounted")
            }
            Violation::RecoveryExceeded { ticks, bound } => {
                write!(
                    f,
                    "recovery exceeded: {ticks} ticks past window (bound {bound})"
                )
            }
            Violation::StuckRequests { count } => {
                write!(f, "{count} requests permanently stuck")
            }
        }
    }
}

/// The explorer's verdict on one schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// The schedule that ran.
    pub schedule: Schedule,
    /// Every invariant it broke (empty ⇒ pass).
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// Did the schedule hold every invariant?
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The sweep's result: one verdict per schedule run, in enumeration
/// order, plus the budget bookkeeping E27 reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Grid points the budget admitted (and that therefore ran).
    pub verdicts: Vec<Verdict>,
    /// Size of the full grid before the budget cut it down.
    pub grid_size: usize,
}

impl ExploreReport {
    /// Total invariant violations across the sweep.
    pub fn violations(&self) -> usize {
        self.verdicts.iter().map(|v| v.violations.len()).sum()
    }

    /// The failing verdicts, in enumeration order.
    pub fn failures(&self) -> Vec<&Verdict> {
        self.verdicts.iter().filter(|v| !v.pass()).collect()
    }
}

/// Enumeration and invariant bounds for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Base seed; each schedule's workload seed is derived from it.
    pub seed: u64,
    /// Maximum schedules to run (the grid is truncated, never sampled,
    /// so a budget is a deterministic prefix).
    pub budget: usize,
    /// Grace bound for the bounded-recovery invariant, in ticks.
    pub max_recovery_ticks: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 0xC0FFEE,
            budget: 48,
            max_recovery_ticks: 100,
        }
    }
}

/// Check one outcome against the four invariants.
pub fn check(cfg: &ExploreConfig, out: &RunOutcome) -> Vec<Violation> {
    let mut v = Vec::new();
    if out.duplicate_completions > 0 {
        v.push(Violation::DuplicateCompletion {
            count: out.duplicate_completions,
        });
    }
    let accounted = out.completed + out.killed + out.rejected + out.shed + out.in_flight;
    if accounted < out.issued {
        v.push(Violation::WorkLost {
            issued: out.issued,
            accounted,
        });
    }
    if out.recovery_ticks > cfg.max_recovery_ticks {
        v.push(Violation::RecoveryExceeded {
            ticks: out.recovery_ticks,
            bound: cfg.max_recovery_ticks,
        });
    }
    if out.stuck > 0 {
        v.push(Violation::StuckRequests { count: out.stuck });
    }
    v
}

/// The deterministic schedule grid: the cross product of crash points,
/// a second-shard kill, link-degradation windows, and a torn checkpoint
/// write, truncated to the budget. Per-schedule workload seeds are
/// SplitMix64-derived from the base seed and the grid index, so the
/// whole sweep is a pure function of [`ExploreConfig`].
///
/// The corruption axis stays inside the write protocol's guarantee
/// (torn writes are caught by the verify-back); at-rest damage of a
/// single crash-time image is *designed* to fail conservation — that is
/// the known-bad synthetic schedule of the E27 pin, not a grid point.
pub fn enumerate(cfg: &ExploreConfig) -> (Vec<Schedule>, usize) {
    const CRASHES: [Option<ScheduleFault>; 3] = [
        None,
        Some(ScheduleFault::ShardCrash {
            shard: 0,
            at_ds: 10,
            dur_ds: 20,
        }),
        Some(ScheduleFault::ShardCrash {
            shard: 0,
            at_ds: 25,
            dur_ds: 15,
        }),
    ];
    const KILLS: [Option<ScheduleFault>; 2] = [
        None,
        Some(ScheduleFault::ShardCrash {
            shard: 1,
            at_ds: 15,
            dur_ds: 15,
        }),
    ];
    const LINKS: [Option<ScheduleFault>; 3] = [
        None,
        Some(ScheduleFault::LinkLoss {
            shard: 0,
            at_ds: 5,
            dur_ds: 20,
            loss_pct: 30,
        }),
        Some(ScheduleFault::Partition {
            shard: 1,
            at_ds: 12,
            dur_ds: 10,
        }),
    ];
    const CORRUPTIONS: [Option<ScheduleFault>; 2] = [
        None,
        Some(ScheduleFault::CorruptCheckpoint {
            shard: 0,
            kind: CorruptionKind::TornWrite,
        }),
    ];

    let mut schedules = Vec::new();
    let mut idx = 0u64;
    let mut grid = 0usize;
    for crash in CRASHES {
        for kill in KILLS {
            for link in LINKS {
                for corrupt in CORRUPTIONS {
                    grid += 1;
                    if schedules.len() < cfg.budget {
                        let faults = [crash, kill, link, corrupt].into_iter().flatten().collect();
                        schedules.push(Schedule {
                            seed: splitmix64(cfg.seed ^ idx),
                            faults,
                        });
                    }
                    idx += 1;
                }
            }
        }
    }
    (schedules, grid)
}

/// Run the budgeted sweep: enumerate, run each schedule through `run`,
/// check invariants, and return every verdict. Deterministic given a
/// deterministic run function.
pub fn explore<F>(cfg: &ExploreConfig, mut run: F) -> ExploreReport
where
    F: FnMut(&Schedule) -> RunOutcome,
{
    let (schedules, grid_size) = enumerate(cfg);
    let verdicts = schedules
        .into_iter()
        .map(|schedule| {
            let outcome = run(&schedule);
            let violations = check(cfg, &outcome);
            Verdict {
                schedule,
                violations,
            }
        })
        .collect();
    ExploreReport {
        verdicts,
        grid_size,
    }
}

/// Shrink a failing schedule to a minimal reproducer by greedy
/// delta-debugging: repeatedly drop any single fault whose removal
/// keeps the schedule failing, until no single removal does. The result
/// is 1-minimal — every remaining fault is necessary — and the walk
/// order is fixed, so shrinking is deterministic.
///
/// `is_failing` must be a pure function of the schedule (re-running the
/// canonical workload qualifies; anything wall-clock does not).
pub fn shrink<F>(schedule: &Schedule, mut is_failing: F) -> Schedule
where
    F: FnMut(&Schedule) -> bool,
{
    let mut current = schedule.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if is_failing(&candidate) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(s: &Schedule, f: impl Fn(&ScheduleFault) -> bool) -> bool {
        s.faults.iter().any(f)
    }

    /// A stand-in run function: work is lost iff the schedule crashes
    /// shard 0 *and* at-rest-corrupts its checkpoint; everything else
    /// behaves. Pure, so exploration and shrinking are deterministic.
    fn model_run(s: &Schedule) -> RunOutcome {
        let crash0 = has(s, |f| {
            matches!(f, ScheduleFault::ShardCrash { shard: 0, .. })
        });
        let at_rest = has(s, |f| {
            matches!(
                f,
                ScheduleFault::CorruptCheckpoint {
                    kind: CorruptionKind::BitFlip | CorruptionKind::Truncate,
                    ..
                }
            )
        });
        let issued = 100;
        let lost = if crash0 && at_rest { 7 } else { 0 };
        RunOutcome {
            issued,
            completed: issued - lost,
            ..RunOutcome::default()
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_budgeted() {
        let cfg = ExploreConfig::default();
        let (a, grid_a) = enumerate(&cfg);
        let (b, grid_b) = enumerate(&cfg);
        assert_eq!(a, b, "same config must enumerate identically");
        assert_eq!(grid_a, grid_b);
        assert_eq!(grid_a, 36, "3 crashes × 2 kills × 3 links × 2 corruptions");
        assert_eq!(a.len(), 36, "default budget admits the whole grid");

        let (cut, grid) = enumerate(&ExploreConfig { budget: 5, ..cfg });
        assert_eq!(cut.len(), 5, "the budget is a prefix");
        assert_eq!(grid, 36, "the grid size reports the uncut space");
        assert_eq!(cut, a[..5], "the prefix is the same grid walk");

        let (other, _) = enumerate(&ExploreConfig { seed: 1, ..cfg });
        assert_ne!(
            a[0].seed, other[0].seed,
            "the base seed must reach the per-schedule seeds"
        );
        assert_eq!(
            a.iter().map(|s| &s.faults).collect::<Vec<_>>(),
            other.iter().map(|s| &s.faults).collect::<Vec<_>>(),
            "the fault grid itself is seed-independent"
        );
    }

    #[test]
    fn a_clean_model_sweeps_with_zero_violations() {
        let report = explore(&ExploreConfig::default(), model_run);
        assert_eq!(report.verdicts.len(), 36);
        assert_eq!(report.violations(), 0, "{:?}", report.failures());
    }

    #[test]
    fn a_known_bad_schedule_is_caught_and_shrunk_to_its_core() {
        let cfg = ExploreConfig::default();
        // A noisy five-fault schedule whose failure core is the
        // crash + at-rest-corruption pair.
        let bad = Schedule {
            seed: 42,
            faults: vec![
                ScheduleFault::LinkLoss {
                    shard: 0,
                    at_ds: 5,
                    dur_ds: 20,
                    loss_pct: 30,
                },
                ScheduleFault::ShardCrash {
                    shard: 0,
                    at_ds: 10,
                    dur_ds: 20,
                },
                ScheduleFault::Partition {
                    shard: 1,
                    at_ds: 12,
                    dur_ds: 10,
                },
                ScheduleFault::CorruptCheckpoint {
                    shard: 0,
                    kind: CorruptionKind::BitFlip,
                },
                ScheduleFault::ShardCrash {
                    shard: 1,
                    at_ds: 15,
                    dur_ds: 15,
                },
            ],
        };
        let violations = check(&cfg, &model_run(&bad));
        assert!(
            matches!(violations[..], [Violation::WorkLost { .. }]),
            "the sweep must catch the loss: {violations:?}"
        );

        let minimal = shrink(&bad, |s| !check(&cfg, &model_run(s)).is_empty());
        assert_eq!(
            minimal.faults,
            vec![
                ScheduleFault::ShardCrash {
                    shard: 0,
                    at_ds: 10,
                    dur_ds: 20,
                },
                ScheduleFault::CorruptCheckpoint {
                    shard: 0,
                    kind: CorruptionKind::BitFlip,
                },
            ],
            "shrinking must strip the three innocent faults"
        );
        let repro = minimal.reproducer();
        assert!(
            repro.contains("seed=42") && repro.contains("ShardCrash"),
            "the reproducer is a seed + schedule literal: {repro}"
        );
    }

    #[test]
    fn verdicts_serialize_stably() {
        let cfg = ExploreConfig {
            budget: 3,
            ..Default::default()
        };
        let a = serde_json::to_string(&explore(&cfg, model_run)).unwrap();
        let b = serde_json::to_string(&explore(&cfg, model_run)).unwrap();
        assert_eq!(a, b, "the sweep report must be byte-stable");
    }
}
