//! Fault plans: seeded, deterministic schedules of fault and recovery
//! events.
//!
//! A [`FaultPlan`] is built once from a seed and then replayed against a
//! run by a [`ChaosDriver`](crate::driver::ChaosDriver). Every helper on
//! [`FaultPlanBuilder`] schedules a *window*: the fault at its start and
//! the matching recovery at its end, so a plan is self-healing by
//! construction. Optional timing jitter shifts whole windows (never a
//! fault apart from its recovery) by a seeded offset, keeping runs
//! byte-identical per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wlm_core::manager::store::CorruptionKind;
use wlm_dbsim::engine::EngineFault;
use wlm_dbsim::time::SimTime;

/// One schedulable fault (or recovery) action.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// An engine-level fault applied through
    /// [`DbEngine::apply_fault`](wlm_dbsim::engine::DbEngine::apply_fault)
    /// (disk degradation, core loss, buffer-pool shrink, memory
    /// reservation, lock storm). Recovery is the same variant with its
    /// neutral parameter.
    Engine(EngineFault),
    /// Multiply the arrival stream by `factor` via a
    /// [`SurgeHandle`](wlm_workload::generators::SurgeHandle);
    /// `factor: 1.0` ends the crowd.
    FlashCrowd {
        /// Arrival amplification factor.
        factor: f64,
    },
    /// Degrade the optimizer's estimates to log-normal error `sigma`.
    OptimizerSkew {
        /// New estimation-error sigma.
        sigma: f64,
    },
    /// Restore the optimizer's estimation error to its pre-skew level.
    OptimizerRestore,
}

/// A control-plane fault, scheduled by control-cycle index rather than by
/// simulated time (the control plane is what crashes, so its own cycle
/// counter is the natural clock). Timing jitter never applies to these:
/// crash-restart determinism is pinned per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ControlFault {
    /// Crash the controller just before cycle `at_cycle`: all in-memory
    /// controller state is lost and the driver restarts it from its most
    /// recent checkpoint (or a cold restart when none has been taken).
    ControllerCrash {
        /// Control cycle the crash lands on.
        at_cycle: u64,
    },
    /// The controller misses `cycles` consecutive control cycles starting
    /// at `at_cycle` — delayed or skipped cycles. The engine (the data
    /// plane) keeps executing, uncontrolled and unobserved.
    SkippedCycles {
        /// First control cycle missed.
        at_cycle: u64,
        /// How many consecutive cycles are missed.
        cycles: u64,
    },
    /// Damage the checkpoint written at or after cycle `at_cycle`: the
    /// fault is armed against the driver's checkpoint store and lands on
    /// the next cadence save (torn writes hit the staged copy, bit flips
    /// and truncation the bytes at rest). Requires a store-backed driver
    /// ([`ChaosDriver::with_store`](crate::driver::ChaosDriver::with_store));
    /// a plain driver ignores it.
    CorruptCheckpoint {
        /// Cycle at (or after) which the next checkpoint is damaged.
        at_cycle: u64,
        /// The damage applied.
        kind: CorruptionKind,
    },
}

impl ControlFault {
    /// The control cycle this fault fires at.
    pub fn at_cycle(&self) -> u64 {
        match self {
            ControlFault::ControllerCrash { at_cycle }
            | ControlFault::SkippedCycles { at_cycle, .. }
            | ControlFault::CorruptCheckpoint { at_cycle, .. } => *at_cycle,
        }
    }
}

/// A fault scheduled at an instant of simulated time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: FaultKind,
}

/// A network-fabric fault against the cluster's simulated link layer
/// (`wlm-cluster`). Each variant doubles as its own recovery: the window
/// helpers schedule the fault at the window start and the neutral
/// parameters at its end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum NetFault {
    /// Drop each message to `shard` with probability `loss_p`
    /// (`loss_p: 0.0` restores the configured link).
    LinkLoss {
        /// The shard whose link degrades.
        shard: usize,
        /// Per-message loss probability while the fault holds.
        loss_p: f64,
    },
    /// Fully partition `shard` from the front-end: every message and ack
    /// in either direction is lost until the window heals
    /// (`active: false`).
    Partition {
        /// The partitioned shard.
        shard: usize,
        /// `true` opens the partition, `false` heals it.
        active: bool,
    },
    /// Make `shard` *gray* — alive but slow: every link delay to and from
    /// it is multiplied by `delay_factor` (`1.0` recovers).
    GrayShard {
        /// The straggling shard.
        shard: usize,
        /// Multiplier on the link's base delay.
        delay_factor: f64,
    },
}

impl NetFault {
    /// The shard the fault targets.
    pub fn shard(&self) -> usize {
        match self {
            NetFault::LinkLoss { shard, .. }
            | NetFault::Partition { shard, .. }
            | NetFault::GrayShard { shard, .. } => *shard,
        }
    }
}

/// A network fault scheduled at an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NetFaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens to the fabric.
    pub fault: NetFault,
}

/// An immutable, time-sorted schedule of fault events, plus a
/// cycle-sorted schedule of control-plane faults.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    control_events: Vec<ControlFault>,
    net_events: Vec<NetFaultEvent>,
}

impl FaultPlan {
    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Control-plane faults in firing order (by control cycle).
    pub fn control_events(&self) -> &[ControlFault] {
        &self.control_events
    }

    /// Network-fabric faults in firing order (consumed by the
    /// `wlm-cluster` link layer).
    pub fn net_events(&self) -> &[NetFaultEvent] {
        &self.net_events
    }

    /// Number of scheduled events (engine/workload, control-plane and
    /// network-fabric).
    pub fn len(&self) -> usize {
        self.events.len() + self.control_events.len() + self.net_events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.control_events.is_empty() && self.net_events.is_empty()
    }

    pub(crate) fn into_parts(self) -> (Vec<FaultEvent>, Vec<ControlFault>) {
        (self.events, self.control_events)
    }
}

/// Builder for [`FaultPlan`]s. Each helper schedules one fault window
/// (fault + recovery); [`FaultPlanBuilder::build`] sorts the result by
/// firing time.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rng: SmallRng,
    jitter_secs: f64,
    windows: u64,
    events: Vec<FaultEvent>,
    control_events: Vec<ControlFault>,
    net_events: Vec<NetFaultEvent>,
}

impl FaultPlanBuilder {
    /// A builder whose derived randomness (lock-storm seeds, timing
    /// jitter) is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            rng: SmallRng::seed_from_u64(seed),
            jitter_secs: 0.0,
            windows: 0,
            events: Vec::new(),
            control_events: Vec::new(),
            net_events: Vec::new(),
        }
    }

    /// Shift every *subsequently* scheduled window by a seeded uniform
    /// offset in `[-secs, +secs]` (fault and recovery move together, so
    /// window durations are preserved).
    pub fn with_jitter(mut self, secs: f64) -> Self {
        self.jitter_secs = secs.max(0.0);
        self
    }

    fn window_offset(&mut self) -> f64 {
        self.windows += 1;
        if self.jitter_secs > 0.0 {
            self.rng.gen_range(-self.jitter_secs..=self.jitter_secs)
        } else {
            0.0
        }
    }

    fn push_at(&mut self, at_secs: f64, fault: FaultKind) {
        self.events.push(FaultEvent {
            at: SimTime((at_secs.max(0.0) * 1e6).round() as u64),
            fault,
        });
    }

    /// Collapse disk bandwidth to `factor` of nominal over the window.
    pub fn io_spike(mut self, at_secs: f64, dur_secs: f64, factor: f64) -> Self {
        let off = self.window_offset();
        self.push_at(
            at_secs + off,
            FaultKind::Engine(EngineFault::DiskDegrade { factor }),
        );
        self.push_at(
            at_secs + dur_secs + off,
            FaultKind::Engine(EngineFault::DiskDegrade { factor: 1.0 }),
        );
        self
    }

    /// Take `cores` CPU cores offline over the window.
    pub fn core_loss(mut self, at_secs: f64, dur_secs: f64, cores: u32) -> Self {
        let off = self.window_offset();
        self.push_at(
            at_secs + off,
            FaultKind::Engine(EngineFault::CoresOffline { cores }),
        );
        self.push_at(
            at_secs + dur_secs + off,
            FaultKind::Engine(EngineFault::CoresOffline { cores: 0 }),
        );
        self
    }

    /// Shrink the buffer pool to `factor` of its configured pages.
    pub fn buffer_pool_shrink(mut self, at_secs: f64, dur_secs: f64, factor: f64) -> Self {
        let off = self.window_offset();
        self.push_at(
            at_secs + off,
            FaultKind::Engine(EngineFault::BufferPoolDegrade { factor }),
        );
        self.push_at(
            at_secs + dur_secs + off,
            FaultKind::Engine(EngineFault::BufferPoolDegrade { factor: 1.0 }),
        );
        self
    }

    /// Reserve `mb` of engine memory (an external hog) over the window.
    pub fn memory_pressure(mut self, at_secs: f64, dur_secs: f64, mb: u64) -> Self {
        let off = self.window_offset();
        self.push_at(
            at_secs + off,
            FaultKind::Engine(EngineFault::MemoryReserve { mb }),
        );
        self.push_at(
            at_secs + dur_secs + off,
            FaultKind::Engine(EngineFault::MemoryReserve { mb: 0 }),
        );
        self
    }

    /// Inject `txns` contending update transactions over `key_space` hot
    /// keys, each holding its locks for about `hold_secs`. Self-clearing
    /// (the storm transactions drain on their own), so no recovery event.
    pub fn lock_storm(
        mut self,
        at_secs: f64,
        txns: u32,
        keys_per_txn: u32,
        key_space: u64,
        hold_secs: f64,
    ) -> Self {
        let off = self.window_offset();
        let storm_seed = derive_seed(self.seed, self.windows);
        self.push_at(
            at_secs + off,
            FaultKind::Engine(EngineFault::LockStorm {
                txns,
                keys_per_txn,
                key_space,
                hold_secs,
                seed: storm_seed,
            }),
        );
        self
    }

    /// Amplify arrivals by `factor` over the window (a flash crowd).
    pub fn flash_crowd(mut self, at_secs: f64, dur_secs: f64, factor: f64) -> Self {
        let off = self.window_offset();
        self.push_at(at_secs + off, FaultKind::FlashCrowd { factor });
        self.push_at(
            at_secs + dur_secs + off,
            FaultKind::FlashCrowd { factor: 1.0 },
        );
        self
    }

    /// A trapezoidal flash crowd as a staircase of
    /// [`FaultKind::FlashCrowd`] steps: `steps` equal risers climbing to
    /// `peak` over `ramp_secs`, a hold for `hold_secs`, and `steps`
    /// risers back down over `decay_secs`, ending at the neutral `1.0`.
    /// The gradual build-up is what elastic-capacity hysteresis and
    /// adaptive backpressure are tuned against — a step function
    /// overstates the onset a real crowd delivers.
    pub fn flash_crowd_ramp(
        mut self,
        at_secs: f64,
        ramp_secs: f64,
        hold_secs: f64,
        decay_secs: f64,
        peak: f64,
        steps: usize,
    ) -> Self {
        let off = self.window_offset();
        let steps = steps.max(1);
        let peak = peak.max(1.0);
        for k in 1..=steps {
            let frac = k as f64 / steps as f64;
            self.push_at(
                at_secs + ramp_secs * (k - 1) as f64 / steps as f64 + off,
                FaultKind::FlashCrowd {
                    factor: 1.0 + (peak - 1.0) * frac,
                },
            );
        }
        let hold_end = at_secs + ramp_secs + hold_secs;
        for k in 1..=steps {
            let frac = k as f64 / steps as f64;
            self.push_at(
                hold_end + decay_secs * (k - 1) as f64 / steps as f64 + off,
                FaultKind::FlashCrowd {
                    factor: peak - (peak - 1.0) * frac,
                },
            );
        }
        self
    }

    /// Degrade optimizer estimates to error level `sigma` over the window.
    pub fn optimizer_skew(mut self, at_secs: f64, dur_secs: f64, sigma: f64) -> Self {
        let off = self.window_offset();
        self.push_at(at_secs + off, FaultKind::OptimizerSkew { sigma });
        self.push_at(at_secs + dur_secs + off, FaultKind::OptimizerRestore);
        self
    }

    fn push_net_at(&mut self, at_secs: f64, fault: NetFault) {
        self.net_events.push(NetFaultEvent {
            at: SimTime((at_secs.max(0.0) * 1e6).round() as u64),
            fault,
        });
    }

    /// Degrade the link to `shard`: each message is lost with probability
    /// `loss_p` over the window (retransmits eventually get through).
    pub fn link_loss(mut self, at_secs: f64, dur_secs: f64, shard: usize, loss_p: f64) -> Self {
        let off = self.window_offset();
        self.push_net_at(at_secs + off, NetFault::LinkLoss { shard, loss_p });
        self.push_net_at(
            at_secs + dur_secs + off,
            NetFault::LinkLoss { shard, loss_p: 0.0 },
        );
        self
    }

    /// Fully partition `shard` from the front-end over the window; the
    /// heal event at the window end triggers the cluster's partition-heal
    /// reconciliation.
    pub fn partition(mut self, at_secs: f64, dur_secs: f64, shard: usize) -> Self {
        let off = self.window_offset();
        self.push_net_at(
            at_secs + off,
            NetFault::Partition {
                shard,
                active: true,
            },
        );
        self.push_net_at(
            at_secs + dur_secs + off,
            NetFault::Partition {
                shard,
                active: false,
            },
        );
        self
    }

    /// Make `shard` gray — alive but `delay_factor`× slower on the link —
    /// over the window.
    pub fn gray_shard(
        mut self,
        at_secs: f64,
        dur_secs: f64,
        shard: usize,
        delay_factor: f64,
    ) -> Self {
        let off = self.window_offset();
        self.push_net_at(
            at_secs + off,
            NetFault::GrayShard {
                shard,
                delay_factor,
            },
        );
        self.push_net_at(
            at_secs + dur_secs + off,
            NetFault::GrayShard {
                shard,
                delay_factor: 1.0,
            },
        );
        self
    }

    /// Crash the controller just before control cycle `at_cycle`. Cycle
    /// indexed, so jitter does not apply: crashes land deterministically.
    pub fn controller_crash(mut self, at_cycle: u64) -> Self {
        self.control_events
            .push(ControlFault::ControllerCrash { at_cycle });
        self
    }

    /// Make the controller miss `cycles` consecutive control cycles
    /// starting at `at_cycle` (a stalled or delayed control loop).
    pub fn skip_cycles(mut self, at_cycle: u64, cycles: u64) -> Self {
        self.control_events
            .push(ControlFault::SkippedCycles { at_cycle, cycles });
        self
    }

    /// Damage the next checkpoint taken at or after `at_cycle` with
    /// `kind`. Cycle indexed and jitter-free, like every control fault.
    pub fn corrupt_checkpoint(mut self, at_cycle: u64, kind: CorruptionKind) -> Self {
        self.control_events
            .push(ControlFault::CorruptCheckpoint { at_cycle, kind });
        self
    }

    /// Finish the plan: events sorted by firing time (stable, so two
    /// events at the same instant keep their scheduling order), control
    /// faults by cycle.
    pub fn build(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        self.control_events.sort_by_key(|e| e.at_cycle());
        self.net_events.sort_by_key(|e| e.at);
        FaultPlan {
            events: self.events,
            control_events: self.control_events,
            net_events: self.net_events,
        }
    }
}

/// SplitMix64 step: derive a storm seed from the plan seed and window
/// index so distinct storms in one plan decorrelate.
fn derive_seed(seed: u64, window: u64) -> u64 {
    let mut x = seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(seed: u64) -> FaultPlan {
        FaultPlanBuilder::new(seed)
            .with_jitter(0.5)
            .io_spike(10.0, 5.0, 0.1)
            .core_loss(12.0, 6.0, 2)
            .flash_crowd(20.0, 4.0, 3.0)
            .lock_storm(15.0, 8, 4, 32, 2.0)
            .optimizer_skew(5.0, 10.0, 1.5)
            .build()
    }

    #[test]
    fn plans_are_sorted_and_deterministic_per_seed() {
        let a = demo(42);
        let b = demo(42);
        assert_eq!(a, b, "same seed, same plan");
        assert!(
            a.events().windows(2).all(|w| w[0].at <= w[1].at),
            "sorted by firing time"
        );
        assert_eq!(a.len(), 9, "four windows of two plus one storm");
        let c = demo(43);
        assert_ne!(a, c, "different seed perturbs the jittered timings");
    }

    #[test]
    fn jitter_moves_fault_and_recovery_together() {
        let plan = FaultPlanBuilder::new(7)
            .with_jitter(2.0)
            .io_spike(10.0, 5.0, 0.25)
            .build();
        let [start, end] = plan.events() else {
            panic!("two events expected");
        };
        let dur = end.at.since(start.at).as_secs_f64();
        assert!((dur - 5.0).abs() < 1e-6, "window duration preserved: {dur}");
        let shift = start.at.as_secs_f64() - 10.0;
        assert!(shift.abs() <= 2.0 + 1e-9, "offset bounded: {shift}");
    }

    #[test]
    fn storm_seeds_decorrelate_within_a_plan() {
        let plan = FaultPlanBuilder::new(1)
            .lock_storm(1.0, 4, 2, 16, 1.0)
            .lock_storm(2.0, 4, 2, 16, 1.0)
            .build();
        let seeds: Vec<u64> = plan
            .events()
            .iter()
            .filter_map(|e| match &e.fault {
                FaultKind::Engine(EngineFault::LockStorm { seed, .. }) => Some(*seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1]);
    }

    #[test]
    fn net_windows_are_self_healing_and_jitter_together() {
        let plan = FaultPlanBuilder::new(9)
            .with_jitter(1.0)
            .partition(10.0, 4.0, 2)
            .gray_shard(3.0, 5.0, 1, 25.0)
            .link_loss(1.0, 2.0, 0, 0.5)
            .build();
        assert_eq!(plan.net_events().len(), 6);
        assert_eq!(plan.len(), 6);
        assert!(
            plan.net_events().windows(2).all(|w| w[0].at <= w[1].at),
            "net events sorted by firing time"
        );
        // Every fault has its matching recovery, window duration intact.
        let parts: Vec<_> = plan
            .net_events()
            .iter()
            .filter(|e| matches!(e.fault, NetFault::Partition { .. }))
            .collect();
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[0].fault,
            NetFault::Partition {
                shard: 2,
                active: true
            }
        );
        assert_eq!(
            parts[1].fault,
            NetFault::Partition {
                shard: 2,
                active: false
            }
        );
        let dur = parts[1].at.since(parts[0].at).as_secs_f64();
        assert!((dur - 4.0).abs() < 1e-6, "window duration preserved: {dur}");
        assert_eq!(
            plan.net_events(),
            FaultPlanBuilder::new(9)
                .with_jitter(1.0)
                .partition(10.0, 4.0, 2)
                .gray_shard(3.0, 5.0, 1, 25.0)
                .link_loss(1.0, 2.0, 0, 0.5)
                .build()
                .net_events(),
            "same seed, same net schedule"
        );
    }

    #[test]
    fn flash_crowd_ramp_builds_a_monotone_staircase_ending_neutral() {
        let plan = FaultPlanBuilder::new(7)
            .flash_crowd_ramp(10.0, 4.0, 6.0, 4.0, 3.0, 4)
            .build();
        let steps: Vec<(f64, f64)> = plan
            .events()
            .iter()
            .map(|e| match e.fault {
                FaultKind::FlashCrowd { factor } => (e.at.as_secs_f64(), factor),
                ref other => panic!("unexpected fault {other:?}"),
            })
            .collect();
        assert_eq!(steps.len(), 8, "4 risers up, 4 down");
        // Up the ramp: 1.5, 2.0, 2.5, 3.0 at t = 10, 11, 12, 13.
        assert_eq!(steps[0], (10.0, 1.5));
        assert_eq!(steps[3], (13.0, 3.0));
        // Held at peak until the decay starts at t = 20.
        assert_eq!(steps[4], (20.0, 2.5));
        // Last riser lands back on the neutral factor.
        assert_eq!(steps[7], (23.0, 1.0));
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "risers fire in time order"
        );
    }

    #[test]
    fn plans_serialize_to_json() {
        let json = serde_json::to_string(&demo(3)).expect("serializes");
        assert!(json.contains("disk_degrade"));
        assert!(json.contains("flash_crowd"));
    }

    #[test]
    fn control_faults_sort_by_cycle_and_ignore_jitter() {
        let plan = FaultPlanBuilder::new(5)
            .with_jitter(2.0)
            .skip_cycles(900, 10)
            .controller_crash(300)
            .build();
        assert_eq!(
            plan.control_events(),
            &[
                ControlFault::ControllerCrash { at_cycle: 300 },
                ControlFault::SkippedCycles {
                    at_cycle: 900,
                    cycles: 10
                },
            ],
            "cycle-sorted and jitter-free regardless of seed"
        );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        let json = serde_json::to_string(&plan).expect("serializes");
        assert!(json.contains("controller_crash"));
        assert!(json.contains("skipped_cycles"));
    }
}
