//! The chaos driver: replays a [`FaultPlan`] against a live
//! [`WorkloadManager`] run.
//!
//! The driver sits *outside* the control cycle: before each manager tick
//! it applies every plan event whose time has come — engine faults through
//! [`WorkloadManager::apply_engine_fault`], flash crowds through a
//! [`SurgeHandle`], optimizer skew through the manager's cost-model knob.
//! All of it is deterministic: the same plan against the same manager and
//! sources replays byte-identically.
//!
//! The driver also plays the *harness* for the crash-tolerant control
//! plane: with [`ChaosDriver::with_checkpoint_every`] it takes a
//! [`ControllerState`] checkpoint on a fixed cycle cadence, and when a
//! [`ControlFault::ControllerCrash`] fires it wipes the controller by
//! restoring that latest checkpoint ([`WorkloadManager::restore`]) — or
//! falls back to [`WorkloadManager::cold_restart`] when none exists.
//! [`ControlFault::SkippedCycles`] stalls the control loop instead: the
//! engine advances via [`WorkloadManager::tick_uncontrolled`] while the
//! missed cycles elapse.
//!
//! With [`ChaosDriver::with_store`] the cadence checkpoint goes through a
//! durable [`CheckpointStore`] instead of a trusted in-memory slot:
//! every save is sealed, verified and chained, and crash recovery walks
//! the generation chain ([`WorkloadManager::restore_from_store`]) —
//! falling back to [`WorkloadManager::cold_restart`] only when no
//! generation verifies. [`ControlFault::CorruptCheckpoint`] faults arm
//! torn writes, bit flips and truncation against that store.

use crate::plan::{ControlFault, FaultEvent, FaultKind, FaultPlan};
use wlm_core::manager::store::{CheckpointStore, CorruptionKind, StoreConfig};
use wlm_core::manager::{ControllerState, RecoveryReport, RunReport, WorkloadManager};
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::{Source, SurgeHandle};

/// Replays a [`FaultPlan`] event by event as simulated time passes.
#[derive(Debug)]
pub struct ChaosDriver {
    events: Vec<FaultEvent>,
    next: usize,
    control: Vec<ControlFault>,
    next_control: usize,
    surge: Option<SurgeHandle>,
    /// The optimizer error level before the active skew, restored by
    /// `OptimizerRestore`.
    baseline_sigma: Option<f64>,
    applied: u64,
    skipped: u64,
    /// Checkpoint cadence in control cycles (`None` = no checkpointing).
    checkpoint_every: Option<u64>,
    last_checkpoint: Option<ControllerState>,
    last_recovery: Option<RecoveryReport>,
    checkpoints_taken: u64,
    crashes: u64,
    /// Durable store for cadence checkpoints (`None` = trusted
    /// in-memory slot, the pre-store behavior).
    store: Option<CheckpointStore>,
    /// Checkpoint-corruption faults, cycle-sorted, consumed in order.
    corrupt: Vec<(u64, CorruptionKind)>,
    next_corrupt: usize,
    corruptions_armed: u64,
    cold_restarts: u64,
}

impl ChaosDriver {
    /// A driver over `plan` (already time-sorted by its builder).
    pub fn new(plan: FaultPlan) -> Self {
        let (events, mut control) = plan.into_parts();
        // Corruption faults arm the store *before* the cadence save on
        // their cycle; crash/skip faults fire *after* it. Splitting them
        // here keeps `before_cycle` a simple two-pass sweep.
        let corrupt: Vec<(u64, CorruptionKind)> = control
            .iter()
            .filter_map(|f| match f {
                ControlFault::CorruptCheckpoint { at_cycle, kind } => Some((*at_cycle, *kind)),
                _ => None,
            })
            .collect();
        control.retain(|f| !matches!(f, ControlFault::CorruptCheckpoint { .. }));
        ChaosDriver {
            events,
            next: 0,
            control,
            next_control: 0,
            surge: None,
            baseline_sigma: None,
            applied: 0,
            skipped: 0,
            checkpoint_every: None,
            last_checkpoint: None,
            last_recovery: None,
            checkpoints_taken: 0,
            crashes: 0,
            store: None,
            corrupt,
            next_corrupt: 0,
            corruptions_armed: 0,
            cold_restarts: 0,
        }
    }

    /// Attach the surge handle that `FlashCrowd` events control. Without
    /// one, flash-crowd events are counted as skipped.
    pub fn with_surge(mut self, handle: SurgeHandle) -> Self {
        self.surge = Some(handle);
        self
    }

    /// Checkpoint the controller every `cycles` control cycles (cycle 0
    /// included, so a crash before the first cadence point still has a
    /// checkpoint to restore). Crash recovery restores the latest one.
    pub fn with_checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = Some(cycles.max(1));
        self
    }

    /// Route cadence checkpoints through a durable [`CheckpointStore`]:
    /// sealed envelopes, staged-write verification, a bounded generation
    /// chain, and walk-back recovery on crash. This is what
    /// [`ControlFault::CorruptCheckpoint`] faults act on — without a
    /// store they are counted as skipped.
    pub fn with_store(mut self, cfg: StoreConfig) -> Self {
        self.store = Some(CheckpointStore::new(cfg));
        self
    }

    /// Apply every event due at or before the manager's current time.
    /// Returns how many events fired this call (applied or skipped).
    pub fn apply_due(&mut self, mgr: &mut WorkloadManager) -> usize {
        let now = mgr.now();
        let mut fired = 0;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let event = self.events[self.next].clone();
            self.next += 1;
            fired += 1;
            match event.fault {
                FaultKind::Engine(fault) => {
                    // A rejected fault (invalid parameters for this
                    // engine) is recorded, not fatal: the plan may be
                    // reused across engine sizes.
                    if mgr.apply_engine_fault(fault).is_ok() {
                        self.applied += 1;
                    } else {
                        self.skipped += 1;
                    }
                }
                FaultKind::FlashCrowd { factor } => match &self.surge {
                    Some(handle) => {
                        handle.set_factor(factor);
                        self.applied += 1;
                    }
                    None => self.skipped += 1,
                },
                FaultKind::OptimizerSkew { sigma } => {
                    if self.baseline_sigma.is_none() {
                        self.baseline_sigma = Some(mgr.cost_model_error());
                    }
                    mgr.set_cost_model_error(sigma);
                    self.applied += 1;
                }
                FaultKind::OptimizerRestore => {
                    let sigma = self.baseline_sigma.take().unwrap_or(0.0);
                    mgr.set_cost_model_error(sigma);
                    self.applied += 1;
                }
            }
        }
        fired
    }

    /// Control-plane bookkeeping due before the manager's next control
    /// cycle: first the cadence checkpoint (so a crash landing on the same
    /// cycle restores the state *as of* that cycle), then every control
    /// fault scheduled at or before the current cycle index. Returns how
    /// many control cycles the caller must skip (0 = tick normally).
    pub fn before_cycle(&mut self, mgr: &mut WorkloadManager) -> u64 {
        let cycle = mgr.cycle();
        // Corruption faults arm before the save their cycle gates, so a
        // fault and a cadence point on the same cycle damage that save.
        while self.next_corrupt < self.corrupt.len() && self.corrupt[self.next_corrupt].0 <= cycle {
            let (_, kind) = self.corrupt[self.next_corrupt];
            self.next_corrupt += 1;
            match self.store.as_mut() {
                Some(store) => {
                    store.arm_fault(kind);
                    self.corruptions_armed += 1;
                }
                None => self.skipped += 1,
            }
        }
        if let Some(every) = self.checkpoint_every {
            if cycle.is_multiple_of(every) {
                let state = mgr.checkpoint();
                match self.store.as_mut() {
                    Some(store) => {
                        store.commit(&state);
                    }
                    None => self.last_checkpoint = Some(state),
                }
                self.checkpoints_taken += 1;
            }
        }
        let mut skip = 0;
        while self.next_control < self.control.len()
            && self.control[self.next_control].at_cycle() <= cycle
        {
            let fault = self.control[self.next_control];
            self.next_control += 1;
            match fault {
                ControlFault::ControllerCrash { .. } => {
                    self.crashes += 1;
                    let report = if let Some(store) = self.store.as_ref() {
                        match mgr.restore_from_store(store) {
                            Ok(report) => report,
                            Err(_) => {
                                // Every generation failed verification:
                                // the controller restarts from nothing.
                                self.cold_restarts += 1;
                                mgr.cold_restart()
                            }
                        }
                    } else {
                        match self.last_checkpoint.as_ref() {
                            Some(ckpt) => mgr.restore(ckpt),
                            None => mgr.cold_restart(),
                        }
                    };
                    self.last_recovery = Some(report);
                }
                ControlFault::SkippedCycles { cycles, .. } => skip += cycles,
                ControlFault::CorruptCheckpoint { .. } => {
                    unreachable!("corruption faults are split out in ChaosDriver::new")
                }
            }
        }
        skip
    }

    /// Whether every plan event has fired.
    pub fn done(&self) -> bool {
        self.next >= self.events.len()
            && self.next_control >= self.control.len()
            && self.next_corrupt >= self.corrupt.len()
    }

    /// Events applied successfully so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Events that could not be applied (rejected by the engine, or a
    /// flash crowd with no surge handle attached).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The latest checkpoint taken on the cadence, if any.
    pub fn last_checkpoint(&self) -> Option<&ControllerState> {
        self.last_checkpoint.as_ref()
    }

    /// What the most recent crash recovery did, if one has happened.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery
    }

    /// Cadence checkpoints taken so far.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Controller crashes injected so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// The durable checkpoint store, when one is attached.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Corruption faults armed against the store so far.
    pub fn corruptions_armed(&self) -> u64 {
        self.corruptions_armed
    }

    /// Crash recoveries that found no verifiable generation and fell
    /// back to a cold restart.
    pub fn cold_restarts(&self) -> u64 {
        self.cold_restarts
    }
}

/// Run the manager for `duration` with the driver injecting faults
/// between control cycles — the chaos-mode counterpart of
/// [`WorkloadManager::run`]. Controller crashes restore from the driver's
/// cadence checkpoint; skipped-cycle faults advance the engine with the
/// control loop stalled.
pub fn run_with_chaos(
    mgr: &mut WorkloadManager,
    source: &mut dyn Source,
    duration: SimDuration,
    driver: &mut ChaosDriver,
) -> RunReport {
    let deadline = mgr.now() + duration;
    while mgr.now() < deadline {
        driver.apply_due(mgr);
        let skip = driver.before_cycle(mgr);
        if skip > 0 {
            for _ in 0..skip {
                if mgr.now() >= deadline {
                    break;
                }
                mgr.tick_uncontrolled();
            }
        } else {
            mgr.tick(source);
        }
    }
    mgr.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanBuilder;
    use wlm_core::api::WlmBuilder;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_workload::generators::{OltpSource, SurgeSource};

    fn manager() -> WorkloadManager {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                disk_pages_per_sec: 20_000,
                memory_mb: 2_048,
                ..Default::default()
            })
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn driver_applies_engine_faults_and_recovers() {
        let plan = FaultPlanBuilder::new(1)
            .io_spike(1.0, 2.0, 0.25)
            .core_loss(1.0, 2.0, 3)
            .build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(10.0, 7);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        let mid = mgr.engine().fault_state().clone();
        assert!((mid.disk_factor - 0.25).abs() < 1e-12, "{mid:?}");
        assert_eq!(mid.cores_offline, 3);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(3), &mut driver);
        assert!(mgr.engine().fault_state().is_healthy(), "plan self-heals");
        assert!(driver.done());
        assert_eq!(driver.applied(), 4);
        assert_eq!(driver.skipped(), 0);
    }

    #[test]
    fn flash_crowd_without_surge_handle_is_skipped() {
        let plan = FaultPlanBuilder::new(2).flash_crowd(0.5, 1.0, 3.0).build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(5.0, 3);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(3), &mut driver);
        assert_eq!(driver.skipped(), 2);
        assert_eq!(driver.applied(), 0);
    }

    #[test]
    fn flash_crowd_raises_and_lowers_the_surge_factor() {
        let plan = FaultPlanBuilder::new(3).flash_crowd(1.0, 2.0, 4.0).build();
        let (surge, handle) = SurgeSource::new(Box::new(OltpSource::new(10.0, 9)), 11);
        let mut src = surge;
        let mut driver = ChaosDriver::new(plan).with_surge(handle.clone());
        let mut mgr = manager();
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        assert!((handle.factor() - 4.0).abs() < 1e-12);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        assert!((handle.factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controller_crash_restores_from_the_cadence_checkpoint() {
        // Default quantum 10 ms: a 1 s run is 100 control cycles.
        let plan = FaultPlanBuilder::new(6).controller_crash(50).build();
        let mut driver = ChaosDriver::new(plan).with_checkpoint_every(20);
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert_eq!(driver.crashes(), 1);
        assert_eq!(driver.checkpoints_taken(), 5, "cycles 0,20,40,60,80");
        let recovery = driver.last_recovery().expect("crash recovered");
        assert_eq!(recovery.from_cycle, 40, "latest checkpoint before 50");
        assert!(driver.last_checkpoint().is_some());
        assert!(driver.done());
    }

    #[test]
    fn crash_without_checkpoints_falls_back_to_cold_restart() {
        let plan = FaultPlanBuilder::new(7).controller_crash(50).build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        let recovery = driver.last_recovery().expect("crash recovered");
        assert_eq!(recovery.from_cycle, 50, "cold restart at the crash cycle");
        assert_eq!(recovery.readopted, 0, "nothing survives a cold restart");
        assert!(driver.last_checkpoint().is_none());
    }

    #[test]
    fn skipped_cycles_stall_the_controller_but_not_the_engine() {
        let plan = FaultPlanBuilder::new(8).skip_cycles(10, 5).build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert_eq!(mgr.cycle(), 100, "uncontrolled quanta still count");
        assert!(driver.done());
    }

    #[test]
    fn corrupted_cadence_checkpoint_falls_back_a_generation() {
        use wlm_core::manager::store::{CorruptionKind, StoreConfig};
        let plan = FaultPlanBuilder::new(9)
            .corrupt_checkpoint(40, CorruptionKind::BitFlip)
            .controller_crash(50)
            .build();
        let mut driver = ChaosDriver::new(plan)
            .with_checkpoint_every(20)
            .with_store(StoreConfig::default());
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert_eq!(driver.corruptions_armed(), 1);
        assert_eq!(driver.crashes(), 1);
        assert_eq!(driver.cold_restarts(), 0);
        let recovery = driver.last_recovery().expect("crash recovered");
        assert_eq!(
            recovery.from_cycle, 20,
            "the damaged cycle-40 generation is rejected; recovery walks back to cycle 20"
        );
        assert!(driver.done());
    }

    #[test]
    fn torn_write_is_caught_before_the_swap() {
        use wlm_core::manager::store::{CorruptionKind, StoreConfig};
        let plan = FaultPlanBuilder::new(10)
            .corrupt_checkpoint(40, CorruptionKind::TornWrite)
            .controller_crash(50)
            .build();
        let mut driver = ChaosDriver::new(plan)
            .with_checkpoint_every(20)
            .with_store(StoreConfig::default());
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert_eq!(driver.store().unwrap().torn_writes_caught(), 1);
        let recovery = driver.last_recovery().expect("crash recovered");
        assert_eq!(
            recovery.from_cycle, 40,
            "write verification re-staged the torn cycle-40 save; no fallback needed"
        );
    }

    #[test]
    fn exhausted_generation_chain_cold_restarts() {
        use wlm_core::manager::store::{CorruptionKind, StoreConfig};
        let plan = FaultPlanBuilder::new(11)
            .corrupt_checkpoint(40, CorruptionKind::Truncate)
            .controller_crash(50)
            .build();
        let mut driver = ChaosDriver::new(plan)
            .with_checkpoint_every(20)
            .with_store(StoreConfig {
                keep_generations: 1,
                ..StoreConfig::default()
            });
        let mut mgr = manager();
        let mut src = OltpSource::new(30.0, 13);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert_eq!(
            driver.cold_restarts(),
            1,
            "single retained generation was damaged"
        );
        let recovery = driver.last_recovery().expect("crash recovered");
        assert_eq!(recovery.readopted, 0, "nothing survives the cold restart");
    }

    #[test]
    fn optimizer_skew_restores_the_baseline() {
        let plan = FaultPlanBuilder::new(4)
            .optimizer_skew(0.5, 1.0, 1.5)
            .build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let baseline = mgr.cost_model_error();
        let mut src = OltpSource::new(5.0, 5);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert!((mgr.cost_model_error() - 1.5).abs() < 1e-12);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert!((mgr.cost_model_error() - baseline).abs() < 1e-12);
    }
}
