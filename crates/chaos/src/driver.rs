//! The chaos driver: replays a [`FaultPlan`] against a live
//! [`WorkloadManager`] run.
//!
//! The driver sits *outside* the control cycle: before each manager tick
//! it applies every plan event whose time has come — engine faults through
//! [`WorkloadManager::apply_engine_fault`], flash crowds through a
//! [`SurgeHandle`], optimizer skew through the manager's cost-model knob.
//! All of it is deterministic: the same plan against the same manager and
//! sources replays byte-identically.

use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use wlm_core::manager::{RunReport, WorkloadManager};
use wlm_dbsim::time::SimDuration;
use wlm_workload::generators::{Source, SurgeHandle};

/// Replays a [`FaultPlan`] event by event as simulated time passes.
#[derive(Debug)]
pub struct ChaosDriver {
    events: Vec<FaultEvent>,
    next: usize,
    surge: Option<SurgeHandle>,
    /// The optimizer error level before the active skew, restored by
    /// `OptimizerRestore`.
    baseline_sigma: Option<f64>,
    applied: u64,
    skipped: u64,
}

impl ChaosDriver {
    /// A driver over `plan` (already time-sorted by its builder).
    pub fn new(plan: FaultPlan) -> Self {
        ChaosDriver {
            events: plan.into_events(),
            next: 0,
            surge: None,
            baseline_sigma: None,
            applied: 0,
            skipped: 0,
        }
    }

    /// Attach the surge handle that `FlashCrowd` events control. Without
    /// one, flash-crowd events are counted as skipped.
    pub fn with_surge(mut self, handle: SurgeHandle) -> Self {
        self.surge = Some(handle);
        self
    }

    /// Apply every event due at or before the manager's current time.
    /// Returns how many events fired this call (applied or skipped).
    pub fn apply_due(&mut self, mgr: &mut WorkloadManager) -> usize {
        let now = mgr.now();
        let mut fired = 0;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let event = self.events[self.next].clone();
            self.next += 1;
            fired += 1;
            match event.fault {
                FaultKind::Engine(fault) => {
                    // A rejected fault (invalid parameters for this
                    // engine) is recorded, not fatal: the plan may be
                    // reused across engine sizes.
                    if mgr.apply_engine_fault(fault).is_ok() {
                        self.applied += 1;
                    } else {
                        self.skipped += 1;
                    }
                }
                FaultKind::FlashCrowd { factor } => match &self.surge {
                    Some(handle) => {
                        handle.set_factor(factor);
                        self.applied += 1;
                    }
                    None => self.skipped += 1,
                },
                FaultKind::OptimizerSkew { sigma } => {
                    if self.baseline_sigma.is_none() {
                        self.baseline_sigma = Some(mgr.cost_model_error());
                    }
                    mgr.set_cost_model_error(sigma);
                    self.applied += 1;
                }
                FaultKind::OptimizerRestore => {
                    let sigma = self.baseline_sigma.take().unwrap_or(0.0);
                    mgr.set_cost_model_error(sigma);
                    self.applied += 1;
                }
            }
        }
        fired
    }

    /// Whether every plan event has fired.
    pub fn done(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Events applied successfully so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Events that could not be applied (rejected by the engine, or a
    /// flash crowd with no surge handle attached).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Run the manager for `duration` with the driver injecting faults
/// between control cycles — the chaos-mode counterpart of
/// [`WorkloadManager::run`].
pub fn run_with_chaos(
    mgr: &mut WorkloadManager,
    source: &mut dyn Source,
    duration: SimDuration,
    driver: &mut ChaosDriver,
) -> RunReport {
    let deadline = mgr.now() + duration;
    while mgr.now() < deadline {
        driver.apply_due(mgr);
        mgr.tick(source);
    }
    mgr.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanBuilder;
    use wlm_core::manager::ManagerConfig;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_workload::generators::{OltpSource, SurgeSource};

    fn manager() -> WorkloadManager {
        WorkloadManager::new(ManagerConfig {
            engine: EngineConfig {
                cores: 4,
                disk_pages_per_sec: 20_000,
                memory_mb: 2_048,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn driver_applies_engine_faults_and_recovers() {
        let plan = FaultPlanBuilder::new(1)
            .io_spike(1.0, 2.0, 0.25)
            .core_loss(1.0, 2.0, 3)
            .build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(10.0, 7);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        let mid = mgr.engine().fault_state().clone();
        assert!((mid.disk_factor - 0.25).abs() < 1e-12, "{mid:?}");
        assert_eq!(mid.cores_offline, 3);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(3), &mut driver);
        assert!(mgr.engine().fault_state().is_healthy(), "plan self-heals");
        assert!(driver.done());
        assert_eq!(driver.applied(), 4);
        assert_eq!(driver.skipped(), 0);
    }

    #[test]
    fn flash_crowd_without_surge_handle_is_skipped() {
        let plan = FaultPlanBuilder::new(2).flash_crowd(0.5, 1.0, 3.0).build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let mut src = OltpSource::new(5.0, 3);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(3), &mut driver);
        assert_eq!(driver.skipped(), 2);
        assert_eq!(driver.applied(), 0);
    }

    #[test]
    fn flash_crowd_raises_and_lowers_the_surge_factor() {
        let plan = FaultPlanBuilder::new(3).flash_crowd(1.0, 2.0, 4.0).build();
        let (surge, handle) = SurgeSource::new(Box::new(OltpSource::new(10.0, 9)), 11);
        let mut src = surge;
        let mut driver = ChaosDriver::new(plan).with_surge(handle.clone());
        let mut mgr = manager();
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        assert!((handle.factor() - 4.0).abs() < 1e-12);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(2), &mut driver);
        assert!((handle.factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimizer_skew_restores_the_baseline() {
        let plan = FaultPlanBuilder::new(4)
            .optimizer_skew(0.5, 1.0, 1.5)
            .build();
        let mut driver = ChaosDriver::new(plan);
        let mut mgr = manager();
        let baseline = mgr.cost_model_error();
        let mut src = OltpSource::new(5.0, 5);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert!((mgr.cost_model_error() - 1.5).abs() < 1e-12);
        run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(1), &mut driver);
        assert!((mgr.cost_model_error() - baseline).abs() < 1e-12);
    }
}
