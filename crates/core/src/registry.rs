//! The built-in technique registry: every technique implemented in this
//! crate, with the metadata the paper's tables print.
//!
//! [`builtin_registry`] is the single source the report generators read, and
//! its unit tests assert that each entry's taxonomy path matches what the
//! *implementation* reports through [`crate::taxonomy::Classified`] — so a
//! drifting classification fails the build, keeping the regenerated
//! Figure 1 and Tables 2/3/5 honest.

use crate::taxonomy::{Registry, TaxonomyPath, TechniqueClass, TechniqueInfo};

/// Names of the five research techniques summarised in Table 5, in the
/// paper's row order.
pub const TABLE5_TECHNIQUES: [&str; 5] = [
    "Utility/Cost-Limit Scheduler",
    "Utility Throttling (PI)",
    "Query Throttling",
    "Query Suspend-and-Resume",
    "Fuzzy Execution Controller",
];

/// Build the registry of all implemented techniques.
pub fn builtin_registry() -> Registry {
    use TechniqueClass::*;
    let mut r = Registry::new();
    let entries = [
        TechniqueInfo {
            name: "Workload Definition",
            path: TaxonomyPath::new(WorkloadCharacterization, "Static Characterization"),
            description: "Maps arriving requests to pre-defined workloads by origin (who), statement type and estimates (what), or user-written criteria functions; allocates resources by workload priority",
            objectives: "Identify incoming work so controls and resources can be applied per workload",
            reference: "IBM DB2 WLM [30], SQL Server Resource Governor [50], Teradata ASM [72]",
            metric_type: "Rule/Predicate",
            module: "wlm-core::characterize::static_def",
        },
        TechniqueInfo {
            name: "ML Workload Classifier",
            path: TaxonomyPath::new(WorkloadCharacterization, "Dynamic Characterization"),
            description: "Learns the characteristics of sample workloads and identifies the type of unknown arriving workloads (OLTP vs DSS) from run-time snapshots",
            objectives: "Recognize workload-type shifts without manual re-definition",
            reference: "Elnaffar et al. [19], Tran et al. [73]",
            metric_type: "Naive Bayes",
            module: "wlm-core::characterize::dynamic",
        },
        TechniqueInfo {
            name: "Query Cost",
            path: TaxonomyPath::new(AdmissionControl, "Threshold-based"),
            description: "If an arriving query's estimated cost is greater than the threshold, the query's admission is denied, otherwise accepted",
            objectives: "Keep resource-intensive work out of a loaded system",
            reference: "[9] [50] [72]",
            metric_type: "System Parameter",
            module: "wlm-core::admission::threshold",
        },
        TechniqueInfo {
            name: "MPLs",
            path: TaxonomyPath::new(AdmissionControl, "Threshold-based"),
            description: "If the number of concurrently running requests has reached the threshold, an arriving request's admission is denied, otherwise accepted",
            objectives: "Bound concurrency to avoid thrashing",
            reference: "[9] [50] [72]",
            metric_type: "System Parameter",
            module: "wlm-core::admission::threshold",
        },
        TechniqueInfo {
            name: "Conflict Ratio",
            path: TaxonomyPath::new(AdmissionControl, "Threshold-based"),
            description: "If the conflict ratio of transactions exceeds the threshold, new transactions are suspended, otherwise admitted",
            objectives: "Avert data-contention (lock) thrashing",
            reference: "Moenkeberg & Weikum [56]",
            metric_type: "Performance Metric",
            module: "wlm-core::admission::conflict_ratio",
        },
        TechniqueInfo {
            name: "Transaction Throughput",
            path: TaxonomyPath::new(AdmissionControl, "Threshold-based"),
            description: "If the system throughput in the last measurement interval has increased, more transactions are admitted, otherwise fewer transactions are admitted",
            objectives: "Hill-climb the admission MPL to the throughput knee",
            reference: "Heiss & Wagner [26]",
            metric_type: "Performance Metric",
            module: "wlm-core::admission::throughput_feedback",
        },
        TechniqueInfo {
            name: "Indicators",
            path: TaxonomyPath::new(AdmissionControl, "Threshold-based"),
            description: "If monitor-metric values exceed the pre-defined thresholds, low priority requests are delayed, otherwise they are admitted",
            objectives: "Detect congestion early and shed deferrable load",
            reference: "Zhang et al. [79] [80]",
            metric_type: "Monitor Metrics",
            module: "wlm-core::admission::indicators",
        },
        TechniqueInfo {
            name: "PQR Decision Tree",
            path: TaxonomyPath::new(AdmissionControl, "Prediction-based"),
            description: "Builds a decision tree from completed queries and predicts ranges of a new query's execution time before it runs",
            objectives: "Gate long-runners robustly despite optimizer estimate error",
            reference: "Gupta, Mehta & Dayal [23]",
            metric_type: "Learned Model",
            module: "wlm-core::admission::prediction",
        },
        TechniqueInfo {
            name: "Statistical (kNN) Predictor",
            path: TaxonomyPath::new(AdmissionControl, "Prediction-based"),
            description: "Finds correlations between pre-execution query properties and performance metrics of completed queries; predicts newcomers from their nearest neighbours",
            objectives: "Predict multiple performance metrics for admission and capacity planning",
            reference: "Ganapathi et al. [21]",
            metric_type: "Learned Model",
            module: "wlm-core::admission::prediction",
        },
        TechniqueInfo {
            name: "FCFS Queue",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Dispatches admitted requests in arrival order under a fixed MPL",
            objectives: "Baseline queue management",
            reference: "folklore",
            metric_type: "Queue",
            module: "wlm-core::scheduling::queues",
        },
        TechniqueInfo {
            name: "Priority Queue",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Dispatches by business importance with arrival-order tie-break under a fixed MPL",
            objectives: "Differentiate dispatch by importance",
            reference: "[30] [72]",
            metric_type: "Queue",
            module: "wlm-core::scheduling::queues",
        },
        TechniqueInfo {
            name: "Weighted Fair Queue",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Shares dispatch slots among workloads in proportion to configured weights (start-time fair queueing); no positive-weight workload can starve",
            objectives: "Differentiated dispatch without starvation",
            reference: "[30] [72] (workload-weighted queues)",
            metric_type: "Queue",
            module: "wlm-core::scheduling::weighted",
        },
        TechniqueInfo {
            name: "Rank Function (FEED)",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Ranks queued queries by priority, queue-wait aging and estimated cost; dispatches in descending rank",
            objectives: "Fair, effective, efficient and differentiated dispatch",
            reference: "Gupta et al. [24]",
            metric_type: "Rank Function",
            module: "wlm-core::scheduling::rank",
        },
        TechniqueInfo {
            name: "Utility/Cost-Limit Scheduler",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Intercepts arriving queries, acquires their information, and determines an execution order via per-class cost limits re-planned against an importance-weighted utility objective",
            objectives: "Achieve a set of service level objectives for multiple concurrent workloads",
            reference: "Niu et al. [60]",
            metric_type: "Utility/Objective Function",
            module: "wlm-core::scheduling::utility_sched",
        },
        TechniqueInfo {
            name: "Interaction-aware Batch Ordering",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Orders batch report queries shortest-first subject to a working-memory packing constraint, exploiting query interactions",
            objectives: "Minimise batch completion time",
            reference: "Ahmad et al. [2]",
            metric_type: "Optimization",
            module: "wlm-core::scheduling::batch_lp",
        },
        TechniqueInfo {
            name: "Feedback-controlled MPL",
            path: TaxonomyPath::new(Scheduling, "Queue Management"),
            description: "Adapts the external dispatch MPL with a feedback controller seeded by a closed queueing-network (MVA) model",
            objectives: "Keep the system at the throughput knee as the mix shifts",
            reference: "Schroeder et al. [69], Lazowska et al. [40]",
            metric_type: "Feedback + Queueing Model",
            module: "wlm-core::scheduling::mpl_feedback",
        },
        TechniqueInfo {
            name: "Query Slicing",
            path: TaxonomyPath::new(Scheduling, "Query Restructuring"),
            description: "Decomposes a large query plan into a series of sub-plans scheduled individually, so short queries are not stuck behind large ones",
            objectives: "Execute big work with lesser impact on concurrent requests",
            reference: "Bruno et al. [6], Meng et al. [54]",
            metric_type: "Plan Rewrite",
            module: "wlm-core::scheduling::restructure",
        },
        TechniqueInfo {
            name: "Priority Aging",
            path: TaxonomyPath::new(ExecutionControl, "Query Reprioritization"),
            description: "Dynamically changes the priority of system resource access for a request as it runs, on execution-threshold violation",
            objectives: "Contain requests whose behaviour exceeds expectations",
            reference: "[9] (DB2 service subclass remapping)",
            metric_type: "Reprioritization",
            module: "wlm-core::execution::reprioritize",
        },
        TechniqueInfo {
            name: "Policy-driven Resource Allocation",
            path: TaxonomyPath::new(ExecutionControl, "Query Reprioritization"),
            description: "Amounts of shared system resources are dynamically allocated to concurrent workloads according to the levels of the workload's business importance, via an economic market",
            objectives: "Enforce business-importance policy on resource shares at run time",
            reference: "Boughton et al. [4], Zhang et al. [78]",
            metric_type: "Reprioritization",
            module: "wlm-core::execution::reprioritize",
        },
        TechniqueInfo {
            name: "Query Kill",
            path: TaxonomyPath::new(ExecutionControl, "Query Cancellation"),
            description: "Kills the process of a request as it runs, immediately releasing its resources",
            objectives: "Eliminate a problematic query's impact directly",
            reference: "[30] [50] [61] [72]",
            metric_type: "Cancellation",
            module: "wlm-core::execution::cancel",
        },
        TechniqueInfo {
            name: "Query Kill-and-Resubmit",
            path: TaxonomyPath::new(ExecutionControl, "Query Cancellation"),
            description: "Kills a running query and queues it again for subsequent execution",
            objectives: "Defer, rather than lose, problematic work",
            reference: "Krompass et al. [39]",
            metric_type: "Cancellation",
            module: "wlm-core::execution::cancel",
        },
        TechniqueInfo {
            name: "Fuzzy Execution Controller",
            path: TaxonomyPath::new(ExecutionControl, "Query Cancellation"),
            description: "Cancelling or reprioritizing low-priority and long-running queries via a rule-based fuzzy-logic controller over progress, resource use and priority",
            objectives: "Achieve high performance for high-priority requests",
            reference: "Krompass et al. [39]",
            metric_type: "Fuzzy Rules",
            module: "wlm-core::execution::fuzzy_exec",
        },
        TechniqueInfo {
            name: "Progress-guided Cancellation",
            path: TaxonomyPath::new(ExecutionControl, "Query Cancellation"),
            description: "Uses a query progress indicator's remaining-time estimate, instead of a manual time threshold, to decide whether a running query should be controlled",
            objectives: "Automate execution control without human-set thresholds",
            reference: "[11] [41] [43] [45] [55]",
            metric_type: "Progress Indicator",
            module: "wlm-core::execution::progress",
        },
        TechniqueInfo {
            name: "Utility Throttling (PI)",
            path: TaxonomyPath::with_variant(ExecutionControl, "Request Suspension", "Request Throttling"),
            description: "A self-imposed sleep slows down online utilities; a Proportional-Integral controller determines the amount of throttling",
            objectives: "Maintain performance of running workloads at an acceptable level",
            reference: "Parekh et al. [64]",
            metric_type: "Throttling",
            module: "wlm-core::execution::throttle",
        },
        TechniqueInfo {
            name: "Query Throttling",
            path: TaxonomyPath::with_variant(ExecutionControl, "Request Suspension", "Request Throttling"),
            description: "A self-imposed sleep slows down large queries; a step function or a black-box model determines the amount of throttling (constant or interrupt pauses)",
            objectives: "Meet the service level objectives of high-priority requests",
            reference: "Powley et al. [65] [66]",
            metric_type: "Throttling",
            module: "wlm-core::execution::throttle",
        },
        TechniqueInfo {
            name: "Query Suspend-and-Resume",
            path: TaxonomyPath::with_variant(ExecutionControl, "Request Suspension", "Query Suspend-and-Resume"),
            description: "Query execution is augmented with suspend and resume phases triggered on demand; DumpState vs GoBack per-operator strategies chosen to minimise total overhead under a suspend-cost constraint",
            objectives: "Achieve high performance for high-priority requests",
            reference: "Chandramouli et al. [10]",
            metric_type: "Suspend & Resume",
            module: "wlm-core::execution::suspend",
        },
        TechniqueInfo {
            name: "Autonomic MAPE Loop",
            path: TaxonomyPath::new(ExecutionControl, "Query Reprioritization"),
            description: "Monitor-analyze-plan-execute loop that selects the most effective technique for the circumstances by applying a utility function",
            objectives: "Self-managing workload control toward high-level business objectives",
            reference: "Zhang et al. [80], Kephart & Chess [32]",
            metric_type: "Feedback Loop",
            module: "wlm-core::autonomic",
        },
    ];
    for e in entries {
        r.register(e);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{
        ConflictRatioAdmission, IndicatorAdmission, PredictionAdmission, PredictorKind,
        ThresholdAdmission, ThroughputFeedbackAdmission,
    };
    use crate::autonomic::AutonomicController;
    use crate::characterize::{StaticCharacterizer, WorkloadTypeClassifier};
    use crate::execution::{
        FuzzyExecController, LoadShedSuspender, PriorityAging, ProgressGuidedKiller,
        QueryThrottler, ThresholdKiller, UtilityThrottler,
    };
    use crate::scheduling::{
        BatchScheduler, FcfsScheduler, MplFeedbackScheduler, PriorityScheduler, RankScheduler,
        Restructurer, UtilityScheduler,
    };
    use crate::taxonomy::Classified;

    #[test]
    fn registry_is_nonempty_and_valid() {
        let r = builtin_registry();
        assert!(r.techniques().len() >= 20);
        assert!(r.techniques().iter().all(|t| t.path.is_valid()));
    }

    #[test]
    fn every_figure1_leaf_has_at_least_one_technique() {
        let r = builtin_registry();
        for class in crate::taxonomy::TechniqueClass::ALL {
            for sub in class.subclasses() {
                let variants = class.variants(sub);
                if variants.is_empty() {
                    assert!(
                        r.techniques()
                            .iter()
                            .any(|t| t.path.class == class && t.path.subclass == *sub),
                        "no technique under {class:?}/{sub}"
                    );
                } else {
                    for v in variants {
                        assert!(
                            r.techniques().iter().any(|t| t.path.class == class
                                && t.path.subclass == *sub
                                && t.path.variant == Some(*v)),
                            "no technique under {class:?}/{sub}/{v}"
                        );
                    }
                }
            }
        }
    }

    /// Registry rows must agree with what the implementations themselves
    /// report via `Classified`.
    #[test]
    fn registry_paths_match_implementations() {
        let r = builtin_registry();
        let check = |name: &str, c: &dyn Classified| {
            let info = r
                .techniques()
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing from registry"));
            assert_eq!(info.path, c.taxonomy(), "path drift for {name}");
            assert_eq!(info.name, c.technique_name(), "name drift for {name}");
        };
        check("Workload Definition", &StaticCharacterizer::new(vec![]));
        check("ML Workload Classifier", &WorkloadTypeClassifier::default());
        // `ThresholdAdmission` implements two table rows (Query Cost and
        // MPLs) under one struct; verify the shared path only.
        for row in ["Query Cost", "MPLs"] {
            let info = r.techniques().iter().find(|t| t.name == row).unwrap();
            assert_eq!(info.path, ThresholdAdmission::default().taxonomy());
        }
        check("Conflict Ratio", &ConflictRatioAdmission::default());
        check(
            "Transaction Throughput",
            &ThroughputFeedbackAdmission::new(4),
        );
        check("Indicators", &IndicatorAdmission::default());
        check(
            "PQR Decision Tree",
            &PredictionAdmission::new(PredictorKind::Pqr, 5.0),
        );
        check(
            "Statistical (kNN) Predictor",
            &PredictionAdmission::new(PredictorKind::Knn, 5.0),
        );
        check("FCFS Queue", &FcfsScheduler::new(1));
        check("Priority Queue", &PriorityScheduler::new(1));
        check(
            "Weighted Fair Queue",
            &crate::scheduling::WeightedFairScheduler::new(1, Default::default()),
        );
        check("Rank Function (FEED)", &RankScheduler::new(1));
        check(
            "Utility/Cost-Limit Scheduler",
            &UtilityScheduler::new(vec![], 1.0),
        );
        check("Interaction-aware Batch Ordering", &BatchScheduler::new(1));
        check(
            "Feedback-controlled MPL",
            &MplFeedbackScheduler::new(1, "x", 1.0),
        );
        check("Query Slicing", &Restructurer::default());
        check("Priority Aging", &PriorityAging::new(1.0));
        check(
            "Policy-driven Resource Allocation",
            &crate::execution::EconomicReallocator::default(),
        );
        check("Query Kill", &ThresholdKiller::new(1.0));
        check(
            "Query Kill-and-Resubmit",
            &ThresholdKiller::new(1.0).with_resubmit(1),
        );
        check(
            "Fuzzy Execution Controller",
            &FuzzyExecController::default(),
        );
        check(
            "Progress-guided Cancellation",
            &ProgressGuidedKiller::new(1.0),
        );
        check(
            "Utility Throttling (PI)",
            &UtilityThrottler::new("x", 1.0, 0.2),
        );
        check("Query Throttling", &QueryThrottler::new("x", 1.0, vec![]));
        check("Query Suspend-and-Resume", &LoadShedSuspender::default());
        check("Autonomic MAPE Loop", &AutonomicController::new(vec![]));
    }

    #[test]
    fn table5_names_resolve() {
        let r = builtin_registry();
        let rendered = r.render_table5(&TABLE5_TECHNIQUES);
        for name in TABLE5_TECHNIQUES {
            assert!(rendered.contains(name), "table 5 missing {name}");
        }
    }
}
