//! Typed decision telemetry for the control cycle.
//!
//! Every stage of the [`WorkloadManager`](crate::manager::WorkloadManager)
//! pipeline emits a [`WlmEvent`] describing *what it decided and why* —
//! the workload-management literature's event monitors (DB2 activity event
//! monitors, SQL Server performance counters, Teradata's exception log)
//! are all consumers of exactly this stream. Subscribers implement
//! [`EventSubscriber`] and attach with
//! [`WorkloadManager::subscribe`](crate::manager::WorkloadManager::subscribe);
//! external emitters (facility emulations, the MAPE loop) publish through a
//! clonable [`EventSink`].
//!
//! Two ready-made subscribers are provided: [`RingRecorder`], a bounded
//! ring buffer keeping the most recent events (the `--trace` surface of
//! the experiment harness), and [`WorkloadEventCounters`], per-workload
//! decision counts.
//!
//! Emission is free when nobody listens: the manager checks
//! [`EventBus::is_active`] once per cycle and skips event construction
//! entirely on the hot path when the bus has no subscribers.
//!
//! # Variants and their emitting stages
//!
//! | variant | emitting stage |
//! |---------|----------------|
//! | [`WlmEvent::Classified`] | identify |
//! | [`WlmEvent::Admitted`] | admit |
//! | [`WlmEvent::Deferred`] | admit |
//! | [`WlmEvent::Rejected`] | admit (admission controllers; degradation-ladder shedding) |
//! | [`WlmEvent::Scheduled`] | schedule |
//! | [`WlmEvent::Throttled`] | exec-control |
//! | [`WlmEvent::Reprioritized`] | exec-control |
//! | [`WlmEvent::Suspended`] | exec-control |
//! | [`WlmEvent::Resumed`] | monitor (suspended-query reinstatement) |
//! | [`WlmEvent::Killed`] | exec-control |
//! | [`WlmEvent::Resubmitted`] | exec-control (kill-with-resubmit); admit (retry release) |
//! | [`WlmEvent::Completed`] | monitor |
//! | [`WlmEvent::PolicyChanged`] | external (`set_policy` at run time) |
//! | [`WlmEvent::MapePlan`] | external (MAPE loop, via [`EventSink`]) |
//! | [`WlmEvent::FaultInjected`] | external (fault driver, via `apply_engine_fault`) |
//! | [`WlmEvent::RetryScheduled`] | exec-control (resilience layer) |
//! | [`WlmEvent::RetryExhausted`] | exec-control (resilience layer) |
//! | [`WlmEvent::BreakerTransition`] | exec-control (resilience layer) |
//! | [`WlmEvent::LadderStep`] | exec-control (resilience layer) |
//! | [`WlmEvent::CheckpointTaken`] | external (chaos driver / harness, via `checkpoint`) |
//! | [`WlmEvent::ControllerRestored`] | external (crash recovery, via `restore` / `cold_restart`) |
//! | [`WlmEvent::CheckpointRejected`] | external (checkpoint store: envelope failed verification) |
//! | [`WlmEvent::CheckpointFallback`] | external (checkpoint store: recovery walked back a generation) |
//! | [`WlmEvent::Quarantined`] | exec-control (runaway watchdog, at the kill site) |
//! | [`WlmEvent::QuarantineRejected`] | admit (quarantine gate; retry-release drop) |
//! | [`WlmEvent::Routed`] | external (cluster front-end routing, via its own bus) |
//! | [`WlmEvent::Rerouted`] | external (cluster front-end failover, via its own bus) |
//! | [`WlmEvent::ClusterShed`] | external (cluster front-end admission, via its own bus) |
//! | [`WlmEvent::LinkDropped`] | external (cluster link layer: a message lost in flight) |
//! | [`WlmEvent::Redelivered`] | external (cluster link layer: shard-side duplicate suppression) |
//! | [`WlmEvent::ShardSuspected`] | external (cluster failure detector, via its own bus) |
//! | [`WlmEvent::Hedged`] | external (cluster hedged re-dispatch, via its own bus) |
//! | [`WlmEvent::PartitionHealed`] | external (cluster partition-heal reconciliation) |
//! | [`WlmEvent::BackpressureStep`] | admit (adaptive backpressure gate adjustment) |
//! | [`WlmEvent::RetrySuppressed`] | admit (retry-budget bucket held matured retries) |
//! | [`WlmEvent::ShardSpawned`] | external (cluster autoscaler: shard provisioned, caches cold) |
//! | [`WlmEvent::ShardDraining`] | external (cluster autoscaler: shard stopped admitting) |
//! | [`WlmEvent::ShardRetired`] | external (cluster autoscaler: drain complete, residue rerouted) |

use serde::Serialize;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use wlm_dbsim::engine::{EngineEvent, QueryId};
use wlm_dbsim::time::SimTime;
use wlm_workload::request::RequestId;

/// Why admission control let a request into the wait queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum AdmitReason {
    /// Admitted on first arrival.
    Fresh,
    /// Re-admitted after being held at the admission gate.
    AfterDeferral,
}

/// A decision event from the control cycle. Every variant carries the
/// simulated time `at` which it was emitted; within one run the stream is
/// monotonically non-decreasing in `at`.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum WlmEvent {
    /// Identification mapped an arriving request to a workload.
    Classified {
        /// Emission time.
        at: SimTime,
        /// The classified request.
        request: RequestId,
        /// The workload it was assigned to.
        workload: String,
    },
    /// Admission control let a request into the scheduler wait queue.
    Admitted {
        /// Emission time.
        at: SimTime,
        /// The admitted request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// Why it was admitted now.
        reason: AdmitReason,
        /// Pieces the request was restructured into (1 = not restructured).
        pieces: usize,
    },
    /// Admission control held the request at the gate for a later cycle.
    Deferred {
        /// Emission time.
        at: SimTime,
        /// The deferred request.
        request: RequestId,
        /// The request's workload.
        workload: String,
    },
    /// Admission control turned the request away.
    Rejected {
        /// Emission time.
        at: SimTime,
        /// The rejected request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// The controller's stated reason.
        reason: String,
    },
    /// The scheduler released a request to the engine.
    Scheduled {
        /// Emission time.
        at: SimTime,
        /// The released request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// The engine query id it now runs under.
        query: QueryId,
    },
    /// Execution control changed a query's duty-cycle throttle
    /// (`fraction` 1.0 = full pause, 0.0 = full speed).
    Throttled {
        /// Emission time.
        at: SimTime,
        /// The throttled query.
        query: QueryId,
        /// The query's workload.
        workload: String,
        /// Sleep fraction applied.
        fraction: f64,
        /// Technique that issued the action.
        by: &'static str,
    },
    /// Execution control changed a query's fair-share weight.
    Reprioritized {
        /// Emission time.
        at: SimTime,
        /// The reprioritized query.
        query: QueryId,
        /// The query's workload.
        workload: String,
        /// New weight.
        weight: f64,
        /// Technique that issued the action.
        by: &'static str,
    },
    /// Execution control suspended a query to disk.
    Suspended {
        /// Emission time.
        at: SimTime,
        /// The suspended query.
        query: QueryId,
        /// The query's workload.
        workload: String,
        /// Suspend + resume overhead charged, µs.
        overhead_us: u64,
        /// Technique that issued the action.
        by: &'static str,
    },
    /// A suspended query re-entered the engine.
    Resumed {
        /// Emission time.
        at: SimTime,
        /// The new engine id of the resumed query.
        query: QueryId,
        /// The query's workload.
        workload: String,
    },
    /// Execution control cancelled a query.
    Killed {
        /// Emission time.
        at: SimTime,
        /// The cancelled query.
        query: QueryId,
        /// The query's workload.
        workload: String,
        /// Technique that issued the kill.
        by: &'static str,
        /// Whether the request returns to the wait queue.
        resubmit: bool,
    },
    /// A killed request was re-queued for another attempt.
    Resubmitted {
        /// Emission time.
        at: SimTime,
        /// The re-queued request.
        request: RequestId,
        /// The request's workload.
        workload: String,
    },
    /// A request ran to completion.
    Completed {
        /// Emission time.
        at: SimTime,
        /// The completing engine query.
        query: QueryId,
        /// The completed request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// Response time (arrival to completion), seconds.
        response_secs: f64,
    },
    /// A workload policy was installed or replaced at run time.
    PolicyChanged {
        /// Emission time.
        at: SimTime,
        /// The workload whose policy changed.
        workload: String,
    },
    /// The autonomic MAPE loop planned a control decision.
    MapePlan {
        /// Emission time.
        at: SimTime,
        /// The planned decision.
        decision: &'static str,
        /// The loop's escalation level after planning.
        escalation: u32,
    },
    /// An infrastructure fault (or its recovery) was injected into the
    /// engine through the manager.
    FaultInjected {
        /// Emission time.
        at: SimTime,
        /// Fault family tag (e.g. `"disk_degrade"`, `"lock_storm"`).
        kind: &'static str,
        /// Human-readable fault parameters.
        detail: String,
    },
    /// The resilience layer scheduled a failed query for another attempt
    /// after a backoff delay.
    RetryScheduled {
        /// Emission time.
        at: SimTime,
        /// The request being retried.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// Attempt number this retry will be (first run = attempt 0).
        attempt: u32,
        /// Backoff delay before the request re-enters the wait queue, µs.
        delay_us: u64,
    },
    /// A failed query had no retry budget left and was dropped for good.
    RetryExhausted {
        /// Emission time.
        at: SimTime,
        /// The dropped request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// Retry attempts consumed before giving up.
        attempts: u32,
    },
    /// A per-workload circuit breaker changed state.
    BreakerTransition {
        /// Emission time.
        at: SimTime,
        /// The workload whose breaker moved.
        workload: String,
        /// State before (`"closed"`, `"open"` or `"half_open"`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// The degradation ladder stepped up (shedding more) or down
    /// (restoring service).
    LadderStep {
        /// Emission time.
        at: SimTime,
        /// Ladder level before the step.
        from_level: u8,
        /// Ladder level after the step (0 = normal service, 3 = maximum
        /// degradation).
        to_level: u8,
    },
    /// A controller checkpoint was written.
    CheckpointTaken {
        /// Emission time.
        at: SimTime,
        /// Control cycle the checkpoint captures.
        cycle: u64,
        /// Size of the serialized checkpoint, bytes.
        bytes: usize,
    },
    /// A restarted controller finished reconciling a checkpoint (or an
    /// empty cold-restart state) against the live engine.
    ControllerRestored {
        /// Emission time.
        at: SimTime,
        /// Control cycle the restored checkpoint was taken at.
        from_cycle: u64,
        /// Running queries re-adopted from the checkpoint.
        readopted: usize,
        /// Checkpointed requests re-queued because their engine query
        /// vanished in the crash.
        requeued: usize,
        /// Live engine queries killed because no checkpoint entry owned
        /// them.
        orphans_killed: usize,
    },
    /// A stored checkpoint generation failed envelope verification
    /// (checksum mismatch, truncation, or a torn staged write) and was
    /// rejected rather than restored.
    CheckpointRejected {
        /// Emission time.
        at: SimTime,
        /// Generation number of the rejected envelope.
        generation: u64,
        /// Why verification failed.
        reason: String,
    },
    /// Recovery walked back the generation chain: the newest checkpoint
    /// was unusable, and an older verified generation was restored
    /// instead.
    CheckpointFallback {
        /// Emission time.
        at: SimTime,
        /// Newest (rejected) generation.
        from_generation: u64,
        /// Generation actually restored.
        to_generation: u64,
        /// Generations rejected before a verified one was found.
        rejected: usize,
    },
    /// The runaway watchdog moved a request into the poison quarantine.
    Quarantined {
        /// Emission time.
        at: SimTime,
        /// The quarantined request.
        request: RequestId,
        /// The request's workload.
        workload: String,
        /// Kill strikes accumulated when the threshold tripped.
        kills: u32,
    },
    /// A quarantined request tried to re-enter and was turned away.
    QuarantineRejected {
        /// Emission time.
        at: SimTime,
        /// The rejected request.
        request: RequestId,
        /// The request's workload.
        workload: String,
    },
    /// The cluster front-end routed an arriving request to a shard.
    Routed {
        /// Emission time.
        at: SimTime,
        /// The routed request.
        request: RequestId,
        /// The request's workload label.
        workload: String,
        /// The shard the request was sent to.
        shard: usize,
    },
    /// The cluster front-end moved queued work off a failed shard onto a
    /// survivor.
    Rerouted {
        /// Emission time.
        at: SimTime,
        /// The re-routed request.
        request: RequestId,
        /// The request's workload label.
        workload: String,
        /// The shard the request was originally routed to.
        from_shard: usize,
        /// The surviving shard that took the request over.
        to_shard: usize,
    },
    /// The cluster front-end shed an arriving request because every live
    /// shard reported saturation.
    ClusterShed {
        /// Emission time.
        at: SimTime,
        /// The shed request.
        request: RequestId,
        /// The request's workload label.
        workload: String,
    },
    /// The simulated link lost a routed message in flight (loss, or a
    /// partition swallowing it); the front-end's retransmit timer will
    /// re-send it.
    LinkDropped {
        /// Emission time.
        at: SimTime,
        /// The request the lost message carried.
        request: RequestId,
        /// The request's workload label.
        workload: String,
        /// The shard the message was addressed to.
        shard: usize,
    },
    /// A shard inbox received a message it had already accepted (a
    /// retransmit racing a lost ack, or link-level duplication) and
    /// suppressed the copy by its `MsgId`.
    Redelivered {
        /// Emission time.
        at: SimTime,
        /// The request the duplicate message carried.
        request: RequestId,
        /// The request's workload label.
        workload: String,
        /// The shard that deduplicated the redelivery.
        shard: usize,
    },
    /// The failure detector changed its verdict on a shard (healthy ↔
    /// gray ↔ dead) from heartbeat and ack latency evidence.
    ShardSuspected {
        /// Emission time.
        at: SimTime,
        /// The shard whose health classification changed.
        shard: usize,
        /// The new verdict (`"healthy"`, `"gray"` or `"dead"`).
        health: &'static str,
        /// The suspicion score at the transition (smoothed RTT over the
        /// expected RTT; higher = more suspect).
        score: f64,
    },
    /// The front-end re-dispatched an in-flight request from a suspected
    /// shard to a healthy one (first completion wins; the loser is
    /// cancelled through the orphan-kill path).
    Hedged {
        /// Emission time.
        at: SimTime,
        /// The hedged request.
        request: RequestId,
        /// The request's workload label.
        workload: String,
        /// The suspected shard the original copy was addressed to.
        from_shard: usize,
        /// The healthy shard the hedge copy was sent to.
        to_shard: usize,
    },
    /// A partition window around a shard ended and the front-end
    /// reconciled: buffered completion feedback flushed, duplicate
    /// completions discounted, stale hedged twins cancelled.
    PartitionHealed {
        /// Emission time.
        at: SimTime,
        /// The shard whose partition healed.
        shard: usize,
        /// Completion feedback entries flushed at the heal.
        flushed: u64,
        /// Flushed completions discounted as duplicates of hedge winners.
        duplicates: u64,
        /// Hedged twins cancelled because their winner completed in the
        /// partition.
        cancelled: u64,
    },
    /// The adaptive admission backpressure gate changed its door setting.
    BackpressureStep {
        /// Emission time.
        at: SimTime,
        /// Admit fraction before the adjustment.
        from_fraction: f64,
        /// Admit fraction after the adjustment.
        to_fraction: f64,
        /// The smoothed queue-depth signal that drove the adjustment.
        queue_ema: f64,
    },
    /// The retry-budget token bucket held matured retries back this cycle
    /// (retry-storm suppression).
    RetrySuppressed {
        /// Emission time.
        at: SimTime,
        /// Matured retries held parked for lack of tokens.
        held: usize,
    },
    /// The cluster autoscaler provisioned a shard out of the retired pool;
    /// its caches start cold (every partition routed to it pays the
    /// cold-working-set penalty until re-warmed).
    ShardSpawned {
        /// Emission time.
        at: SimTime,
        /// The shard entering service.
        shard: usize,
    },
    /// The cluster autoscaler took a shard out of the routable set; it
    /// finishes its residue before retiring.
    ShardDraining {
        /// Emission time.
        at: SimTime,
        /// The shard being drained.
        shard: usize,
    },
    /// A draining shard retired: any residue left at the drain deadline
    /// was checkpoint-stripped and rerouted through the exactly-once
    /// finished book.
    ShardRetired {
        /// Emission time.
        at: SimTime,
        /// The shard that retired.
        shard: usize,
        /// Requests rerouted to surviving shards at retirement.
        rerouted: usize,
    },
}

impl WlmEvent {
    /// The event's emission time.
    pub fn at(&self) -> SimTime {
        match self {
            WlmEvent::Classified { at, .. }
            | WlmEvent::Admitted { at, .. }
            | WlmEvent::Deferred { at, .. }
            | WlmEvent::Rejected { at, .. }
            | WlmEvent::Scheduled { at, .. }
            | WlmEvent::Throttled { at, .. }
            | WlmEvent::Reprioritized { at, .. }
            | WlmEvent::Suspended { at, .. }
            | WlmEvent::Resumed { at, .. }
            | WlmEvent::Killed { at, .. }
            | WlmEvent::Resubmitted { at, .. }
            | WlmEvent::Completed { at, .. }
            | WlmEvent::PolicyChanged { at, .. }
            | WlmEvent::MapePlan { at, .. }
            | WlmEvent::FaultInjected { at, .. }
            | WlmEvent::RetryScheduled { at, .. }
            | WlmEvent::RetryExhausted { at, .. }
            | WlmEvent::BreakerTransition { at, .. }
            | WlmEvent::LadderStep { at, .. }
            | WlmEvent::CheckpointTaken { at, .. }
            | WlmEvent::ControllerRestored { at, .. }
            | WlmEvent::CheckpointRejected { at, .. }
            | WlmEvent::CheckpointFallback { at, .. }
            | WlmEvent::Quarantined { at, .. }
            | WlmEvent::QuarantineRejected { at, .. }
            | WlmEvent::Routed { at, .. }
            | WlmEvent::Rerouted { at, .. }
            | WlmEvent::ClusterShed { at, .. }
            | WlmEvent::LinkDropped { at, .. }
            | WlmEvent::Redelivered { at, .. }
            | WlmEvent::ShardSuspected { at, .. }
            | WlmEvent::Hedged { at, .. }
            | WlmEvent::PartitionHealed { at, .. }
            | WlmEvent::BackpressureStep { at, .. }
            | WlmEvent::RetrySuppressed { at, .. }
            | WlmEvent::ShardSpawned { at, .. }
            | WlmEvent::ShardDraining { at, .. }
            | WlmEvent::ShardRetired { at, .. } => *at,
        }
    }

    /// The workload the event concerns, if any ([`WlmEvent::MapePlan`],
    /// [`WlmEvent::FaultInjected`] and [`WlmEvent::LadderStep`] are
    /// system-wide).
    pub fn workload(&self) -> Option<&str> {
        match self {
            WlmEvent::Classified { workload, .. }
            | WlmEvent::Admitted { workload, .. }
            | WlmEvent::Deferred { workload, .. }
            | WlmEvent::Rejected { workload, .. }
            | WlmEvent::Scheduled { workload, .. }
            | WlmEvent::Throttled { workload, .. }
            | WlmEvent::Reprioritized { workload, .. }
            | WlmEvent::Suspended { workload, .. }
            | WlmEvent::Resumed { workload, .. }
            | WlmEvent::Killed { workload, .. }
            | WlmEvent::Resubmitted { workload, .. }
            | WlmEvent::Completed { workload, .. }
            | WlmEvent::PolicyChanged { workload, .. }
            | WlmEvent::RetryScheduled { workload, .. }
            | WlmEvent::RetryExhausted { workload, .. }
            | WlmEvent::BreakerTransition { workload, .. }
            | WlmEvent::Quarantined { workload, .. }
            | WlmEvent::QuarantineRejected { workload, .. }
            | WlmEvent::Routed { workload, .. }
            | WlmEvent::Rerouted { workload, .. }
            | WlmEvent::ClusterShed { workload, .. }
            | WlmEvent::LinkDropped { workload, .. }
            | WlmEvent::Redelivered { workload, .. }
            | WlmEvent::Hedged { workload, .. } => Some(workload),
            WlmEvent::MapePlan { .. }
            | WlmEvent::FaultInjected { .. }
            | WlmEvent::LadderStep { .. }
            | WlmEvent::CheckpointTaken { .. }
            | WlmEvent::ControllerRestored { .. }
            | WlmEvent::CheckpointRejected { .. }
            | WlmEvent::CheckpointFallback { .. }
            | WlmEvent::ShardSuspected { .. }
            | WlmEvent::PartitionHealed { .. }
            | WlmEvent::BackpressureStep { .. }
            | WlmEvent::RetrySuppressed { .. }
            | WlmEvent::ShardSpawned { .. }
            | WlmEvent::ShardDraining { .. }
            | WlmEvent::ShardRetired { .. } => None,
        }
    }

    /// Short name of the variant (the `event` tag of the JSON encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            WlmEvent::Classified { .. } => "classified",
            WlmEvent::Admitted { .. } => "admitted",
            WlmEvent::Deferred { .. } => "deferred",
            WlmEvent::Rejected { .. } => "rejected",
            WlmEvent::Scheduled { .. } => "scheduled",
            WlmEvent::Throttled { .. } => "throttled",
            WlmEvent::Reprioritized { .. } => "reprioritized",
            WlmEvent::Suspended { .. } => "suspended",
            WlmEvent::Resumed { .. } => "resumed",
            WlmEvent::Killed { .. } => "killed",
            WlmEvent::Resubmitted { .. } => "resubmitted",
            WlmEvent::Completed { .. } => "completed",
            WlmEvent::PolicyChanged { .. } => "policy_changed",
            WlmEvent::MapePlan { .. } => "mape_plan",
            WlmEvent::FaultInjected { .. } => "fault_injected",
            WlmEvent::RetryScheduled { .. } => "retry_scheduled",
            WlmEvent::RetryExhausted { .. } => "retry_exhausted",
            WlmEvent::BreakerTransition { .. } => "breaker_transition",
            WlmEvent::LadderStep { .. } => "ladder_step",
            WlmEvent::CheckpointTaken { .. } => "checkpoint_taken",
            WlmEvent::ControllerRestored { .. } => "controller_restored",
            WlmEvent::CheckpointRejected { .. } => "checkpoint_rejected",
            WlmEvent::CheckpointFallback { .. } => "checkpoint_fallback",
            WlmEvent::Quarantined { .. } => "quarantined",
            WlmEvent::QuarantineRejected { .. } => "quarantine_rejected",
            WlmEvent::Routed { .. } => "routed",
            WlmEvent::Rerouted { .. } => "rerouted",
            WlmEvent::ClusterShed { .. } => "cluster_shed",
            WlmEvent::LinkDropped { .. } => "link_dropped",
            WlmEvent::Redelivered { .. } => "redelivered",
            WlmEvent::ShardSuspected { .. } => "shard_suspected",
            WlmEvent::Hedged { .. } => "hedged",
            WlmEvent::PartitionHealed { .. } => "partition_healed",
            WlmEvent::BackpressureStep { .. } => "backpressure_step",
            WlmEvent::RetrySuppressed { .. } => "retry_suppressed",
            WlmEvent::ShardSpawned { .. } => "shard_spawned",
            WlmEvent::ShardDraining { .. } => "shard_draining",
            WlmEvent::ShardRetired { .. } => "shard_retired",
        }
    }
}

/// A consumer of the event stream.
///
/// `on_event` must not emit back into the bus it is subscribed to (the bus
/// is borrowed for the duration of the delivery).
pub trait EventSubscriber {
    /// A manager-level decision event.
    fn on_event(&mut self, event: &WlmEvent);

    /// A low-level engine lifecycle event (default: ignore).
    fn on_engine_event(&mut self, _event: &EngineEvent) {}
}

/// The manager's event bus: a list of subscribers plus an emission count.
#[derive(Default)]
pub struct EventBus {
    subscribers: Vec<Box<dyn EventSubscriber>>,
    emitted: u64,
}

impl EventBus {
    /// A bus pre-subscribed to the thread-local trace ring, if
    /// [`install_thread_trace`] installed one on this thread. External
    /// control planes with their own decision stream (the cluster
    /// front-end in `wlm-cluster`) build their bus through this so the
    /// experiment harness's `--trace` surface sees their events too.
    pub fn with_thread_trace() -> EventBus {
        let mut bus = EventBus::default();
        if let Some(recorder) = thread_trace_recorder() {
            bus.subscribe(Box::new(recorder));
        }
        bus
    }

    /// Attach a subscriber.
    pub fn subscribe(&mut self, sub: Box<dyn EventSubscriber>) {
        self.subscribers.push(sub);
    }

    /// Whether anyone is listening. The manager checks this once per cycle
    /// and skips event construction when false.
    pub fn is_active(&self) -> bool {
        !self.subscribers.is_empty()
    }

    /// Total decision events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Deliver a decision event to every subscriber.
    pub fn emit(&mut self, event: WlmEvent) {
        self.emitted += 1;
        for sub in &mut self.subscribers {
            sub.on_event(&event);
        }
    }

    /// Deliver an engine event to every subscriber.
    pub fn emit_engine(&mut self, event: &EngineEvent) {
        for sub in &mut self.subscribers {
            sub.on_engine_event(event);
        }
    }
}

/// A clonable handle for publishing events onto a manager's bus from
/// outside the manager (facility emulations, the MAPE loop). Obtain one
/// with [`WorkloadManager::event_sink`](crate::manager::WorkloadManager::event_sink).
#[derive(Clone)]
pub struct EventSink {
    bus: Rc<RefCell<EventBus>>,
}

impl EventSink {
    pub(crate) fn new(bus: Rc<RefCell<EventBus>>) -> Self {
        EventSink { bus }
    }

    /// Whether the bus has subscribers (emission is pointless otherwise).
    pub fn is_active(&self) -> bool {
        self.bus.borrow().is_active()
    }

    /// Publish an event.
    pub fn emit(&self, event: WlmEvent) {
        self.bus.borrow_mut().emit(event);
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink").finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct RingState {
    buf: VecDeque<WlmEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded ring-buffer recorder: keeps the most recent `capacity`
/// decision events. Clones share the same buffer, so keep one clone as the
/// reader and subscribe another:
///
/// ```
/// use wlm_core::api::WlmBuilder;
/// use wlm_core::events::RingRecorder;
///
/// let mut mgr = WlmBuilder::new().build().expect("valid configuration");
/// let trace = RingRecorder::new(1024);
/// mgr.subscribe(Box::new(trace.clone()));
/// // ... run ...
/// assert!(trace.events().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RingRecorder {
    state: Rc<RefCell<RingState>>,
}

impl RingRecorder {
    /// A recorder holding up to `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            state: Rc::new(RefCell::new(RingState {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// A copy of the recorded events, oldest first.
    pub fn events(&self) -> Vec<WlmEvent> {
        self.state.borrow().buf.iter().cloned().collect()
    }

    /// Drain the recorded events, oldest first, leaving the ring empty.
    pub fn take(&self) -> Vec<WlmEvent> {
        self.state.borrow_mut().buf.drain(..).collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.state.borrow().buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.state.borrow().buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.borrow().dropped
    }
}

impl EventSubscriber for RingRecorder {
    fn on_event(&mut self, event: &WlmEvent) {
        let mut state = self.state.borrow_mut();
        if state.buf.len() == state.capacity {
            state.buf.pop_front();
            state.dropped += 1;
        }
        state.buf.push_back(event.clone());
    }
}

/// Per-workload decision counts maintained from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EventCounts {
    /// `Classified` events.
    pub classified: u64,
    /// `Admitted` events.
    pub admitted: u64,
    /// `Deferred` events.
    pub deferred: u64,
    /// `Rejected` events.
    pub rejected: u64,
    /// `Scheduled` events.
    pub scheduled: u64,
    /// `Throttled` events.
    pub throttled: u64,
    /// `Reprioritized` events.
    pub reprioritized: u64,
    /// `Suspended` events.
    pub suspended: u64,
    /// `Resumed` events.
    pub resumed: u64,
    /// `Killed` events.
    pub killed: u64,
    /// `Resubmitted` events.
    pub resubmitted: u64,
    /// `Completed` events.
    pub completed: u64,
    /// `RetryScheduled` events.
    pub retries_scheduled: u64,
    /// `RetryExhausted` events.
    pub retries_exhausted: u64,
    /// `BreakerTransition` events.
    pub breaker_transitions: u64,
    /// `Quarantined` events.
    pub quarantined: u64,
    /// `QuarantineRejected` events.
    pub quarantine_rejections: u64,
    /// `Routed` events (cluster front-end).
    pub routed: u64,
    /// `Rerouted` events (cluster front-end).
    pub rerouted: u64,
    /// `ClusterShed` events (cluster front-end).
    pub cluster_shed: u64,
    /// `LinkDropped` events (cluster link layer).
    pub link_dropped: u64,
    /// `Redelivered` events (cluster link layer).
    pub redelivered: u64,
    /// `Hedged` events (cluster hedged re-dispatch).
    pub hedged: u64,
}

/// A subscriber maintaining [`EventCounts`] per workload. Clones share the
/// same counters (subscribe one clone, read from another).
#[derive(Debug, Clone, Default)]
pub struct WorkloadEventCounters {
    counts: Rc<RefCell<BTreeMap<String, EventCounts>>>,
}

impl WorkloadEventCounters {
    /// Fresh, empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts for one workload (zeros if never seen).
    pub fn get(&self, workload: &str) -> EventCounts {
        self.counts
            .borrow()
            .get(workload)
            .copied()
            .unwrap_or_default()
    }

    /// All per-workload counts.
    pub fn all(&self) -> BTreeMap<String, EventCounts> {
        self.counts.borrow().clone()
    }
}

impl EventSubscriber for WorkloadEventCounters {
    fn on_event(&mut self, event: &WlmEvent) {
        let Some(workload) = event.workload() else {
            return;
        };
        let mut counts = self.counts.borrow_mut();
        let c = counts.entry(workload.to_string()).or_default();
        match event {
            WlmEvent::Classified { .. } => c.classified += 1,
            WlmEvent::Admitted { .. } => c.admitted += 1,
            WlmEvent::Deferred { .. } => c.deferred += 1,
            WlmEvent::Rejected { .. } => c.rejected += 1,
            WlmEvent::Scheduled { .. } => c.scheduled += 1,
            WlmEvent::Throttled { .. } => c.throttled += 1,
            WlmEvent::Reprioritized { .. } => c.reprioritized += 1,
            WlmEvent::Suspended { .. } => c.suspended += 1,
            WlmEvent::Resumed { .. } => c.resumed += 1,
            WlmEvent::Killed { .. } => c.killed += 1,
            WlmEvent::Resubmitted { .. } => c.resubmitted += 1,
            WlmEvent::Completed { .. } => c.completed += 1,
            WlmEvent::RetryScheduled { .. } => c.retries_scheduled += 1,
            WlmEvent::RetryExhausted { .. } => c.retries_exhausted += 1,
            WlmEvent::BreakerTransition { .. } => c.breaker_transitions += 1,
            WlmEvent::Quarantined { .. } => c.quarantined += 1,
            WlmEvent::QuarantineRejected { .. } => c.quarantine_rejections += 1,
            WlmEvent::Routed { .. } => c.routed += 1,
            WlmEvent::Rerouted { .. } => c.rerouted += 1,
            WlmEvent::ClusterShed { .. } => c.cluster_shed += 1,
            WlmEvent::LinkDropped { .. } => c.link_dropped += 1,
            WlmEvent::Redelivered { .. } => c.redelivered += 1,
            WlmEvent::Hedged { .. } => c.hedged += 1,
            WlmEvent::PolicyChanged { .. }
            | WlmEvent::MapePlan { .. }
            | WlmEvent::FaultInjected { .. }
            | WlmEvent::LadderStep { .. }
            | WlmEvent::CheckpointTaken { .. }
            | WlmEvent::ControllerRestored { .. }
            | WlmEvent::CheckpointRejected { .. }
            | WlmEvent::CheckpointFallback { .. }
            | WlmEvent::ShardSuspected { .. }
            | WlmEvent::PartitionHealed { .. }
            | WlmEvent::BackpressureStep { .. }
            | WlmEvent::RetrySuppressed { .. }
            | WlmEvent::ShardSpawned { .. }
            | WlmEvent::ShardDraining { .. }
            | WlmEvent::ShardRetired { .. } => {}
        }
    }
}

/// A bus-fed monitor keeping a bounded window of recent response times per
/// workload, built from `Completed` events — the MAPE monitor phase
/// consuming the bus instead of polling manager internals. Clones share
/// state.
#[derive(Debug, Clone)]
pub struct ResponseWindowMonitor {
    state: Rc<RefCell<BTreeMap<String, VecDeque<f64>>>>,
    window: usize,
}

impl ResponseWindowMonitor {
    /// A monitor keeping up to `window` samples per workload (at least 1).
    pub fn new(window: usize) -> Self {
        ResponseWindowMonitor {
            state: Rc::new(RefCell::new(BTreeMap::new())),
            window: window.max(1),
        }
    }

    /// Mean of the recent window for `workload`, if any samples exist.
    pub fn recent_mean(&self, workload: &str) -> Option<f64> {
        self.state
            .borrow()
            .get(workload)
            .filter(|v| !v.is_empty())
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
    }
}

impl EventSubscriber for ResponseWindowMonitor {
    fn on_event(&mut self, event: &WlmEvent) {
        if let WlmEvent::Completed {
            workload,
            response_secs,
            ..
        } = event
        {
            let mut state = self.state.borrow_mut();
            let window = state.entry(workload.clone()).or_default();
            window.push_back(*response_secs);
            while window.len() > self.window {
                window.pop_front();
            }
        }
    }
}

thread_local! {
    static THREAD_TRACE: RefCell<Option<RingRecorder>> = const { RefCell::new(None) };
}

/// Install a thread-local trace ring of the given capacity: every
/// [`WorkloadManager`](crate::manager::WorkloadManager) constructed on this
/// thread afterwards automatically subscribes a recorder feeding the
/// returned ring. The parallel experiment runner uses this to collect
/// traces from managers built deep inside experiment functions.
pub fn install_thread_trace(capacity: usize) -> RingRecorder {
    let recorder = RingRecorder::new(capacity);
    THREAD_TRACE.with(|t| *t.borrow_mut() = Some(recorder.clone()));
    recorder
}

/// Remove the thread-local trace ring, if one is installed.
pub fn clear_thread_trace() {
    THREAD_TRACE.with(|t| *t.borrow_mut() = None);
}

/// The recorder managers on this thread should auto-subscribe, if any.
pub(crate) fn thread_trace_recorder() -> Option<RingRecorder> {
    THREAD_TRACE.with(|t| t.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(at: u64, workload: &str, response_secs: f64) -> WlmEvent {
        WlmEvent::Completed {
            at: SimTime(at),
            query: QueryId(1),
            request: RequestId(1),
            workload: workload.to_string(),
            response_secs,
        }
    }

    #[test]
    fn bus_counts_and_delivers() {
        let mut bus = EventBus::default();
        assert!(!bus.is_active());
        let ring = RingRecorder::new(8);
        bus.subscribe(Box::new(ring.clone()));
        assert!(bus.is_active());
        bus.emit(completed(1, "oltp", 0.5));
        assert_eq!(bus.emitted(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].kind(), "completed");
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut ring = RingRecorder::new(2);
        for i in 1..=3u64 {
            ring.on_event(&completed(i, "oltp", 0.1));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let events = ring.take();
        assert_eq!(events[0].at(), SimTime(2));
        assert_eq!(events[1].at(), SimTime(3));
        assert!(ring.is_empty());
    }

    #[test]
    fn counters_track_per_workload() {
        let mut counters = WorkloadEventCounters::new();
        counters.on_event(&completed(1, "oltp", 0.1));
        counters.on_event(&completed(2, "oltp", 0.2));
        counters.on_event(&completed(3, "bi", 9.0));
        counters.on_event(&WlmEvent::MapePlan {
            at: SimTime(4),
            decision: "steady",
            escalation: 0,
        });
        assert_eq!(counters.get("oltp").completed, 2);
        assert_eq!(counters.get("bi").completed, 1);
        assert_eq!(counters.all().len(), 2);
    }

    #[test]
    fn response_window_is_bounded() {
        let mut monitor = ResponseWindowMonitor::new(2);
        assert_eq!(monitor.recent_mean("oltp"), None);
        monitor.on_event(&completed(1, "oltp", 1.0));
        monitor.on_event(&completed(2, "oltp", 2.0));
        monitor.on_event(&completed(3, "oltp", 4.0));
        assert_eq!(monitor.recent_mean("oltp"), Some(3.0));
    }

    #[test]
    fn events_serialize_with_tag() {
        let json = serde_json::to_string(&completed(7, "oltp", 0.25)).unwrap();
        assert!(json.contains("\"event\":\"completed\""), "{json}");
        assert!(json.contains("\"workload\":\"oltp\""), "{json}");
    }
}
