//! Stage 1 — identification: poll the workload sources and classify every
//! arrival into its workload (the taxonomy's characterization class).
//!
//! Emits [`WlmEvent::Classified`] per arrival.

use super::context::CycleContext;
use super::WorkloadManager;
use crate::api::ManagedRequest;
use crate::events::WlmEvent;
use wlm_workload::generators::Source;
use wlm_workload::request::Request;

impl WorkloadManager {
    /// Classify one raw request into a [`ManagedRequest`]: cost estimation,
    /// workload assignment, then importance and weight resolution against
    /// the workload's policy.
    pub(super) fn classify(&mut self, request: Request) -> ManagedRequest {
        let estimate = self.cost_model.estimate_spec(&request.spec);
        let classification = self.characterizer.classify(&request, &estimate);
        let policy = self.policies.get(&classification.workload);
        let importance = policy
            .map(|p| p.importance)
            .unwrap_or(classification.importance);
        let weight = if self.uniform_weights {
            // Only explicit policy weights survive; importance is invisible
            // to an unmanaged engine.
            policy.and_then(|p| p.weight).unwrap_or(1.0)
        } else {
            policy
                .map(|p| p.effective_weight())
                .unwrap_or_else(|| importance.default_weight())
        };
        ManagedRequest {
            request,
            estimate,
            workload: classification.workload,
            importance,
            weight,
        }
    }

    /// Poll `source` over the cycle window and classify every arrival into
    /// the cycle's incoming batch.
    pub(super) fn stage_identify(&mut self, cx: &mut CycleContext, source: &mut dyn Source) {
        let arrivals = source.poll(cx.from, cx.to);
        cx.incoming.reserve(arrivals.len());
        for request in arrivals {
            let req = self.classify(request);
            if cx.trace {
                self.emit(WlmEvent::Classified {
                    at: cx.from,
                    request: req.request.id,
                    workload: req.workload.clone(),
                });
            }
            cx.incoming.push(req);
        }
    }
}
