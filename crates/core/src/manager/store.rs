//! Durable checkpoint store: checksummed, generation-numbered envelopes
//! with a simulated atomic write protocol and walk-back recovery.
//!
//! [`ControllerState::to_bytes`] produces a faithful image of the
//! controller, but the seed repo trusted those bytes blindly: a torn
//! write, a flipped bit or a truncated tail at checkpoint time would be
//! restored as-is — garbage queues, or a panic in the JSON parser. This
//! module wraps every checkpoint in a [`CheckpointEnvelope`]:
//!
//! ```text
//!   magic "WLCK" | version | generation | cycle | payload_len | fnv1a64 | payload
//! ```
//!
//! and stores the last [`StoreConfig::keep_generations`] envelopes as a
//! **generation chain**. Writes follow a simulated atomic protocol —
//! stage the new envelope, verify it back, then swap it in as the newest
//! generation — so a torn write caught at verify time never replaces a
//! good checkpoint. Corruption that lands *after* the swap (bit rot,
//! truncation at rest) is caught at recovery time instead:
//! [`CheckpointStore::load_latest`] walks the chain newest-first,
//! rejects every generation that fails verification, and returns the
//! newest one that passes, reporting exactly what it skipped so the
//! manager can emit [`WlmEvent::CheckpointRejected`] /
//! [`WlmEvent::CheckpointFallback`].
//!
//! The ablation arm ([`StoreConfig::envelope`] = false) stores raw
//! payload bytes with no checksum and restores the newest blindly —
//! what the seed repo did, and what experiment E26 measures against.

use super::checkpoint::{ControllerState, RecoveryReport};
use super::WorkloadManager;
use crate::error::Error;
use crate::events::WlmEvent;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Leading magic of a sealed envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"WLCK";
/// Envelope format version (independent of the payload's
/// [`CHECKPOINT_VERSION`](super::checkpoint::CHECKPOINT_VERSION)).
pub const ENVELOPE_VERSION: u32 = 1;
/// Fixed header size: magic, version, generation, cycle, payload length
/// and checksum.
pub const ENVELOPE_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch torn
/// writes, bit flips and truncation (this is an integrity check against
/// simulated media faults, not an adversary).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How a checkpoint write (or the bytes at rest) gets damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CorruptionKind {
    /// The staged write stops partway: the envelope is cut mid-payload.
    /// Caught by write verification before the swap when
    /// [`StoreConfig::verify_writes`] is on.
    TornWrite,
    /// One payload bit flips at rest, after the swap. Only the checksum
    /// can catch it, and only at recovery time.
    BitFlip,
    /// The stored bytes lose their tail at rest, after the swap.
    Truncate,
}

impl CorruptionKind {
    /// Stable snake_case name (used in schedule literals and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            CorruptionKind::TornWrite => "torn_write",
            CorruptionKind::BitFlip => "bit_flip",
            CorruptionKind::Truncate => "truncate",
        }
    }
}

/// Parsed envelope header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeHeader {
    /// Envelope format version.
    pub version: u32,
    /// Generation number (monotonic per store).
    pub generation: u64,
    /// Control cycle the payload was captured at.
    pub cycle: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Seal `payload` into a checksummed envelope.
pub fn seal(payload: &[u8], generation: u64, cycle: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + payload.len());
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&cycle.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and verify an envelope, returning its header and payload.
pub fn open(bytes: &[u8]) -> Result<(EnvelopeHeader, &[u8]), Error> {
    if bytes.len() < ENVELOPE_HEADER_LEN {
        return Err(Error::Checkpoint(format!(
            "envelope truncated: {} bytes is shorter than the {ENVELOPE_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..4] != ENVELOPE_MAGIC {
        return Err(Error::Checkpoint("bad envelope magic".into()));
    }
    let u32le = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let u64le = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let header = EnvelopeHeader {
        version: u32le(4),
        generation: u64le(8),
        cycle: u64le(16),
        payload_len: u64le(24),
        checksum: u64le(32),
    };
    if header.version != ENVELOPE_VERSION {
        return Err(Error::Checkpoint(format!(
            "unsupported envelope version {} (this store reads version {ENVELOPE_VERSION})",
            header.version
        )));
    }
    let payload = &bytes[ENVELOPE_HEADER_LEN..];
    if payload.len() as u64 != header.payload_len {
        return Err(Error::Checkpoint(format!(
            "payload truncated: header promises {} bytes, {} present",
            header.payload_len,
            payload.len()
        )));
    }
    let sum = fnv1a64(payload);
    if sum != header.checksum {
        return Err(Error::Checkpoint(format!(
            "checksum mismatch: stored {:#018x}, computed {sum:#018x}",
            header.checksum
        )));
    }
    Ok((header, payload))
}

/// Store tuning.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Generations retained; older ones are dropped on commit.
    pub keep_generations: usize,
    /// Read the staged envelope back and verify it before the swap.
    /// Off, a torn write replaces the newest good checkpoint.
    pub verify_writes: bool,
    /// Seal payloads in checksummed envelopes. Off is the blind
    /// ablation: raw bytes, no verification, newest restored as-is.
    pub envelope: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            keep_generations: 4,
            verify_writes: true,
            envelope: true,
        }
    }
}

/// One stored generation.
#[derive(Debug, Clone)]
struct Slot {
    generation: u64,
    bytes: Vec<u8>,
}

/// What one [`CheckpointStore::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CommitReport {
    /// Generation number assigned to this checkpoint.
    pub generation: u64,
    /// A torn staged write failed verification and was re-staged from
    /// the in-memory state before the swap.
    pub torn_write_caught: bool,
    /// Corruption applied to the stored bytes (armed fault that the
    /// write protocol could not catch).
    pub corrupted: Option<CorruptionKind>,
}

/// Everything recovery learned walking the generation chain.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The newest verified state, if any generation passed.
    pub state: Option<ControllerState>,
    /// Generation the state came from.
    pub generation: u64,
    /// Newest generation present in the store (equals `generation` when
    /// no fallback happened).
    pub newest_generation: u64,
    /// Generations rejected before a verified one was found, newest
    /// first, with the verification error.
    pub rejected: Vec<(u64, String)>,
}

impl LoadOutcome {
    /// True when recovery had to walk past the newest generation.
    pub fn fell_back(&self) -> bool {
        self.state.is_some() && !self.rejected.is_empty()
    }
}

/// A bounded chain of checkpoint generations with simulated
/// atomic-write semantics and fault hooks for `wlm-chaos`.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    cfg: StoreConfig,
    next_generation: u64,
    slots: VecDeque<Slot>,
    armed: Option<CorruptionKind>,
    torn_writes_caught: u64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        CheckpointStore {
            cfg,
            next_generation: 0,
            slots: VecDeque::new(),
            armed: None,
            torn_writes_caught: 0,
        }
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Generations currently retained.
    pub fn generations(&self) -> usize {
        self.slots.len()
    }

    /// Newest generation number, if any checkpoint was ever committed.
    pub fn newest_generation(&self) -> Option<u64> {
        self.slots.back().map(|s| s.generation)
    }

    /// Torn staged writes caught by verification so far.
    pub fn torn_writes_caught(&self) -> u64 {
        self.torn_writes_caught
    }

    /// Arm a one-shot corruption fault against the *next* commit: a
    /// torn write hits the staged copy (catchable by verification);
    /// bit flips and truncation land at rest, after the swap.
    pub fn arm_fault(&mut self, kind: CorruptionKind) {
        self.armed = Some(kind);
    }

    /// The armed one-shot fault, if any.
    pub fn armed(&self) -> Option<CorruptionKind> {
        self.armed
    }

    /// Damage the newest stored generation in place (at-rest corruption
    /// between checkpoint and crash). No-op on an empty store.
    pub fn corrupt_latest(&mut self, kind: CorruptionKind) {
        if let Some(slot) = self.slots.back_mut() {
            corrupt_bytes(&mut slot.bytes, kind);
        }
    }

    /// Commit one checkpoint through the staged-write protocol: seal,
    /// stage, verify (when configured), swap, trim the chain.
    pub fn commit(&mut self, state: &ControllerState) -> CommitReport {
        let payload = state.to_bytes();
        let generation = self.next_generation;
        self.next_generation += 1;
        let mut staged = if self.cfg.envelope {
            seal(&payload, generation, state.cycle)
        } else {
            payload.clone()
        };
        let mut report = CommitReport {
            generation,
            torn_write_caught: false,
            corrupted: None,
        };
        match self.armed.take() {
            Some(CorruptionKind::TornWrite) => {
                corrupt_bytes(&mut staged, CorruptionKind::TornWrite);
                // Verification reads the staged copy back before the
                // swap; a torn write is the fault it exists to catch.
                // The writer still holds the state, so it re-stages a
                // clean copy. Without verification the torn envelope
                // is swapped in as the newest generation.
                if self.cfg.envelope && self.cfg.verify_writes {
                    debug_assert!(open(&staged).is_err(), "torn staged write must not verify");
                    staged = seal(&payload, generation, state.cycle);
                    self.torn_writes_caught += 1;
                    report.torn_write_caught = true;
                } else {
                    report.corrupted = Some(CorruptionKind::TornWrite);
                }
            }
            Some(kind) => {
                // At-rest damage: lands after the swap, so write
                // verification never sees it.
                corrupt_bytes(&mut staged, kind);
                report.corrupted = Some(kind);
            }
            None => {}
        }
        self.slots.push_back(Slot {
            generation,
            bytes: staged,
        });
        while self.slots.len() > self.cfg.keep_generations.max(1) {
            self.slots.pop_front();
        }
        report
    }

    /// Walk the generation chain newest-first and return the newest
    /// state that verifies, plus every generation rejected on the way.
    /// In blind (no-envelope) mode the newest bytes are parsed as-is:
    /// whatever corruption they carry flows straight into the result.
    pub fn load_latest(&self) -> LoadOutcome {
        let newest = self.newest_generation().unwrap_or(0);
        let mut rejected = Vec::new();
        if !self.cfg.envelope {
            // Blind ablation: no checksum, no fallback — the newest
            // bytes are trusted the way the seed repo trusted them.
            let Some(slot) = self.slots.back() else {
                return LoadOutcome {
                    state: None,
                    generation: 0,
                    newest_generation: newest,
                    rejected,
                };
            };
            let state = match ControllerState::from_bytes(&slot.bytes) {
                Ok(state) => Some(state),
                Err(e) => {
                    rejected.push((slot.generation, e.to_string()));
                    None
                }
            };
            return LoadOutcome {
                state,
                generation: slot.generation,
                newest_generation: newest,
                rejected,
            };
        }
        for slot in self.slots.iter().rev() {
            let parsed =
                open(&slot.bytes).and_then(|(_, payload)| ControllerState::from_bytes(payload));
            match parsed {
                Ok(state) => {
                    return LoadOutcome {
                        state: Some(state),
                        generation: slot.generation,
                        newest_generation: newest,
                        rejected,
                    };
                }
                Err(e) => rejected.push((slot.generation, e.to_string())),
            }
        }
        LoadOutcome {
            state: None,
            generation: 0,
            newest_generation: newest,
            rejected,
        }
    }
}

/// Apply `kind` to stored bytes in place. Damage sites are derived from
/// the bytes themselves, so runs stay deterministic without a clock or
/// an RNG.
pub fn corrupt_bytes(bytes: &mut Vec<u8>, kind: CorruptionKind) {
    if bytes.is_empty() {
        return;
    }
    match kind {
        CorruptionKind::TornWrite => {
            // The write stops partway through the payload.
            let cut = ENVELOPE_HEADER_LEN.min(bytes.len() - 1)
                + (fnv1a64(bytes) as usize
                    % (bytes.len() - ENVELOPE_HEADER_LEN.min(bytes.len() - 1)).max(1));
            bytes.truncate(cut.max(1));
        }
        CorruptionKind::BitFlip => {
            let at = fnv1a64(bytes) as usize % bytes.len();
            let bit = (fnv1a64(bytes) >> 32) as u32 % 8;
            bytes[at] ^= 1 << bit;
        }
        CorruptionKind::Truncate => {
            bytes.truncate((bytes.len() * 2 / 3).max(1));
        }
    }
}

impl WorkloadManager {
    /// Restore from the newest verified generation in `store`, emitting
    /// [`WlmEvent::CheckpointRejected`] for every generation that failed
    /// verification and [`WlmEvent::CheckpointFallback`] when recovery
    /// had to walk past the newest one. Errors when no generation
    /// verifies — the caller decides whether to
    /// [`cold_restart`](Self::cold_restart).
    pub fn restore_from_store(&mut self, store: &CheckpointStore) -> Result<RecoveryReport, Error> {
        let outcome = store.load_latest();
        let trace = self.events_active();
        if trace {
            let at = self.now();
            for (generation, reason) in &outcome.rejected {
                self.emit(WlmEvent::CheckpointRejected {
                    at,
                    generation: *generation,
                    reason: reason.clone(),
                });
            }
            if outcome.fell_back() {
                self.emit(WlmEvent::CheckpointFallback {
                    at,
                    from_generation: outcome.newest_generation,
                    to_generation: outcome.generation,
                    rejected: outcome.rejected.len(),
                });
            }
        }
        match outcome.state {
            Some(state) => Ok(self.restore(&state)),
            None => Err(Error::Checkpoint(format!(
                "no verified checkpoint generation ({} rejected)",
                outcome.rejected.len()
            ))),
        }
    }

    /// Blind restore from raw checkpoint bytes — no envelope, no
    /// verification beyond the payload's own version gate. The ablation
    /// arm E26 measures the store against.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<RecoveryReport, Error> {
        let state = ControllerState::from_bytes(bytes)?;
        Ok(self.restore(&state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::WlmBuilder;
    use wlm_dbsim::time::SimDuration;
    use wlm_workload::generators::OltpSource;

    fn manager_with_state() -> (WorkloadManager, ControllerState) {
        let mut mgr = WlmBuilder::new().build().expect("valid configuration");
        let mut src = OltpSource::new(200.0, 7);
        mgr.run(&mut src, SimDuration::from_secs(2));
        let state = mgr.checkpoint();
        (mgr, state)
    }

    #[test]
    fn seal_open_round_trips() {
        let payload = b"the controller state".to_vec();
        let sealed = seal(&payload, 3, 41);
        let (header, got) = open(&sealed).expect("verifies");
        assert_eq!(header.generation, 3);
        assert_eq!(header.cycle, 41);
        assert_eq!(header.payload_len, payload.len() as u64);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn every_corruption_kind_fails_verification() {
        let payload = vec![7u8; 4096];
        for kind in [
            CorruptionKind::TornWrite,
            CorruptionKind::BitFlip,
            CorruptionKind::Truncate,
        ] {
            let mut sealed = seal(&payload, 0, 0);
            corrupt_bytes(&mut sealed, kind);
            assert!(open(&sealed).is_err(), "{kind:?} must not verify");
        }
    }

    #[test]
    fn bad_magic_and_foreign_version_are_rejected() {
        let mut sealed = seal(b"x", 0, 0);
        sealed[0] = b'Z';
        assert!(open(&sealed).is_err());
        let mut sealed = seal(b"x", 0, 0);
        sealed[4..8].copy_from_slice(&(ENVELOPE_VERSION + 1).to_le_bytes());
        assert!(open(&sealed).is_err());
    }

    #[test]
    fn torn_write_is_caught_by_verification_and_restaged() {
        let (_, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig::default());
        store.arm_fault(CorruptionKind::TornWrite);
        let report = store.commit(&state);
        assert!(report.torn_write_caught);
        assert_eq!(report.corrupted, None);
        assert_eq!(store.torn_writes_caught(), 1);
        let outcome = store.load_latest();
        assert!(outcome.state.is_some(), "the re-staged write verifies");
        assert!(!outcome.fell_back());
    }

    #[test]
    fn torn_write_without_verification_is_latent_until_recovery() {
        let (_, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig {
            verify_writes: false,
            ..StoreConfig::default()
        });
        store.commit(&state);
        store.arm_fault(CorruptionKind::TornWrite);
        let report = store.commit(&state);
        assert_eq!(report.corrupted, Some(CorruptionKind::TornWrite));
        let outcome = store.load_latest();
        assert!(outcome.fell_back(), "recovery walks back to generation 0");
        assert_eq!(outcome.generation, 0);
        assert_eq!(outcome.rejected.len(), 1);
    }

    #[test]
    fn at_rest_corruption_falls_back_one_generation() {
        let (_, state) = manager_with_state();
        for kind in [CorruptionKind::BitFlip, CorruptionKind::Truncate] {
            let mut store = CheckpointStore::new(StoreConfig::default());
            store.commit(&state);
            store.commit(&state);
            store.corrupt_latest(kind);
            let outcome = store.load_latest();
            assert!(outcome.fell_back(), "{kind:?} must force a fallback");
            assert_eq!(outcome.generation, 0);
            assert_eq!(outcome.newest_generation, 1);
            assert_eq!(outcome.rejected.len(), 1);
        }
    }

    #[test]
    fn chain_is_bounded_and_every_generation_corrupt_is_an_error() {
        let (_, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig {
            keep_generations: 3,
            ..StoreConfig::default()
        });
        for _ in 0..6 {
            store.commit(&state);
        }
        assert_eq!(store.generations(), 3);
        assert_eq!(store.newest_generation(), Some(5));
        for _ in 0..3 {
            store.corrupt_latest(CorruptionKind::BitFlip);
            // corrupt_latest always hits the newest slot; rotate by
            // committing nothing — damage each slot via load order.
        }
        // Newest slot damaged (idempotent corruption of the same slot):
        // recovery still finds generation 4.
        let outcome = store.load_latest();
        assert!(outcome.state.is_some());
        assert_eq!(outcome.generation, 4);
    }

    #[test]
    fn blind_store_restores_corrupt_bytes_or_errors() {
        let (_, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig {
            envelope: false,
            ..StoreConfig::default()
        });
        store.commit(&state);
        store.commit(&state);
        store.corrupt_latest(CorruptionKind::Truncate);
        let outcome = store.load_latest();
        // No envelope: truncated JSON fails to parse and there is no
        // chain walk — recovery is stuck with nothing.
        assert!(outcome.state.is_none(), "blind restore must not fall back");
        assert_eq!(outcome.rejected.len(), 1);
    }

    #[test]
    fn restore_from_store_emits_rejection_and_fallback_events() {
        use crate::events::RingRecorder;
        let (mut mgr, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig::default());
        store.commit(&state);
        store.commit(&state);
        store.corrupt_latest(CorruptionKind::BitFlip);
        let trace = RingRecorder::new(1 << 12);
        mgr.subscribe(Box::new(trace.clone()));
        let report = mgr
            .restore_from_store(&store)
            .expect("generation 0 verifies");
        assert_eq!(report.from_cycle, state.cycle);
        let kinds: Vec<String> = trace
            .events()
            .iter()
            .map(|e| e.kind().to_string())
            .collect();
        assert!(
            kinds.contains(&"checkpoint_rejected".to_string()),
            "{kinds:?}"
        );
        assert!(
            kinds.contains(&"checkpoint_fallback".to_string()),
            "{kinds:?}"
        );
        assert!(
            kinds.contains(&"controller_restored".to_string()),
            "{kinds:?}"
        );
    }

    #[test]
    fn exhausted_chain_is_a_typed_error_and_the_manager_keeps_serving() {
        let (mut mgr, state) = manager_with_state();
        let mut store = CheckpointStore::new(StoreConfig {
            keep_generations: 1,
            ..StoreConfig::default()
        });
        store.commit(&state);
        store.corrupt_latest(CorruptionKind::Truncate);
        let err = mgr.restore_from_store(&store).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)), "{err}");
        // The failed restore must not wedge the manager.
        let mut src = OltpSource::new(100.0, 8);
        let report = mgr.run(&mut src, SimDuration::from_secs(1));
        assert!(report.completed > 0);
    }
}
