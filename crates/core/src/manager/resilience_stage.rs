//! Resilience hooks woven through the pipeline stages.
//!
//! The resilience layer is not a sixth stage: it acts *inside* the
//! existing ones, so its decisions ride the same snapshot discipline —
//!
//! * **admit** — [`WorkloadManager::release_due_retries`] re-queues
//!   matured retries (mirroring the admitted-queue snapshot delta), and
//!   the admission gate sheds best-effort arrivals while the degradation
//!   ladder is raised;
//! * **schedule** — [`WorkloadManager::gate_dispatches`] holds releases
//!   whose workload breaker is open;
//! * **exec-control** — [`WorkloadManager::resilience_control`] enforces
//!   per-workload timeouts, publishes breaker transitions, and walks the
//!   degradation ladder (throttling and suspending medium-and-below work
//!   under sustained pressure, restoring it in reverse as calm returns);
//! * **kill sites** — [`WorkloadManager::try_retry`] intercepts
//!   non-resubmitted kills and converts them into backoff-delayed retries
//!   while the request's attempt budget lasts.

use super::context::CycleContext;
use super::{RunningMeta, WorkloadManager};
use crate::api::{ControlAction, ManagedRequest};
use crate::events::WlmEvent;
use std::rc::Rc;
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::Importance;

/// Queries the ladder may suspend in a single control cycle (paced so one
/// pressured cycle does not dump the whole running set to disk at once).
const LADDER_SUSPENDS_PER_CYCLE: usize = 2;

impl WorkloadManager {
    /// Intercept a kill: if the request's workload has retry budget left,
    /// park it for a jittered exponential backoff and return `None`;
    /// otherwise give the meta back (`Some`) for normal kill accounting.
    pub(super) fn try_retry(
        &mut self,
        mut meta: RunningMeta,
        at: SimTime,
        trace: bool,
    ) -> Option<RunningMeta> {
        let (policy, seed) = {
            let Some(layer) = self.resilience.as_ref() else {
                return Some(meta);
            };
            let Some(policy) = layer.retry_policy(&meta.req.workload) else {
                return Some(meta);
            };
            (*policy, layer.seed())
        };
        let attempt = meta.restarts + 1;
        if attempt > policy.max_attempts {
            if let Some(layer) = self.resilience.as_mut() {
                layer.note_exhausted();
            }
            if trace {
                self.emit(WlmEvent::RetryExhausted {
                    at,
                    request: meta.req.request.id,
                    workload: meta.req.workload.clone(),
                    attempts: meta.restarts,
                });
            }
            return Some(meta);
        }
        let delay = policy.backoff(attempt, seed, meta.req.request.id);
        meta.restarts = attempt;
        if !meta.chain.is_empty() {
            self.pending_chains
                .insert(meta.req.request.id, meta.chain.drain(..).collect());
        }
        self.stats.entry(&meta.req.workload).resubmitted += 1;
        if trace {
            self.emit(WlmEvent::RetryScheduled {
                at,
                request: meta.req.request.id,
                workload: meta.req.workload.clone(),
                attempt,
                delay_us: delay.as_micros(),
            });
        }
        match self.resilience.as_mut() {
            Some(layer) => {
                layer.push_retry(at + delay, meta.req, attempt);
                None
            }
            // Unreachable (a policy was read from the layer above), but a
            // poisoned layer must not panic the control loop: hand the
            // meta back for normal kill accounting instead.
            None => Some(meta),
        }
    }

    /// Move matured retries back into the wait queue, applying the same
    /// snapshot delta an admission would. With a retry budget configured,
    /// releases the token bucket cannot pay for stay parked (retry-storm
    /// suppression) and the hold is published.
    pub(super) fn release_due_retries(&mut self, cx: &mut CycleContext) {
        let (due, held) = match self.resilience.as_mut() {
            Some(layer) => layer.take_due(cx.snap.now),
            None => return,
        };
        if held > 0 && cx.trace {
            self.emit(WlmEvent::RetrySuppressed {
                at: cx.snap.now,
                held,
            });
        }
        for (req, attempt) in due {
            // A request quarantined while its retry was parked (e.g. via a
            // restored checkpoint) does not get back in.
            if self
                .resilience
                .as_ref()
                .is_some_and(|l| l.is_quarantined(req.request.id))
            {
                if let Some(layer) = self.resilience.as_mut() {
                    layer.note_quarantine_rejection();
                }
                if cx.trace {
                    self.emit(WlmEvent::QuarantineRejected {
                        at: cx.snap.now,
                        request: req.request.id,
                        workload: req.workload.clone(),
                    });
                }
                continue;
            }
            self.restart_counts.insert(req.request.id, attempt);
            if cx.trace {
                self.emit(WlmEvent::Resubmitted {
                    at: cx.snap.now,
                    request: req.request.id,
                    workload: req.workload.clone(),
                });
            }
            *cx.snap
                .queued_by_workload
                .entry(req.workload.clone())
                .or_insert(0) += 1;
            cx.snap.queued_cost += req.estimate.timerons;
            self.wait_queue.push(req);
            cx.snap.queued = self.wait_queue.len() + self.deferred.len();
        }
    }

    /// Whether the ladder currently sheds an arrival of this importance:
    /// `Low` from level 1, `Medium`-and-below from the brownout rung when
    /// one is configured. Classes always shed in importance order.
    pub(super) fn ladder_sheds(&self, importance: Importance) -> bool {
        let Some(layer) = self.resilience.as_ref() else {
            return false;
        };
        let level = layer.ladder_level();
        if importance == Importance::Low && level >= 1 {
            return true;
        }
        importance <= Importance::Medium && layer.brownout_level().is_some_and(|rung| level >= rung)
    }

    /// Feed the backpressure gate this cycle's queue depth and goodput
    /// gradient, publishing a [`WlmEvent::BackpressureStep`] when the
    /// door setting moves.
    pub(super) fn observe_backpressure(&mut self, cx: &mut CycleContext) {
        let step = match self.resilience.as_mut() {
            Some(layer) => {
                let rising = cx.snap.last_throughput > cx.snap.prev_throughput;
                layer.backpressure_observe(cx.snap.queued, rising)
            }
            None => None,
        };
        if let Some((from_fraction, to_fraction)) = step {
            if cx.trace {
                let queue_ema = self
                    .resilience
                    .as_ref()
                    .map_or(0.0, |l| l.backpressure_queue_ema());
                self.emit(WlmEvent::BackpressureStep {
                    at: cx.snap.now,
                    from_fraction,
                    to_fraction,
                    queue_ema,
                });
            }
        }
    }

    /// Whether the backpressure gate turns this fresh arrival away at the
    /// door (counted and published as a rejection).
    pub(super) fn backpressure_rejects(
        &mut self,
        req: &ManagedRequest,
        cx: &mut CycleContext,
    ) -> bool {
        let admitted = match self.resilience.as_mut() {
            Some(layer) => layer.backpressure_admits(req.request.id),
            None => true,
        };
        if admitted {
            return false;
        }
        self.rejected += 1;
        self.stats.entry(&req.workload).rejected += 1;
        if cx.trace {
            self.emit(WlmEvent::Rejected {
                at: cx.snap.now,
                request: req.request.id,
                workload: req.workload.clone(),
                reason: "backpressure shed".to_string(),
            });
        }
        true
    }

    /// Hold scheduler releases whose workload breaker is open; held
    /// requests return to the front of the wait queue in release order.
    pub(super) fn gate_dispatches(&mut self, released: Vec<ManagedRequest>) -> Vec<ManagedRequest> {
        let bank = match self.resilience.as_ref() {
            Some(layer) if layer.breaker_enabled() => Rc::clone(&layer.breakers),
            _ => return released,
        };
        let mut pass = Vec::with_capacity(released.len());
        let mut held = Vec::new();
        {
            let mut bank = bank.borrow_mut();
            for req in released {
                if bank.allow(&req.workload) {
                    pass.push(req);
                } else {
                    held.push(req);
                }
            }
        }
        if !held.is_empty() {
            held.append(&mut self.wait_queue);
            self.wait_queue = held;
        }
        pass
    }

    /// The resilience layer's own execution control: timeout kills,
    /// breaker cooldowns and transition publication, and the degradation
    /// ladder. Runs at the top of the exec-control stage whether or not
    /// any controllers are installed.
    pub(super) fn resilience_control(&mut self, cx: &mut CycleContext) {
        if self.resilience.is_none() {
            return;
        }
        let at = cx.snap.now;
        self.enforce_timeouts(at, cx.trace);
        self.publish_breaker_transitions(at, cx.trace);
        self.walk_ladder(cx);
    }

    /// Kill (and, budget permitting, retry) queries over their workload's
    /// residence timeout.
    fn enforce_timeouts(&mut self, at: SimTime, trace: bool) {
        let victims: Vec<QueryId> = {
            // Only called with the layer present; degrade to a no-op (no
            // timeouts enforced this cycle) rather than panic if not.
            let Some(layer) = self.resilience.as_ref() else {
                return;
            };
            self.running
                .iter()
                .filter_map(|(id, meta)| {
                    let timeout = layer.timeout_for(&meta.req.workload)?;
                    let progress = self.engine.progress(*id).ok()?;
                    (progress.elapsed.as_secs_f64() > timeout).then_some(*id)
                })
                .collect()
        };
        for id in victims {
            self.apply_action(
                ControlAction::Kill {
                    id,
                    resubmit: false,
                },
                "resilience-timeout",
                at,
                trace,
            );
        }
    }

    /// Advance breaker cooldowns and publish the transitions the bank
    /// queued (including those recorded during event delivery — a
    /// subscriber cannot emit back into the bus, so the feed queues them
    /// and this drains them).
    fn publish_breaker_transitions(&mut self, at: SimTime, trace: bool) {
        let transitions = {
            let Some(layer) = self.resilience.as_ref() else {
                return;
            };
            let mut bank = layer.breakers.borrow_mut();
            bank.poll(at);
            bank.take_transitions()
        };
        if trace {
            for (workload, from, to) in transitions {
                self.emit(WlmEvent::BreakerTransition {
                    at,
                    workload,
                    from,
                    to,
                });
            }
        }
    }

    /// Feed the ladder one cycle of pressure and apply its current rung to
    /// the running set.
    fn walk_ladder(&mut self, cx: &mut CycleContext) {
        let at = cx.snap.now;
        // Every access degrades to "ladder off" if the layer is absent —
        // only ever reached with it present, but a missing layer must
        // never panic the control loop.
        let Some(lcfg) = self.resilience.as_ref().and_then(|l| l.ladder_config()) else {
            return;
        };
        let pressured = {
            let Some(layer) = self.resilience.as_ref() else {
                return;
            };
            let bank = layer.breakers.borrow();
            bank.any_open()
                || bank.recent_failure_rate() >= lcfg.failure_rate_trigger
                || cx.snap.queued >= lcfg.queue_depth_trigger
        };
        let step = self
            .resilience
            .as_mut()
            .and_then(|l| l.ladder_observe(pressured));
        if let Some((from_level, to_level)) = step {
            if cx.trace {
                self.emit(WlmEvent::LadderStep {
                    at,
                    from_level,
                    to_level,
                });
            }
        }
        let level = self.resilience.as_ref().map_or(0, |l| l.ladder_level());
        if level >= 2 {
            let fraction = lcfg.throttle_fraction.clamp(0.0, 1.0);
            let targets: Vec<QueryId> = self
                .running
                .iter()
                .filter(|(_, meta)| {
                    meta.req.importance <= Importance::Medium
                        && (meta.throttle - fraction).abs() > 1e-12
                })
                .map(|(id, _)| *id)
                .collect();
            for id in targets {
                self.apply_action(
                    ControlAction::Throttle(id, fraction),
                    "degradation-ladder",
                    at,
                    cx.trace,
                );
                if let Some(layer) = self.resilience.as_mut() {
                    layer.throttled.insert(id);
                }
            }
        } else {
            let throttled: Vec<QueryId> = match self.resilience.as_mut() {
                Some(layer) => std::mem::take(&mut layer.throttled).into_iter().collect(),
                None => Vec::new(),
            };
            for id in throttled {
                if self.running.contains_key(&id) {
                    self.apply_action(
                        ControlAction::Throttle(id, 0.0),
                        "degradation-ladder",
                        at,
                        cx.trace,
                    );
                }
            }
        }
        if level >= 3 {
            let targets: Vec<QueryId> = self
                .running
                .iter()
                .filter(|(_, meta)| meta.req.importance <= Importance::Medium)
                .map(|(id, _)| *id)
                .take(LADDER_SUSPENDS_PER_CYCLE)
                .collect();
            for id in targets {
                self.apply_action(
                    ControlAction::Suspend(id, SuspendStrategy::GoBack),
                    "degradation-ladder",
                    at,
                    cx.trace,
                );
                if let Some(layer) = self.resilience.as_mut() {
                    layer.throttled.remove(&id);
                }
            }
        }
    }
}
