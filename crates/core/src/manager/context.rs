//! The per-cycle shared context and the snapshot refresh helpers.
//!
//! [`CycleContext`] carries the cycle's arrival batch plus the manager's
//! **incrementally maintained** [`SystemSnapshot`]. The snapshot moves out
//! of the manager for the duration of the tick (so stages can mutate it
//! while borrowing other manager fields) and moves back at the end.
//!
//! The refresh helpers each rebuild one field group of the snapshot from
//! scratch, in exactly the iteration order [`WorkloadManager::snapshot`]
//! uses — `snapshot()` is itself just the four helpers applied to a
//! default snapshot. A stage refreshes only the groups it changed, which
//! is what makes the maintained snapshot cheap *and* bitwise-identical to
//! a full rebuild at every stage boundary.

use super::WorkloadManager;
use crate::api::{ManagedRequest, SystemSnapshot};
use wlm_dbsim::time::SimTime;

/// State shared by the five pipeline stages of one control cycle.
pub(super) struct CycleContext {
    /// The maintained monitor snapshot (moved out of the manager for the
    /// duration of the tick, restored by [`CycleContext::finish`]).
    pub(super) snap: SystemSnapshot,
    /// Cycle window start (clock at the beginning of the tick).
    pub(super) from: SimTime,
    /// Cycle window end (start plus one engine quantum).
    pub(super) to: SimTime,
    /// Arrivals classified by the identify stage, in arrival order.
    pub(super) incoming: Vec<ManagedRequest>,
    /// Whether the event bus has subscribers (checked once per cycle so
    /// the stages skip event construction entirely when nobody listens).
    pub(super) trace: bool,
}

impl CycleContext {
    /// Open the cycle: move the maintained snapshot out of the manager and
    /// fix the cycle window.
    pub(super) fn begin(mgr: &mut WorkloadManager) -> CycleContext {
        let from = mgr.engine.now();
        let to = from + mgr.engine.config().quantum;
        CycleContext {
            snap: std::mem::take(&mut mgr.live_snap),
            from,
            to,
            incoming: Vec::new(),
            trace: mgr.events.borrow().is_active(),
        }
    }

    /// Close the cycle: hand the maintained snapshot back to the manager.
    pub(super) fn finish(self, mgr: &mut WorkloadManager) {
        mgr.live_snap = self.snap;
    }
}

impl WorkloadManager {
    /// Refresh the engine-derived fields: clock, MPL, blocked count,
    /// conflict ratio, throughputs, utilizations and memory capacity.
    pub(super) fn refresh_engine_view(&self, snap: &mut SystemSnapshot) {
        let metrics = self.engine.metrics();
        snap.now = self.engine.now();
        snap.running = self.engine.mpl();
        snap.blocked = self.engine.blocked_count();
        snap.conflict_ratio = self.engine.conflict_ratio();
        snap.last_throughput = metrics.last_throughput();
        snap.prev_throughput = metrics.prev_throughput();
        snap.cpu_utilization = metrics.recent_cpu_utilization(3);
        snap.io_utilization = {
            let tail = metrics.intervals();
            let n = tail.len().min(3);
            if n == 0 {
                0.0
            } else {
                tail[tail.len() - n..]
                    .iter()
                    .map(|i| i.io_utilization())
                    .sum::<f64>()
                    / n as f64
            }
        };
        snap.memory_capacity_mb = self.engine.config().memory_mb;
    }

    /// Refresh the running-set fields from the manager's running map.
    pub(super) fn refresh_running_view(&self, snap: &mut SystemSnapshot) {
        snap.running_by_workload.clear();
        snap.running_cost_by_workload.clear();
        let mut running_cost = 0.0;
        let mut running_mem = 0u64;
        for meta in self.running.values() {
            *snap
                .running_by_workload
                .entry(meta.req.workload.clone())
                .or_insert(0) += 1;
            *snap
                .running_cost_by_workload
                .entry(meta.req.workload.clone())
                .or_insert(0.0) += meta.req.estimate.timerons;
            running_cost += meta.req.estimate.timerons;
            running_mem += meta.req.estimate.mem_mb;
        }
        snap.running_cost = running_cost;
        snap.running_mem_mb = running_mem;
    }

    /// Refresh the queue fields from the wait queue and admission gate.
    pub(super) fn refresh_queue_view(&self, snap: &mut SystemSnapshot) {
        snap.queued = self.wait_queue.len() + self.deferred.len();
        snap.queued_cost = self
            .wait_queue
            .iter()
            .chain(self.deferred.iter())
            .map(|req| req.estimate.timerons)
            .sum();
        snap.queued_by_workload.clear();
        for req in &self.wait_queue {
            *snap
                .queued_by_workload
                .entry(req.workload.clone())
                .or_insert(0) += 1;
        }
    }

    /// Refresh the recent per-workload mean response times.
    pub(super) fn refresh_recent_view(&self, snap: &mut SystemSnapshot) {
        snap.recent_response_by_workload = self
            .recent
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (k.clone(), v.iter().sum::<f64>() / v.len() as f64))
            .collect();
    }
}
