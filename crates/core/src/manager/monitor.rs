//! Stage 5 — monitoring: step the engine one quantum, account completions
//! per workload, maintain the DBQL-style query log, feed closed-loop
//! sources and admission learners, resume suspended queries when the
//! system quiets down, and bring every maintained snapshot view up to
//! date for the next cycle.
//!
//! Emits [`WlmEvent::Completed`] and [`WlmEvent::Resumed`], and forwards
//! the engine's buffered low-level events to subscribers via
//! [`EventSubscriber::on_engine_event`](crate::events::EventSubscriber::on_engine_event).

use super::context::CycleContext;
use super::{RunningMeta, WorkloadManager};
use crate::events::WlmEvent;
use std::collections::VecDeque;
use wlm_dbsim::engine::CompletionKind;
use wlm_workload::generators::Source;
use wlm_workload::sla::{velocity, PerformanceObjective};
use wlm_workload::trace::QueryLogEntry;

impl WorkloadManager {
    /// Step the engine and account the quantum's outcomes.
    pub(super) fn stage_monitor(&mut self, cx: &mut CycleContext, source: &mut dyn Source) {
        let completions = self.engine.step();
        if self.engine.events_enabled() {
            let engine_events = self.engine.drain_events();
            if cx.trace {
                let mut bus = self.events.borrow_mut();
                for event in &engine_events {
                    bus.emit_engine(event);
                }
            }
        }
        let now = self.engine.now();
        for c in completions {
            if c.kind != CompletionKind::Completed {
                continue; // kills were accounted at the action site
            }
            let Some(mut meta) = self.running.remove(&c.id) else {
                continue;
            };
            if let Some(next_piece) = meta.chain.pop_front() {
                // Chained restructured query: queue the next piece with the
                // original arrival time; only the last piece records stats.
                // The piece that just ran still banks any suspend/resume
                // overhead it accumulated.
                self.stats.entry(&meta.req.workload).suspend_overhead_us +=
                    meta.suspend_overhead_us;
                let mut req = meta.req.clone();
                req.request.spec = next_piece;
                req.estimate = self.cost_model.estimate_spec(&req.request.spec);
                if !meta.chain.is_empty() {
                    self.pending_chains
                        .insert(req.request.id, meta.chain.into_iter().collect());
                }
                // The next piece goes to the *back* of the queue: letting
                // short queries overtake between pieces is the whole point
                // of restructuring.
                self.wait_queue.push(req);
                continue;
            }
            self.completed += 1;
            let response_secs = c.response.as_secs_f64();
            let vel = velocity(meta.req.estimate.exec_secs, response_secs);
            {
                let ws = self.stats.entry(&meta.req.workload);
                ws.responses_secs.push(response_secs);
                ws.velocities.push(vel);
                ws.completed += 1;
                // Bank the request's accumulated suspend/resume overhead
                // into the per-workload book before the meta is dropped.
                ws.suspend_overhead_us += meta.suspend_overhead_us;
            }
            // Dashboard accounting: does this completion violate the
            // workload's tightest response-time goal?
            if let Some(policy) = self.policies.get(&meta.req.workload) {
                let tightest = policy
                    .sla
                    .objectives
                    .iter()
                    .filter_map(|o| match o {
                        PerformanceObjective::AvgResponseTime { target_secs }
                        | PerformanceObjective::Percentile { target_secs, .. } => {
                            Some(*target_secs)
                        }
                        _ => None,
                    })
                    .fold(f64::INFINITY, f64::min);
                if response_secs > tightest {
                    *self
                        .goal_violations
                        .entry(meta.req.workload.clone())
                        .or_insert(0) += 1;
                }
            }
            let window = self.recent.entry(meta.req.workload.clone()).or_default();
            window.push_back(response_secs);
            while window.len() > self.response_window {
                window.pop_front();
            }
            self.query_log.record(QueryLogEntry {
                arrival: meta.req.request.arrival,
                label: meta.req.workload.clone(),
                origin: meta.req.request.origin.clone(),
                statement: meta.req.request.spec.statement,
                estimated_cost: meta.req.estimate.timerons,
                true_work_us: c.work_total_us,
                response: c.response,
                importance: meta.req.importance,
            });
            self.admission
                .learn(&meta.req, response_secs, c.work_total_us);
            source.on_request_completion(
                meta.req.request.id,
                &meta.req.request.spec.label,
                c.finished,
            );
            if cx.trace {
                self.emit(WlmEvent::Completed {
                    at: now,
                    query: c.id,
                    request: meta.req.request.id,
                    workload: meta.req.workload.clone(),
                    response_secs,
                });
            }
        }

        self.maybe_resume_suspended(cx.trace);

        // Bring every maintained view up to date: this is the snapshot the
        // next cycle starts from and what live_snapshot() reports.
        self.refresh_engine_view(&mut cx.snap);
        self.refresh_running_view(&mut cx.snap);
        self.refresh_queue_view(&mut cx.snap);
        self.refresh_recent_view(&mut cx.snap);
    }

    /// Resume the oldest suspended query once the system is quiet enough.
    pub(super) fn maybe_resume_suspended(&mut self, trace: bool) {
        if self.suspended.is_empty() || self.engine.mpl() >= self.resume_when_running_below {
            return;
        }
        // While the degradation ladder is at its top rung the system is
        // actively suspending work; resuming would fight it.
        if self
            .resilience
            .as_ref()
            .is_some_and(|layer| layer.ladder_level() >= 3)
        {
            return;
        }
        let (sq, req, restarts, carried_overhead_us) = self.suspended.remove(0);
        let id = self.engine.resume_suspended(sq);
        if trace {
            self.emit(WlmEvent::Resumed {
                at: self.engine.now(),
                query: id,
                workload: req.workload.clone(),
            });
        }
        let chain = self
            .pending_chains
            .remove(&req.request.id)
            .map(VecDeque::from)
            .unwrap_or_default();
        self.running.insert(
            id,
            RunningMeta {
                req,
                throttle: 0.0,
                restarts,
                chain,
                // The overhead paid so far rides along so it reaches the
                // per-workload books when the request leaves the system.
                suspend_overhead_us: carried_overhead_us,
            },
        );
    }
}
