//! The workload manager: the paper's control cycle as an explicit staged
//! pipeline over the simulated engine.
//!
//! Each control cycle (one engine quantum) runs five stages, one module
//! each, sharing a [`CycleContext`](context) that carries the cycle's
//! arrival batch and the **incrementally maintained** system snapshot:
//!
//! ```text
//!   identify ──▶ admit ──▶ schedule ──▶ exec_control ──▶ monitor
//!   (classify)   (gate)    (release)    (act on running)  (step+account)
//!        │          │          │               │              │
//!        ▼          ▼          ▼               ▼              ▼
//!   Classified  Admitted/  Scheduled    Throttled/Killed  Completed/
//!               Deferred/               Reprioritized/    Resumed
//!               Rejected                Suspended
//! ```
//!
//! 1. **[`identify`]** — poll the workload sources and classify every
//!    arriving request into a workload (characterization);
//! 2. **[`admit`]** — decide admit / defer / reject, re-evaluating
//!    previously deferred requests first;
//! 3. **[`schedule`]** — let the scheduler release requests from the wait
//!    queue to the engine (optionally restructuring big queries into
//!    chained pieces first);
//! 4. **[`exec_control`]** — give every execution controller a view of
//!    the running set and apply the actions they return (reprioritize,
//!    throttle, pause/resume, kill, kill-and-resubmit, suspend);
//! 5. **[`monitor`]** — step the engine, account completions per workload,
//!    maintain the DBQL-style query log, feed closed-loop sources, resume
//!    suspended queries when the system quiets down.
//!
//! Every stage publishes [`WlmEvent`]s onto the manager's event bus (see
//! [`crate::events`]); attach observers with
//! [`WorkloadManager::subscribe`]. With no subscribers, emission costs
//! nothing.
//!
//! The snapshot is *maintained*, not rebuilt: admission applies queue
//! deltas, scheduling refreshes only the queue/running views its
//! dispatches changed, and the monitor stage refreshes everything after
//! the engine quantum. At every stage boundary the maintained snapshot is
//! bitwise-identical to a from-scratch [`WorkloadManager::snapshot`] —
//! the refresh helpers and `snapshot()` are the same code.

mod admit;
pub mod checkpoint;
mod context;
mod exec_control;
mod identify;
mod monitor;
mod resilience_stage;
mod schedule;
pub mod store;

pub use checkpoint::{
    ControllerState, RecoveryReport, RunningCheckpoint, SuspendedCheckpoint, CHECKPOINT_VERSION,
};
pub use store::{
    CheckpointStore, CommitReport, CorruptionKind, LoadOutcome, StoreConfig, ENVELOPE_VERSION,
};

use crate::admission::AdmitAll;
use crate::api::{
    AdmissionController, ExecutionController, ManagedRequest, Scheduler, SystemSnapshot,
};
use crate::characterize::{Characterizer, StaticCharacterizer};
use crate::dashboard::{Dashboard, WorkloadRow};
use crate::error::Error;
use crate::events::{EventBus, EventSink, EventSubscriber, WlmEvent};
use crate::policy::WorkloadPolicy;
use crate::resilience::{ResilienceConfig, ResilienceLayer, ResilienceReport};
use crate::scheduling::{FcfsScheduler, Restructurer};
use crate::stats::{StatsBook, WorkloadReport};
use context::CycleContext;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use wlm_dbsim::engine::{DbEngine, EngineConfig, EngineFault, QueryId};
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::QuerySpec;
use wlm_dbsim::suspend::SuspendedQuery;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::Source;
use wlm_workload::sla::ServiceLevelAgreement;
use wlm_workload::trace::QueryLog;

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Optimizer cost model (estimation error level).
    pub cost_model: CostModel,
    /// Per-workload policies (importance, SLA, admission/execution rules).
    pub policies: Vec<WorkloadPolicy>,
    /// Auto-resume suspended queries when fewer than this many queries run.
    pub resume_when_running_below: usize,
    /// Response samples per workload kept for the recent-performance window.
    pub response_window: usize,
    /// Ignore business importance when assigning engine weights (every
    /// query weight 1.0 unless a policy overrides it). This models an
    /// *unmanaged* engine that cannot see request priority — the baseline
    /// the paper's techniques are measured against.
    pub uniform_weights: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            engine: EngineConfig::default(),
            cost_model: CostModel::default(),
            policies: Vec::new(),
            resume_when_running_below: 4,
            response_window: 20,
            uniform_weights: false,
        }
    }
}

#[derive(Debug)]
struct RunningMeta {
    req: ManagedRequest,
    throttle: f64,
    restarts: u32,
    /// Remaining pieces of a restructured query.
    chain: VecDeque<QuerySpec>,
    /// Suspend/resume overhead already accumulated by this request, µs.
    suspend_overhead_us: u64,
}

/// A suspended query awaiting resumption: the resume token, the managed
/// request, its restart count and the suspend/resume overhead it has
/// accumulated so far (carried across the suspension so it survives into
/// the per-workload books when the request finally leaves the system).
type SuspendedEntry = (SuspendedQuery, ManagedRequest, u32, u64);

/// End-of-run summary.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Simulated run length, seconds.
    pub elapsed_secs: f64,
    /// Per-workload outcomes and SLA evaluations.
    pub workloads: Vec<WorkloadReport>,
    /// Total completions.
    pub completed: u64,
    /// Total kills (not resubmitted).
    pub killed: u64,
    /// Total rejections.
    pub rejected: u64,
    /// Total suspend+resume overhead paid, µs.
    pub suspend_overhead_us: u64,
    /// Overall throughput, completions/second.
    pub throughput: f64,
}

impl RunReport {
    /// The report of one workload, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadReport> {
        self.workloads.iter().find(|w| w.workload == name)
    }
}

/// The workload manager.
///
/// Assemble one with the typed facade, [`crate::api::WlmBuilder`]:
///
/// ```
/// use wlm_core::api::WlmBuilder;
/// use wlm_core::scheduling::PriorityScheduler;
/// use wlm_workload::generators::OltpSource;
/// use wlm_dbsim::time::SimDuration;
///
/// let mut manager = WlmBuilder::new()
///     .scheduler(Box::new(PriorityScheduler::new(16)))
///     .build()
///     .expect("valid configuration");
/// let mut source = OltpSource::new(20.0, 1);
/// let report = manager.run(&mut source, SimDuration::from_secs(5));
/// assert!(report.workload("oltp").is_some());
/// ```
pub struct WorkloadManager {
    engine: DbEngine,
    cost_model: CostModel,
    characterizer: Box<dyn Characterizer>,
    admission: Box<dyn AdmissionController>,
    scheduler: Box<dyn Scheduler>,
    exec_controllers: Vec<Box<dyn ExecutionController>>,
    restructurer: Option<Restructurer>,
    policies: BTreeMap<String, WorkloadPolicy>,
    wait_queue: Vec<ManagedRequest>,
    deferred: VecDeque<ManagedRequest>,
    running: BTreeMap<QueryId, RunningMeta>,
    suspended: Vec<SuspendedEntry>,
    stats: StatsBook,
    recent: BTreeMap<String, VecDeque<f64>>,
    query_log: QueryLog,
    resume_when_running_below: usize,
    response_window: usize,
    uniform_weights: bool,
    suspend_overhead_us: u64,
    completed: u64,
    killed: u64,
    rejected: u64,
    /// Goal violations per workload (completions over the tightest
    /// response-time objective).
    goal_violations: BTreeMap<String, u64>,
    /// Remaining pieces of restructured queries, keyed by request id.
    pending_chains: BTreeMap<wlm_workload::request::RequestId, Vec<QuerySpec>>,
    /// Restart counts of re-queued (killed-and-resubmitted) requests.
    restart_counts: BTreeMap<wlm_workload::request::RequestId, u32>,
    /// Retry budgets, circuit breakers and the degradation ladder
    /// (`None` = resilience off, the default).
    resilience: Option<ResilienceLayer>,
    /// The decision-event bus (shared with [`EventSink`] handles).
    events: Rc<RefCell<EventBus>>,
    /// The incrementally maintained monitor snapshot.
    live_snap: SystemSnapshot,
    /// Control cycles executed (one per engine quantum, including
    /// controller-absent [`Self::tick_uncontrolled`] quanta). Monotonic —
    /// [`Self::restore`] does not rewind it.
    cycle: u64,
    /// Completions that finished while the controller was absent.
    completions_unobserved: u64,
}

impl WorkloadManager {
    /// New manager from a raw [`ManagerConfig`].
    #[deprecated(
        since = "0.1.0",
        note = "assemble managers through `wlm_core::api::WlmBuilder` instead"
    )]
    pub fn new(config: ManagerConfig) -> Self {
        Self::from_config(config)
    }

    /// New manager with pass-through defaults: label-based identification,
    /// admit-all, FCFS at effectively unlimited MPL, no execution control —
    /// i.e. an unmanaged system. [`crate::api::WlmBuilder`] validates its
    /// inputs and then builds through this constructor.
    pub(crate) fn from_config(config: ManagerConfig) -> Self {
        let engine = DbEngine::new(config.engine);
        let stats = StatsBook::new(engine.now());
        let mut mgr = WorkloadManager {
            engine,
            cost_model: config.cost_model,
            characterizer: Box::new(
                StaticCharacterizer::new(Vec::new())
                    .with_default("default")
                    // Label-based identification: the generator's workload
                    // tag is the workload name unless definitions override.
                    .with_criteria_fn(Box::new(|req, _| {
                        (!req.spec.label.is_empty()).then(|| {
                            // Chained restructured pieces carry "label#i".
                            req.spec
                                .label
                                .split('#')
                                .next()
                                .unwrap_or(&req.spec.label)
                                .to_string()
                        })
                    })),
            ),
            admission: Box::new(AdmitAll),
            scheduler: Box::new(FcfsScheduler::new(usize::MAX / 2)),
            exec_controllers: Vec::new(),
            restructurer: None,
            policies: config
                .policies
                .into_iter()
                .map(|p| (p.workload.clone(), p))
                .collect(),
            wait_queue: Vec::new(),
            deferred: VecDeque::new(),
            running: BTreeMap::new(),
            suspended: Vec::new(),
            stats,
            recent: BTreeMap::new(),
            query_log: QueryLog::new(),
            resume_when_running_below: config.resume_when_running_below,
            response_window: config.response_window.max(1),
            uniform_weights: config.uniform_weights,
            suspend_overhead_us: 0,
            completed: 0,
            killed: 0,
            rejected: 0,
            goal_violations: BTreeMap::new(),
            pending_chains: BTreeMap::new(),
            restart_counts: BTreeMap::new(),
            resilience: None,
            events: Rc::new(RefCell::new(EventBus::default())),
            live_snap: SystemSnapshot::default(),
            cycle: 0,
            completions_unobserved: 0,
        };
        if let Some(trace) = crate::events::thread_trace_recorder() {
            mgr.subscribe(Box::new(trace));
        }
        mgr.live_snap = mgr.snapshot();
        mgr
    }

    /// Replace the characterizer.
    pub fn set_characterizer(&mut self, c: Box<dyn Characterizer>) {
        self.characterizer = c;
    }

    /// Replace the admission controller.
    pub fn set_admission(&mut self, a: Box<dyn AdmissionController>) {
        self.admission = a;
    }

    /// Replace the scheduler.
    pub fn set_scheduler(&mut self, s: Box<dyn Scheduler>) {
        self.scheduler = s;
    }

    /// Add an execution controller (they run in insertion order).
    pub fn add_exec_controller(&mut self, c: Box<dyn ExecutionController>) {
        self.exec_controllers.push(c);
    }

    /// Remove all execution controllers.
    pub fn clear_exec_controllers(&mut self) {
        self.exec_controllers.clear();
    }

    /// Enable query restructuring with the given policy.
    pub fn set_restructurer(&mut self, r: Restructurer) {
        self.restructurer = Some(r);
    }

    /// Enable the resilience layer (retry budgets, per-workload circuit
    /// breakers, the degradation ladder — each only if configured). When
    /// breakers are enabled this subscribes a feed on the event bus so
    /// breaker state tracks observed failure and timeout rates.
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        let layer = ResilienceLayer::new(cfg);
        if layer.breaker_enabled() {
            self.subscribe(Box::new(layer.breaker_feed()));
        }
        self.resilience = Some(layer);
    }

    /// Snapshot of the resilience layer's state, if the layer is enabled.
    pub fn resilience_report(&self) -> Option<ResilienceReport> {
        self.resilience.as_ref().map(ResilienceLayer::report)
    }

    /// Inject an engine-level fault (or recovery) into the underlying
    /// engine, publishing a [`WlmEvent::FaultInjected`] record. The fault
    /// drivers in `wlm-chaos` call this between control cycles.
    pub fn apply_engine_fault(&mut self, fault: EngineFault) -> Result<(), Error> {
        let kind = fault.kind();
        let detail = format!("{fault:?}");
        self.engine.apply_fault(fault)?;
        if self.events.borrow().is_active() {
            self.emit(WlmEvent::FaultInjected {
                at: self.engine.now(),
                kind,
                detail,
            });
        }
        Ok(())
    }

    /// The optimizer's current estimation-error level (sigma of its
    /// log-normal multiplicative error).
    pub fn cost_model_error(&self) -> f64 {
        self.cost_model.error_sigma
    }

    /// Set the optimizer's estimation-error level — the chaos driver's
    /// optimizer-misestimation fault.
    pub fn set_cost_model_error(&mut self, sigma: f64) {
        self.cost_model.error_sigma = sigma.max(0.0);
    }

    /// Completions of `workload` that violated its tightest response-time
    /// objective so far.
    pub fn goal_violations_in(&self, workload: &str) -> u64 {
        self.goal_violations.get(workload).copied().unwrap_or(0)
    }

    /// Add or replace a workload policy at run time.
    pub fn set_policy(&mut self, policy: WorkloadPolicy) {
        if self.events.borrow().is_active() {
            self.emit(WlmEvent::PolicyChanged {
                at: self.engine.now(),
                workload: policy.workload.clone(),
            });
        }
        self.policies.insert(policy.workload.clone(), policy);
    }

    /// Attach an event subscriber to this manager's bus. Also enables the
    /// engine's low-level event hooks, forwarded through
    /// [`EventSubscriber::on_engine_event`] each monitor stage.
    pub fn subscribe(&mut self, sub: Box<dyn EventSubscriber>) {
        self.engine.enable_events();
        self.events.borrow_mut().subscribe(sub);
    }

    /// A clonable handle for publishing onto this manager's event bus from
    /// outside the manager (facility emulations, the MAPE loop).
    pub fn event_sink(&self) -> EventSink {
        EventSink::new(Rc::clone(&self.events))
    }

    /// Decision events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events.borrow().emitted()
    }

    /// Whether the event bus has any subscribers.
    pub fn events_active(&self) -> bool {
        self.events.borrow().is_active()
    }

    /// Response-window length (samples per workload) this manager keeps.
    pub fn response_window(&self) -> usize {
        self.response_window
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The engine (read access for experiments).
    pub fn engine(&self) -> &DbEngine {
        &self.engine
    }

    /// The DBQL-style query log of completed requests.
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Requests waiting in the scheduler queue.
    pub fn queued(&self) -> usize {
        self.wait_queue.len()
    }

    /// Requests held at the admission gate.
    pub fn deferred(&self) -> usize {
        self.deferred.len()
    }

    /// Suspended queries awaiting resumption.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    fn emit(&self, event: WlmEvent) {
        self.events.borrow_mut().emit(event);
    }

    /// Build the monitor snapshot from scratch. The cycle maintains
    /// [`Self::live_snapshot`] incrementally through the same refresh
    /// helpers, so the two always agree at cycle boundaries.
    pub fn snapshot(&self) -> SystemSnapshot {
        let mut snap = SystemSnapshot::default();
        self.refresh_engine_view(&mut snap);
        self.refresh_running_view(&mut snap);
        self.refresh_queue_view(&mut snap);
        self.refresh_recent_view(&mut snap);
        snap
    }

    /// The incrementally maintained snapshot, equal to a from-scratch
    /// [`Self::snapshot`] at cycle boundaries but free to read.
    pub fn live_snapshot(&self) -> &SystemSnapshot {
        &self.live_snap
    }

    /// A point-in-time dashboard over the live system — the monitoring
    /// surface (Teradata's dashboard workload monitor, DB2 table functions,
    /// SQL Server performance counters).
    pub fn dashboard(&self) -> Dashboard {
        let snap = self.snapshot();
        let total_cost: f64 = snap.running_cost.max(1e-9);
        let mut workloads: BTreeMap<String, WorkloadRow> = BTreeMap::new();
        let mut names: Vec<String> = self.stats.workloads().map(str::to_string).collect();
        names.extend(snap.running_by_workload.keys().cloned());
        names.extend(snap.queued_by_workload.keys().cloned());
        names.sort();
        names.dedup();
        for name in names {
            let stats = self.stats.get(&name).cloned().unwrap_or_default();
            workloads.insert(
                name.clone(),
                WorkloadRow {
                    active: snap.running_in(&name),
                    queued: snap.queued_in(&name),
                    running_cost_share: snap.running_cost_in(&name) / total_cost,
                    completed: stats.completed,
                    recent_response_secs: snap.recent_response_of(&name),
                    goal_violations: self.goal_violations.get(&name).copied().unwrap_or(0),
                    shed: stats.rejected + stats.killed,
                    workload: name,
                },
            );
        }
        Dashboard {
            at: snap.now,
            running: snap.running,
            waiting: snap.queued,
            suspended: self.suspended.len(),
            cpu_utilization: snap.cpu_utilization,
            io_utilization: snap.io_utilization,
            conflict_ratio: snap.conflict_ratio,
            workloads,
        }
    }

    /// Advance one control cycle (one engine quantum), pulling arrivals from
    /// `source`: the five pipeline stages in order, sharing one
    /// [`CycleContext`].
    pub fn tick(&mut self, source: &mut dyn Source) {
        let mut cx = CycleContext::begin(self);
        self.stage_identify(&mut cx, source);
        self.stage_admit(&mut cx);
        self.stage_schedule(&mut cx);
        self.stage_exec_control(&mut cx);
        self.stage_monitor(&mut cx, source);
        cx.finish(self);
        self.cycle += 1;
    }

    /// Run for `duration` of simulated time and report.
    pub fn run(&mut self, source: &mut dyn Source, duration: SimDuration) -> RunReport {
        let deadline = self.engine.now() + duration;
        while self.engine.now() < deadline {
            self.tick(source);
        }
        self.report()
    }

    /// Build the end-of-run report at the current time.
    pub fn report(&self) -> RunReport {
        let slas: BTreeMap<String, ServiceLevelAgreement> = self
            .policies
            .iter()
            .map(|(name, p)| (name.clone(), p.sla.clone()))
            .collect();
        let elapsed = self.engine.now().since(self.stats.started);
        RunReport {
            elapsed_secs: elapsed.as_secs_f64(),
            workloads: self.stats.report(&slas, self.engine.now()),
            completed: self.completed,
            killed: self.killed,
            rejected: self.rejected,
            suspend_overhead_us: self.suspend_overhead_us,
            throughput: if elapsed.as_secs_f64() > 0.0 {
                self.completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::ThresholdAdmission;
    use crate::api::WlmBuilder;
    use crate::execution::{LoadShedSuspender, ThresholdKiller};
    use crate::scheduling::PriorityScheduler;
    use wlm_workload::generators::{BiSource, OltpSource};
    use wlm_workload::mix::MixedSource;
    use wlm_workload::request::Importance;

    fn small_builder() -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                disk_pages_per_sec: 20_000,
                memory_mb: 4_096,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    #[test]
    fn unmanaged_pipeline_completes_work() {
        let mut mgr = small_builder().build().expect("valid configuration");
        let mut src = OltpSource::new(20.0, 1);
        let report = mgr.run(&mut src, SimDuration::from_secs(20));
        assert!(report.completed > 200, "completed {}", report.completed);
        assert!(report.rejected == 0);
        let oltp = report.workload("oltp").expect("oltp workload reported");
        assert!(oltp.summary.mean < 1.0, "oltp mean {}", oltp.summary.mean);
    }

    #[test]
    fn threshold_admission_rejects_big_queries() {
        let mut mgr = small_builder().build().expect("valid configuration");
        let adm = ThresholdAdmission::default().with_policy(
            "bi",
            crate::policy::AdmissionPolicy {
                max_cost_timerons: Some(100_000.0),
                on_violation: crate::policy::AdmissionViolationAction::Reject,
                ..Default::default()
            },
        );
        mgr.set_admission(Box::new(adm));
        let mut src = BiSource::new(2.0, 2);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.rejected > 0, "big BI queries should be rejected");
    }

    #[test]
    fn killer_controller_kills_long_runners() {
        let mut mgr = small_builder().build().expect("valid configuration");
        mgr.add_exec_controller(Box::new(ThresholdKiller::new(2.0)));
        let mut src = BiSource::new(1.0, 3);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.killed > 0, "long BI queries should be killed");
    }

    #[test]
    fn priority_scheduler_under_mpl_prefers_oltp() {
        let mut mgr = small_builder().build().expect("valid configuration");
        mgr.set_scheduler(Box::new(PriorityScheduler::new(4)));
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(20.0, 1)))
            .with(Box::new(BiSource::new(2.0, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(30));
        let oltp = report.workload("oltp").expect("oltp workload reported");
        assert!(oltp.stats.completed > 0);
        // OLTP stays fast because it skips the queue.
        assert!(oltp.summary.p90 < 2.0, "p90 {}", oltp.summary.p90);
    }

    #[test]
    fn report_contains_sla_evaluation() {
        let mut mgr = small_builder()
            .policy(
                WorkloadPolicy::new("oltp", Importance::High)
                    .with_sla(ServiceLevelAgreement::avg_response(1.0)),
            )
            .build()
            .expect("valid configuration");
        let mut src = OltpSource::new(10.0, 4);
        let report = mgr.run(&mut src, SimDuration::from_secs(10));
        let oltp = report.workload("oltp").expect("oltp workload reported");
        assert!(!oltp.sla.results.is_empty());
        assert!(oltp.sla.met(), "idle system must meet the OLTP SLA");
    }

    #[test]
    fn live_snapshot_matches_from_scratch_rebuild() {
        for seed in [1u64, 7, 13] {
            let mut mgr = small_builder().build().expect("valid configuration");
            mgr.set_scheduler(Box::new(PriorityScheduler::new(4)));
            mgr.add_exec_controller(Box::new(ThresholdKiller::new(2.0)));
            let mut mix = MixedSource::new()
                .with(Box::new(OltpSource::new(20.0, seed)))
                .with(Box::new(BiSource::new(2.0, seed + 1)));
            for i in 0..2_000 {
                mgr.tick(&mut mix);
                assert_eq!(
                    mgr.live_snapshot(),
                    &mgr.snapshot(),
                    "divergence at tick {i} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn live_snapshot_survives_suspend_restructure_and_deferral() {
        let mut mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 2,
                memory_mb: 512,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
            .build()
            .expect("valid configuration");
        mgr.set_scheduler(Box::new(PriorityScheduler::new(3)));
        mgr.set_admission(Box::new(ThresholdAdmission::with_global_mpl(6)));
        mgr.set_restructurer(Restructurer {
            slice_threshold_timerons: 2_000_000.0,
            target_piece_timerons: 1_000_000.0,
            max_pieces: 6,
        });
        mgr.add_exec_controller(Box::new(LoadShedSuspender {
            pressure_threshold: 2,
            ..Default::default()
        }));
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(15.0, 21)))
            .with(Box::new(
                BiSource::new(1.5, 22).with_size(20_000_000.0, 1.0),
            ));
        for i in 0..4_000 {
            mgr.tick(&mut mix);
            assert_eq!(
                mgr.live_snapshot(),
                &mgr.snapshot(),
                "divergence at tick {i}"
            );
        }
        assert!(mgr.suspend_overhead_us > 0 || mgr.completed > 0);
    }
}
