//! Stage 2 — admission control: decide admit / defer / reject for every
//! request knocking at the gate, previously deferred requests first.
//!
//! The maintained snapshot is updated *only* when a request is admitted —
//! the same cadence at which the old monolithic cycle rebuilt its snapshot
//! — so intra-cycle decisions see the requests just admitted ahead of them
//! (otherwise two simultaneous arrivals would both slip past a concurrency
//! throttle of 1) while a deferral leaves the decision inputs untouched.
//!
//! Emits [`WlmEvent::Admitted`] (with an [`AdmitReason`]),
//! [`WlmEvent::Deferred`] and [`WlmEvent::Rejected`].

use super::context::CycleContext;
use super::WorkloadManager;
use crate::api::{AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::events::{AdmitReason, WlmEvent};

impl WorkloadManager {
    /// Push an admitted request onto the wait queue, applying the queue
    /// delta to the maintained snapshot exactly as a from-scratch rebuild
    /// would see it.
    fn note_admitted(&mut self, req: ManagedRequest, snap: &mut SystemSnapshot) {
        *snap
            .queued_by_workload
            .entry(req.workload.clone())
            .or_insert(0) += 1;
        snap.queued_cost += req.estimate.timerons;
        self.wait_queue.push(req);
        snap.queued = self.wait_queue.len() + self.deferred.len();
    }

    /// Returns whether the request was admitted to the wait queue.
    pub(super) fn admit(
        &mut self,
        req: ManagedRequest,
        snap: &mut SystemSnapshot,
        reason: AdmitReason,
        trace: bool,
    ) -> bool {
        // A quarantined (poison) request is turned away before any other
        // gate sees it — its kill history already proved it runaway.
        if self
            .resilience
            .as_ref()
            .is_some_and(|l| l.is_quarantined(req.request.id))
        {
            self.rejected += 1;
            self.stats.entry(&req.workload).rejected += 1;
            if let Some(layer) = self.resilience.as_mut() {
                layer.note_quarantine_rejection();
            }
            if trace {
                self.emit(WlmEvent::QuarantineRejected {
                    at: snap.now,
                    request: req.request.id,
                    workload: req.workload.clone(),
                });
            }
            return false;
        }
        // A raised degradation ladder sheds best-effort arrivals before
        // the admission controller even sees them.
        if self.ladder_sheds(req.importance) {
            self.rejected += 1;
            self.stats.entry(&req.workload).rejected += 1;
            if trace {
                self.emit(WlmEvent::Rejected {
                    at: snap.now,
                    request: req.request.id,
                    workload: req.workload.clone(),
                    reason: "degradation-ladder shed".to_string(),
                });
            }
            return false;
        }
        match self.admission.decide(&req, snap) {
            AdmissionDecision::Admit => {
                if reason == AdmitReason::Fresh {
                    // Fresh admissions replenish the retry-suppression
                    // token bucket: the retry rate is capped as a
                    // fraction of this.
                    if let Some(layer) = self.resilience.as_mut() {
                        layer.note_fresh_admission();
                    }
                }
                if let Some(r) = self.restructurer {
                    let pieces = r.restructure(&req);
                    if pieces.len() > 1 {
                        let mut first = req.clone();
                        first.request.spec = pieces[0].clone();
                        first.estimate = self.cost_model.estimate_spec(&first.request.spec);
                        // The first piece enters the queue; the rest are
                        // chained onto it at dispatch, keyed by request id.
                        self.pending_chains
                            .insert(req.request.id, pieces[1..].to_vec());
                        if trace {
                            self.emit(WlmEvent::Admitted {
                                at: snap.now,
                                request: first.request.id,
                                workload: first.workload.clone(),
                                reason,
                                pieces: pieces.len(),
                            });
                        }
                        self.note_admitted(first, snap);
                        return true;
                    }
                }
                if trace {
                    self.emit(WlmEvent::Admitted {
                        at: snap.now,
                        request: req.request.id,
                        workload: req.workload.clone(),
                        reason,
                        pieces: 1,
                    });
                }
                self.note_admitted(req, snap);
                true
            }
            AdmissionDecision::Defer => {
                if trace {
                    self.emit(WlmEvent::Deferred {
                        at: snap.now,
                        request: req.request.id,
                        workload: req.workload.clone(),
                    });
                }
                self.deferred.push_back(req);
                false
            }
            AdmissionDecision::Reject(reject_reason) => {
                self.rejected += 1;
                self.stats.entry(&req.workload).rejected += 1;
                if trace {
                    self.emit(WlmEvent::Rejected {
                        at: snap.now,
                        request: req.request.id,
                        workload: req.workload.clone(),
                        reason: reject_reason,
                    });
                }
                false
            }
        }
    }

    /// Re-evaluate deferred requests first (FIFO), then the cycle's fresh
    /// arrivals.
    pub(super) fn stage_admit(&mut self, cx: &mut CycleContext) {
        // Matured retries re-enter the wait queue ahead of this cycle's
        // admissions (they already passed the gate once).
        self.release_due_retries(cx);
        // The adaptive backpressure gate re-judges its door from this
        // cycle's queue depth and goodput gradient.
        self.observe_backpressure(cx);
        self.admission.observe(&cx.snap);
        let deferred: Vec<ManagedRequest> = self.deferred.drain(..).collect();
        for req in deferred {
            self.admit(req, &mut cx.snap, AdmitReason::AfterDeferral, cx.trace);
        }
        let incoming = std::mem::take(&mut cx.incoming);
        for req in incoming {
            // Only fresh arrivals face the backpressure gate: deferred
            // requests and matured retries already passed the door once.
            if self.backpressure_rejects(&req, cx) {
                continue;
            }
            self.admit(req, &mut cx.snap, AdmitReason::Fresh, cx.trace);
        }
    }
}
