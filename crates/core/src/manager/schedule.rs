//! Stage 3 — scheduling: let the scheduler release requests from the wait
//! queue to the engine.
//!
//! Before the scheduler runs, the queue view is refreshed (deferrals in
//! the admission stage left it stale by design); after the dispatches, the
//! queue and running views are brought up to date for the execution
//! controllers. The engine-derived fields other than the MPL and blocked
//! count cannot change here — submission acquires no locks and consumes no
//! resources until the next quantum — so they are not recomputed.
//!
//! Emits [`WlmEvent::Scheduled`] per dispatch.

use super::context::CycleContext;
use super::{RunningMeta, WorkloadManager};
use crate::api::ManagedRequest;
use crate::events::WlmEvent;
use std::collections::VecDeque;
use wlm_dbsim::time::SimTime;

impl WorkloadManager {
    /// Submit a released request to the engine, attaching any pending
    /// restructured chain and restart count.
    pub(super) fn dispatch(&mut self, req: ManagedRequest, at: SimTime, trace: bool) {
        let restarts = self.restart_counts.remove(&req.request.id).unwrap_or(0);
        let mut spec = req.request.spec.clone();
        spec.weight = req.weight;
        let id = self.engine.submit_at(spec, req.request.arrival);
        if trace {
            self.emit(WlmEvent::Scheduled {
                at,
                request: req.request.id,
                workload: req.workload.clone(),
                query: id,
            });
        }
        let chain = self
            .pending_chains
            .remove(&req.request.id)
            .map(VecDeque::from)
            .unwrap_or_default();
        self.running.insert(
            id,
            RunningMeta {
                req,
                throttle: 0.0,
                restarts,
                chain,
                suspend_overhead_us: 0,
            },
        );
    }

    /// Run the scheduler over the wait queue and dispatch what it releases.
    pub(super) fn stage_schedule(&mut self, cx: &mut CycleContext) {
        self.refresh_queue_view(&mut cx.snap);
        let released = self.scheduler.select(&mut self.wait_queue, &cx.snap);
        // Open circuit breakers hold their workload's releases.
        let released = self.gate_dispatches(released);
        let at = cx.snap.now;
        for req in released {
            self.dispatch(req, at, cx.trace);
        }
        // Dispatches moved requests from the queue into the engine.
        self.refresh_queue_view(&mut cx.snap);
        self.refresh_running_view(&mut cx.snap);
        cx.snap.running = self.engine.mpl();
        cx.snap.blocked = self.engine.blocked_count();
    }
}
