//! Controller checkpoint/restore: the crash-tolerant control plane.
//!
//! The [`WorkloadManager`] is the single point of failure the rest of the
//! stack cannot tolerate losing: its queues, budgets, breaker episodes and
//! suspend tokens exist nowhere else. [`ControllerState`] is a complete,
//! versioned, serializable image of that state — everything a restarted
//! controller needs, and nothing the engine already knows.
//!
//! # Checkpoint format
//!
//! A checkpoint is the JSON encoding of [`ControllerState`] (see
//! [`ControllerState::to_bytes`]). All collections are ordered
//! (`BTreeMap`/`Vec` in insertion or key order), so the encoding is
//! **deterministic**: the same seed reaching the same cycle produces
//! byte-identical checkpoints. The leading `version` field gates
//! compatibility — [`ControllerState::from_bytes`] rejects any other
//! version rather than misinterpreting the bytes.
//!
//! "Aging clocks" survive because every queued [`ManagedRequest`] carries
//! its absolute arrival time and every parked retry its absolute due time;
//! after a restore, queueing delay and backoff age keep accruing from the
//! original instants rather than restarting from zero.
//!
//! # Recovery protocol
//!
//! [`WorkloadManager::restore`] reconciles a checkpoint against the live
//! engine (the data plane survives a controller crash):
//!
//! 1. every checkpointed running query whose engine query is still live is
//!    **re-adopted** (meta, throttle, restart count and chain reattached);
//! 2. every checkpointed running query the engine no longer knows is
//!    **re-queued** for another attempt — at-least-once semantics: work
//!    that completed between checkpoint and crash runs again rather than
//!    being silently lost (quarantined requests are dropped instead);
//! 3. every live engine query no checkpoint entry owns is an **orphan**
//!    (admitted after the checkpoint, its request state died with the
//!    controller) and is killed;
//! 4. queues, books, windows, counters and the resilience layer's runtime
//!    state are re-filled from the checkpoint; configuration (policies,
//!    schedulers, resilience tuning) is *not* checkpointed — the restarted
//!    controller is constructed with the same configuration and the
//!    checkpoint only re-fills runtime state.
//!
//! [`WorkloadManager::cold_restart`] is the ablation baseline: restoring
//! from an *empty* checkpoint, which kills every live query as an orphan
//! and forgets every queue — what a controller without checkpoints must do.

use super::{RunningMeta, WorkloadManager};
use crate::api::ManagedRequest;
use crate::error::Error;
use crate::events::WlmEvent;
use crate::resilience::ResilienceCheckpoint;
use crate::stats::StatsBook;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::plan::QuerySpec;
use wlm_dbsim::suspend::SuspendedQuery;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::RequestId;
use wlm_workload::trace::QueryLog;

/// Checkpoint format version accepted by [`ControllerState::from_bytes`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// One running query as captured in a checkpoint: the engine id it runs
/// under plus the controller-side meta the engine does not hold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunningCheckpoint {
    /// Engine query id.
    pub query: QueryId,
    /// The managed request.
    pub req: ManagedRequest,
    /// Duty-cycle throttle last applied.
    pub throttle: f64,
    /// Restart count so far.
    pub restarts: u32,
    /// Remaining pieces of a restructured query.
    pub chain: Vec<QuerySpec>,
    /// Suspend/resume overhead accumulated so far, µs.
    pub suspend_overhead_us: u64,
}

/// One suspended query as captured in a checkpoint (suspend/resume
/// banking: the resume token plus the overhead already paid).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuspendedCheckpoint {
    /// The engine resume token (checkpointed operator state).
    pub token: SuspendedQuery,
    /// The managed request.
    pub req: ManagedRequest,
    /// Restart count so far.
    pub restarts: u32,
    /// Suspend/resume overhead accumulated so far, µs.
    pub overhead_us: u64,
}

/// A complete, versioned image of the controller's runtime state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerState {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Simulated time the checkpoint was taken.
    pub at: SimTime,
    /// Control cycle the checkpoint was taken at (provenance; the
    /// restored controller's own cycle counter is *not* rewound).
    pub cycle: u64,
    /// The scheduler wait queue, in queue order.
    pub wait_queue: Vec<ManagedRequest>,
    /// Requests held at the admission gate, in gate order.
    pub deferred: Vec<ManagedRequest>,
    /// The running set with its controller-side meta.
    pub running: Vec<RunningCheckpoint>,
    /// Suspended queries awaiting resumption, oldest first.
    pub suspended: Vec<SuspendedCheckpoint>,
    /// Per-workload books (MPL/budget counters live here).
    pub stats: StatsBook,
    /// Recent response windows per workload.
    pub recent: BTreeMap<String, VecDeque<f64>>,
    /// The DBQL-style query log.
    pub query_log: QueryLog,
    /// Total completions so far.
    pub completed: u64,
    /// Total kills (not resubmitted) so far.
    pub killed: u64,
    /// Total rejections so far.
    pub rejected: u64,
    /// Total suspend+resume overhead paid, µs.
    pub suspend_overhead_us: u64,
    /// Goal violations per workload.
    pub goal_violations: BTreeMap<String, u64>,
    /// Remaining pieces of restructured queries, keyed by request id.
    pub pending_chains: Vec<(RequestId, Vec<QuerySpec>)>,
    /// Restart counts of re-queued requests.
    pub restart_counts: Vec<(RequestId, u32)>,
    /// The resilience layer's runtime state, when the layer is enabled.
    pub resilience: Option<ResilienceCheckpoint>,
}

impl ControllerState {
    /// Serialize to the canonical deterministic byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self)
            .expect("ControllerState contains no non-serializable values by construction")
    }

    /// Parse and version-check a checkpoint produced by
    /// [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ControllerState, Error> {
        let state: ControllerState = serde_json::from_slice(bytes)
            .map_err(|e| Error::Checkpoint(format!("malformed checkpoint: {e}")))?;
        if state.version != CHECKPOINT_VERSION {
            return Err(Error::Checkpoint(format!(
                "unsupported checkpoint version {} (this controller reads version {})",
                state.version, CHECKPOINT_VERSION
            )));
        }
        Ok(state)
    }
}

/// What [`WorkloadManager::restore`] did to reconcile checkpoint and
/// engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryReport {
    /// Cycle the restored checkpoint was taken at.
    pub from_cycle: u64,
    /// Running queries re-adopted (checkpointed and still live).
    pub readopted: usize,
    /// Checkpointed running queries re-queued (engine no longer ran them).
    pub requeued: usize,
    /// Live engine queries killed as orphans (no checkpoint entry).
    pub orphans_killed: usize,
    /// Suspended queries restored with their resume tokens.
    pub suspended_restored: usize,
    /// Would-be re-queues dropped because the request was quarantined.
    pub quarantine_dropped: usize,
}

impl WorkloadManager {
    /// Control cycles executed so far (monotonic; a [`Self::restore`] does
    /// not rewind it — it tracks the engine's quantum count, which
    /// survives controller crashes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Engine completions that finished while no controller was listening
    /// (during [`Self::tick_uncontrolled`] windows) and were therefore
    /// never accounted.
    pub fn completions_unobserved(&self) -> u64 {
        self.completions_unobserved
    }

    /// Capture the controller's complete runtime state. Emits
    /// [`WlmEvent::CheckpointTaken`] when the bus has subscribers.
    pub fn checkpoint(&self) -> ControllerState {
        let state = ControllerState {
            version: CHECKPOINT_VERSION,
            at: self.engine.now(),
            cycle: self.cycle,
            wait_queue: self.wait_queue.clone(),
            deferred: self.deferred.iter().cloned().collect(),
            running: self
                .running
                .iter()
                .map(|(id, meta)| RunningCheckpoint {
                    query: *id,
                    req: meta.req.clone(),
                    throttle: meta.throttle,
                    restarts: meta.restarts,
                    chain: meta.chain.iter().cloned().collect(),
                    suspend_overhead_us: meta.suspend_overhead_us,
                })
                .collect(),
            suspended: self
                .suspended
                .iter()
                .map(|(sq, req, restarts, overhead_us)| SuspendedCheckpoint {
                    token: sq.clone(),
                    req: req.clone(),
                    restarts: *restarts,
                    overhead_us: *overhead_us,
                })
                .collect(),
            stats: self.stats.clone(),
            recent: self.recent.clone(),
            query_log: self.query_log.clone(),
            completed: self.completed,
            killed: self.killed,
            rejected: self.rejected,
            suspend_overhead_us: self.suspend_overhead_us,
            goal_violations: self.goal_violations.clone(),
            pending_chains: self
                .pending_chains
                .iter()
                .map(|(id, chain)| (*id, chain.clone()))
                .collect(),
            restart_counts: self
                .restart_counts
                .iter()
                .map(|(id, n)| (*id, *n))
                .collect(),
            resilience: self.resilience.as_ref().map(|l| l.checkpoint()),
        };
        if self.events.borrow().is_active() {
            self.emit(WlmEvent::CheckpointTaken {
                at: state.at,
                cycle: state.cycle,
                bytes: state.to_bytes().len(),
            });
        }
        state
    }

    /// Restart the control plane from a checkpoint, reconciling it against
    /// the live engine (see the module docs for the protocol). The
    /// engine, configuration and event bus are untouched; only controller
    /// runtime state is replaced. Emits [`WlmEvent::ControllerRestored`].
    pub fn restore(&mut self, ckpt: &ControllerState) -> RecoveryReport {
        let trace = self.events.borrow().is_active();
        // Load the checkpointed control plane wholesale...
        self.wait_queue = ckpt.wait_queue.clone();
        self.deferred = ckpt.deferred.iter().cloned().collect();
        self.suspended = ckpt
            .suspended
            .iter()
            .map(|s| (s.token.clone(), s.req.clone(), s.restarts, s.overhead_us))
            .collect();
        self.stats = ckpt.stats.clone();
        self.recent = ckpt.recent.clone();
        self.query_log = ckpt.query_log.clone();
        self.completed = ckpt.completed;
        self.killed = ckpt.killed;
        self.rejected = ckpt.rejected;
        self.suspend_overhead_us = ckpt.suspend_overhead_us;
        self.goal_violations = ckpt.goal_violations.clone();
        self.pending_chains = ckpt.pending_chains.iter().cloned().collect();
        self.restart_counts = ckpt.restart_counts.iter().cloned().collect();
        match (self.resilience.as_mut(), ckpt.resilience.as_ref()) {
            (Some(layer), Some(rc)) => layer.restore(rc),
            // A checkpoint without resilience state (cold restart) resets
            // the layer to its just-constructed state.
            (Some(layer), None) => layer.restore(&ResilienceCheckpoint::default()),
            (None, _) => {}
        }

        // ...then reconcile the running set against the live engine.
        let overview = self.engine.live_overview();
        let live: BTreeSet<QueryId> = overview.iter().map(|info| info.id).collect();
        let mut report = RecoveryReport {
            from_cycle: ckpt.cycle,
            suspended_restored: ckpt.suspended.len(),
            ..RecoveryReport::default()
        };
        self.running = BTreeMap::new();
        for rc in &ckpt.running {
            if live.contains(&rc.query) {
                // Still running: re-adopt with its meta intact.
                self.running.insert(
                    rc.query,
                    RunningMeta {
                        req: rc.req.clone(),
                        throttle: rc.throttle,
                        restarts: rc.restarts,
                        chain: rc.chain.iter().cloned().collect(),
                        suspend_overhead_us: rc.suspend_overhead_us,
                    },
                );
                report.readopted += 1;
            } else if self
                .resilience
                .as_ref()
                .is_some_and(|l| l.is_quarantined(rc.req.request.id))
            {
                // Poison: its outcome was lost with the crash, but its
                // history was not — do not give it another lap.
                report.quarantine_dropped += 1;
            } else {
                // The engine finished or lost it between checkpoint and
                // crash; the controller cannot tell which. Re-queue for
                // another attempt (at-least-once work conservation).
                self.restart_counts.insert(rc.req.request.id, rc.restarts);
                if !rc.chain.is_empty() {
                    self.pending_chains
                        .insert(rc.req.request.id, rc.chain.clone());
                }
                self.wait_queue.push(rc.req.clone());
                report.requeued += 1;
            }
        }
        for info in &overview {
            if self.running.contains_key(&info.id) {
                continue;
            }
            // Orphan: live in the engine but owned by no checkpoint entry.
            // Its request state died with the controller, so nobody could
            // ever account its completion — reclaim the resources.
            if self.engine.kill(info.id).is_ok() {
                self.killed += 1;
                self.stats.entry(&info.label).killed += 1;
                if trace {
                    self.emit(WlmEvent::Killed {
                        at: self.engine.now(),
                        query: info.id,
                        workload: info.label.clone(),
                        by: "crash-recovery",
                        resubmit: false,
                    });
                }
                report.orphans_killed += 1;
            }
        }

        self.live_snap = self.snapshot();
        if trace {
            self.emit(WlmEvent::ControllerRestored {
                at: self.engine.now(),
                from_cycle: report.from_cycle,
                readopted: report.readopted,
                requeued: report.requeued,
                orphans_killed: report.orphans_killed,
            });
        }
        report
    }

    /// Restart the control plane with *no* checkpoint: every live engine
    /// query is an unowned orphan and is killed, and every queue, window
    /// and budget starts empty. The run epoch (`stats.started`) is kept so
    /// elapsed-time reporting stays comparable. This is the ablation
    /// baseline [`Self::restore`] is measured against.
    pub fn cold_restart(&mut self) -> RecoveryReport {
        let empty = ControllerState {
            version: CHECKPOINT_VERSION,
            at: self.engine.now(),
            cycle: self.cycle,
            wait_queue: Vec::new(),
            deferred: Vec::new(),
            running: Vec::new(),
            suspended: Vec::new(),
            stats: StatsBook::new(self.stats.started),
            recent: BTreeMap::new(),
            query_log: QueryLog::new(),
            completed: 0,
            killed: 0,
            rejected: 0,
            suspend_overhead_us: 0,
            goal_violations: BTreeMap::new(),
            pending_chains: Vec::new(),
            restart_counts: Vec::new(),
            resilience: None,
        };
        self.restore(&empty)
    }

    /// Advance one engine quantum with the controller absent (crashed or
    /// stalled): no arrivals are polled, no stages run, and completions
    /// land unobserved. The engine — the data plane — keeps working; only
    /// management stops.
    pub fn tick_uncontrolled(&mut self) {
        let completions = self.engine.step();
        if self.engine.events_enabled() {
            // Nobody is listening in a dead controller; drop the buffer so
            // it cannot grow without bound across a long outage.
            let _ = self.engine.drain_events();
        }
        for c in completions {
            if self.running.remove(&c.id).is_some() {
                self.completions_unobserved += 1;
            }
        }
        self.cycle += 1;
        self.live_snap = self.snapshot();
    }
}
