//! Stage 4 — execution control: give every controller a view of the
//! running set and apply the actions it returns.
//!
//! Emits [`WlmEvent::Reprioritized`], [`WlmEvent::Throttled`] (a full
//! pause is recorded as `fraction` 1.0 and a resume as 0.0),
//! [`WlmEvent::Killed`], [`WlmEvent::Resubmitted`] and
//! [`WlmEvent::Suspended`], each attributed to the issuing technique's
//! name (`by`).

use super::context::CycleContext;
use super::WorkloadManager;
use crate::api::{ControlAction, RunningQuery};
use crate::events::WlmEvent;
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::time::SimTime;

impl WorkloadManager {
    /// Progress-annotated views of the running set, for controllers.
    pub(super) fn running_views(&self) -> Vec<RunningQuery> {
        self.running
            .iter()
            .filter_map(|(id, meta)| {
                let progress = self.engine.progress(*id).ok()?;
                Some(RunningQuery {
                    id: *id,
                    request: meta.req.clone(),
                    progress,
                    weight: self.engine.weight(*id).unwrap_or(meta.req.weight),
                    throttle: meta.throttle,
                    restarts: meta.restarts,
                })
            })
            .collect()
    }

    fn workload_of(&self, id: QueryId) -> String {
        self.running
            .get(&id)
            .map(|m| m.req.workload.clone())
            .unwrap_or_default()
    }

    /// Apply one control action, attributed to the technique `by`.
    pub(super) fn apply_action(
        &mut self,
        action: ControlAction,
        by: &'static str,
        at: SimTime,
        trace: bool,
    ) {
        match action {
            ControlAction::SetWeight(id, w) => {
                if self.engine.set_weight(id, w).is_ok() && trace {
                    self.emit(WlmEvent::Reprioritized {
                        at,
                        query: id,
                        workload: self.workload_of(id),
                        weight: w,
                        by,
                    });
                }
            }
            ControlAction::Throttle(id, f) => {
                if self.engine.set_throttle(id, f).is_ok() {
                    if let Some(meta) = self.running.get_mut(&id) {
                        meta.throttle = f;
                    }
                    if trace {
                        self.emit(WlmEvent::Throttled {
                            at,
                            query: id,
                            workload: self.workload_of(id),
                            fraction: f,
                            by,
                        });
                    }
                }
            }
            ControlAction::Pause(id) => {
                if self.engine.pause(id).is_ok() && trace {
                    self.emit(WlmEvent::Throttled {
                        at,
                        query: id,
                        workload: self.workload_of(id),
                        fraction: 1.0,
                        by,
                    });
                }
            }
            ControlAction::Resume(id) => {
                if self.engine.resume_paused(id).is_ok() && trace {
                    self.emit(WlmEvent::Throttled {
                        at,
                        query: id,
                        workload: self.workload_of(id),
                        fraction: 0.0,
                        by,
                    });
                }
            }
            ControlAction::Kill { id, resubmit } => {
                if self.engine.kill(id).is_ok() {
                    if let Some(mut meta) = self.running.remove(&id) {
                        if trace {
                            self.emit(WlmEvent::Killed {
                                at,
                                query: id,
                                workload: meta.req.workload.clone(),
                                by,
                                resubmit,
                            });
                        }
                        // The request leaves the engine either way: bank the
                        // suspend/resume overhead it accumulated while
                        // running so the books never lose it.
                        self.stats.entry(&meta.req.workload).suspend_overhead_us +=
                            meta.suspend_overhead_us;
                        // Runaway watchdog: every kill is a strike; at the
                        // threshold the request lands in the quarantine
                        // and is dropped for good — no retry, no resubmit.
                        if let Some(kills) = match self.resilience.as_mut() {
                            Some(layer) => {
                                layer.note_kill_strike(meta.req.request.id, &meta.req.workload)
                            }
                            None => None,
                        } {
                            if trace {
                                self.emit(WlmEvent::Quarantined {
                                    at,
                                    request: meta.req.request.id,
                                    workload: meta.req.workload.clone(),
                                    kills,
                                });
                            }
                        }
                        if self
                            .resilience
                            .as_ref()
                            .is_some_and(|l| l.is_quarantined(meta.req.request.id))
                        {
                            self.killed += 1;
                            self.stats.entry(&meta.req.workload).killed += 1;
                        } else if !resubmit {
                            // The resilience layer may convert the kill
                            // into a delayed retry within the request's
                            // attempt budget.
                            if let Some(meta) = self.try_retry(meta, at, trace) {
                                self.killed += 1;
                                self.stats.entry(&meta.req.workload).killed += 1;
                            }
                        } else {
                            meta.restarts += 1;
                            self.stats.entry(&meta.req.workload).resubmitted += 1;
                            // Re-queue with its chain and restart count
                            // intact so controllers can honour budgets.
                            if !meta.chain.is_empty() {
                                self.pending_chains
                                    .insert(meta.req.request.id, meta.chain.drain(..).collect());
                            }
                            self.restart_counts
                                .insert(meta.req.request.id, meta.restarts);
                            if trace {
                                self.emit(WlmEvent::Resubmitted {
                                    at,
                                    request: meta.req.request.id,
                                    workload: meta.req.workload.clone(),
                                });
                            }
                            self.wait_queue.push(meta.req);
                        }
                    }
                }
            }
            ControlAction::Suspend(id, strategy) => {
                // Take the meta first so there is no window in which the
                // engine succeeded but the meta vanished; on engine
                // refusal the meta goes straight back (BTreeMap reinsert
                // is deterministic).
                if let Some(meta) = self.running.remove(&id) {
                    match self.engine.suspend(id, strategy) {
                        Ok(sq) => {
                            let restarts = meta.restarts;
                            self.suspend_overhead_us += sq.total_overhead_us();
                            self.stats.entry(&meta.req.workload).suspended += 1;
                            if trace {
                                self.emit(WlmEvent::Suspended {
                                    at,
                                    query: id,
                                    workload: meta.req.workload.clone(),
                                    overhead_us: sq.total_overhead_us(),
                                    by,
                                });
                            }
                            if !meta.chain.is_empty() {
                                self.pending_chains
                                    .insert(meta.req.request.id, meta.chain.into_iter().collect());
                            }
                            // Carry the request's accumulated overhead
                            // through the suspension so it survives into
                            // the resumed meta (and, eventually, the
                            // per-workload books).
                            let carried = meta.suspend_overhead_us + sq.total_overhead_us();
                            self.suspended.push((sq, meta.req, restarts, carried));
                        }
                        Err(_) => {
                            self.running.insert(id, meta);
                        }
                    }
                }
            }
        }
    }

    /// Run every execution controller over the running set and apply their
    /// actions.
    pub(super) fn stage_exec_control(&mut self, cx: &mut CycleContext) {
        // The resilience layer acts first (timeouts, breaker cooldowns,
        // the degradation ladder), with or without installed controllers.
        self.resilience_control(cx);
        if self.exec_controllers.is_empty() {
            return;
        }
        let views = self.running_views();
        let at = cx.snap.now;
        let mut controllers = std::mem::take(&mut self.exec_controllers);
        for c in &mut controllers {
            let by = c.technique_name();
            for action in c.control(&views, &cx.snap) {
                self.apply_action(action, by, at, cx.trace);
            }
        }
        self.exec_controllers = controllers;
    }
}
