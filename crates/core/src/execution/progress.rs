//! Progress-indicator-guided execution control.
//!
//! "The difference between the use of query execution time thresholds and
//! query progress indicators is that thresholds have to be manually set,
//! whereas query progress indicators do not need human intervention" — and,
//! as the paper's open-problems section warns, a time threshold kills a
//! query that merely *waited* a long time even when it "was not a big
//! consumer of the resources", so killing it frees almost nothing. The
//! progress-guided controller uses the engine's per-operator work model (a
//! GSLPI-style indicator) and kills only queries whose *remaining work* is
//! genuinely large — the queries whose termination actually releases
//! resources.

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_workload::request::Importance;

/// Kill low-priority queries with a large *remaining work*, rather than a
/// long elapsed time.
#[derive(Debug, Clone, Copy)]
pub struct ProgressGuidedKiller {
    /// Kill when the work remaining (at full speed) exceeds this, seconds.
    pub max_remaining_work_secs: f64,
    /// Grace period before any kill: the indicator needs some observations
    /// to be trustworthy.
    pub min_elapsed_secs: f64,
    /// Only queries below this importance are victims.
    pub protect_at_or_above: Importance,
    /// Resubmit after killing.
    pub resubmit: bool,
}

impl ProgressGuidedKiller {
    /// New controller killing when remaining work exceeds
    /// `max_remaining_work_secs`.
    pub fn new(max_remaining_work_secs: f64) -> Self {
        ProgressGuidedKiller {
            max_remaining_work_secs,
            min_elapsed_secs: 1.0,
            protect_at_or_above: Importance::High,
            resubmit: false,
        }
    }
}

impl Classified for ProgressGuidedKiller {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation")
    }

    fn technique_name(&self) -> &'static str {
        "Progress-guided Cancellation"
    }
}

impl ExecutionController for ProgressGuidedKiller {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        for q in running {
            if q.request.importance >= self.protect_at_or_above {
                continue;
            }
            if q.progress.elapsed.as_secs_f64() < self.min_elapsed_secs {
                continue;
            }
            let remaining_work_secs =
                q.progress
                    .work_total_us
                    .saturating_sub(q.progress.work_done_us) as f64
                    / 1e6;
            if remaining_work_secs > self.max_remaining_work_secs {
                actions.push(ControlAction::Kill {
                    id: q.id,
                    resubmit: self.resubmit,
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};

    fn sized(id: u64, elapsed: f64, total_work_secs: f64, fraction: f64) -> RunningQuery {
        let mut q = running(id, "bi", Importance::Low, elapsed, fraction);
        q.progress.work_total_us = (total_work_secs * 1e6) as u64;
        q.progress.work_done_us = (q.progress.work_total_us as f64 * fraction) as u64;
        q
    }

    #[test]
    fn kills_only_queries_with_much_remaining_work() {
        let mut k = ProgressGuidedKiller::new(60.0);
        // Ran 100s, 500s of work, 99% done: ~5s remain — spared.
        let nearly_done = sized(1, 100.0, 500.0, 0.99);
        // Ran 100s, 500s of work, 5% done: 475s remain — killed.
        let hopeless = sized(2, 100.0, 500.0, 0.05);
        let actions = k.control(&[nearly_done, hopeless], &snapshot(2, 0));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ControlAction::Kill { id, .. } if id.0 == 2));
    }

    #[test]
    fn small_queries_are_spared_even_when_crawling() {
        // The §5.2 scenario: a *small* query queued so long its elapsed time
        // trips any manual threshold. Killing it frees nothing, so the
        // progress-guided controller leaves it alone.
        use crate::api::ExecutionController as _;
        use crate::execution::cancel::ThresholdKiller;
        let crawling_small = sized(1, 100.0, 2.0, 0.3); // 1.4s of work left
        let mut time_killer = ThresholdKiller::new(10.0);
        assert_eq!(
            time_killer
                .control(std::slice::from_ref(&crawling_small), &snapshot(1, 0))
                .len(),
            1,
            "time threshold kills the poor little thing"
        );
        let mut progress_killer = ProgressGuidedKiller::new(60.0);
        assert!(
            progress_killer
                .control(&[crawling_small], &snapshot(1, 0))
                .is_empty(),
            "progress indicator knows it is not a big consumer"
        );
    }

    #[test]
    fn grace_period_and_priority_shield() {
        let mut k = ProgressGuidedKiller::new(10.0);
        let fresh = sized(1, 0.5, 10_000.0, 0.001);
        assert!(k.control(&[fresh], &snapshot(1, 0)).is_empty());
        let mut vip = running(2, "oltp", Importance::Critical, 100.0, 0.01);
        vip.progress.work_total_us = u64::MAX / 2;
        assert!(k.control(&[vip], &snapshot(1, 0)).is_empty());
    }
}
