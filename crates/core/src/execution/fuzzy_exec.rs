//! Fuzzy-logic workload execution control (Krompass, Kuno, Dayal & Kemper,
//! VLDB'07 — "Juggling Feathers and Bowling Balls").
//!
//! A rule-based fuzzy controller inspects each running query's *progress*,
//! *resource consumption* and *priority* — quantities that are imprecise by
//! nature in a warehouse — and selects among the control actions
//! *reprioritize*, *kill* and *kill-and-resubmit*. "With the reprioritize
//! action a query is re-prioritized and its resources are redistributed
//! immediately... The kill action kills a running query and immediately
//! frees the resources... The kill-and-resubmit action kills a running
//! query and the query is queued again for subsequent execution."

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_control::fuzzy::{FuzzyController, FuzzyRule, FuzzyVariable};
use wlm_workload::request::Importance;

/// The fuzzy execution controller.
#[derive(Debug, Clone)]
pub struct FuzzyExecController {
    controller: FuzzyController,
    /// Controller only engages when the system is at least this loaded
    /// (CPU or I/O utilization).
    pub engage_utilization: f64,
    /// Weight multiplier applied by a reprioritize action.
    pub demotion_factor: f64,
    /// Restart budget for kill-and-resubmit.
    pub max_restarts: u32,
}

impl Default for FuzzyExecController {
    fn default() -> Self {
        // Variables: 0 progress [0,1], 1 relative resource consumption
        // [0,1], 2 priority [0,1].
        let vars = vec![
            FuzzyVariable::low_medium_high("progress", 0.0, 1.0),
            FuzzyVariable::low_medium_high("resource_use", 0.0, 1.0),
            FuzzyVariable::low_medium_high("priority", 0.0, 1.0),
        ];
        // The Krompass policy: hogs making no progress die (resubmit if they
        // deserve another chance), hogs near completion are merely starved
        // of resources, priority shields from everything, and light queries
        // are left alone.
        let rules = vec![
            FuzzyRule::when(&[(0, "low"), (1, "high"), (2, "low")], "kill_resubmit"),
            FuzzyRule::when(&[(0, "low"), (1, "high"), (2, "medium")], "reprioritize"),
            FuzzyRule::when(&[(0, "medium"), (1, "high"), (2, "low")], "reprioritize"),
            FuzzyRule::when(&[(0, "high"), (1, "high")], "none").weighted(0.8),
            FuzzyRule::when(&[(1, "low")], "none"),
            FuzzyRule::when(&[(1, "medium")], "none").weighted(0.6),
            FuzzyRule::when(&[(2, "high")], "none"),
        ];
        FuzzyExecController {
            controller: FuzzyController::new(vars, rules),
            engage_utilization: 0.85,
            demotion_factor: 0.2,
            max_restarts: 1,
        }
    }
}

impl FuzzyExecController {
    fn priority_scale(importance: Importance) -> f64 {
        match importance {
            Importance::Low => 0.1,
            Importance::Medium => 0.5,
            Importance::High => 0.9,
            Importance::Critical => 1.0,
        }
    }
}

impl Classified for FuzzyExecController {
    fn taxonomy(&self) -> TaxonomyPath {
        // Its decisive actions are cancellations; reprioritisation is its
        // milder arm and is registered by the reprioritize module.
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation")
    }

    fn technique_name(&self) -> &'static str {
        "Fuzzy Execution Controller"
    }
}

impl ExecutionController for FuzzyExecController {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        if snap.cpu_utilization.max(snap.io_utilization) < self.engage_utilization {
            return Vec::new();
        }
        let total_weight: f64 = running.iter().map(|q| q.weight).sum();
        let mut actions = Vec::new();
        for q in running {
            // Resource consumption relative to the running set: weight share
            // scaled by how much work the query has actually absorbed.
            let share = if total_weight > 0.0 {
                q.weight / total_weight
            } else {
                0.0
            };
            let size_factor = (q.progress.work_total_us as f64 / 1e7).clamp(0.0, 1.0); // ≥10s of work = 1.0
            let inputs = [
                q.progress.fraction,
                (share * running.len() as f64).clamp(0.0, 1.0) * size_factor,
                Self::priority_scale(q.request.importance),
            ];
            let Some((action, _activation)) = self.controller.best_action(&inputs) else {
                continue;
            };
            match action.as_str() {
                "kill" => actions.push(ControlAction::Kill {
                    id: q.id,
                    resubmit: false,
                }),
                "kill_resubmit" => actions.push(ControlAction::Kill {
                    id: q.id,
                    resubmit: q.restarts < self.max_restarts,
                }),
                "reprioritize" => {
                    let w = (q.weight * self.demotion_factor).max(0.05);
                    if w < q.weight {
                        actions.push(ControlAction::SetWeight(q.id, w));
                    }
                }
                _ => {}
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};

    fn busy_snap(running: usize) -> crate::api::SystemSnapshot {
        let mut s = snapshot(running, 0);
        s.cpu_utilization = 0.97;
        s
    }

    #[test]
    fn disengaged_when_system_is_calm() {
        let mut c = FuzzyExecController::default();
        let hog = running(1, "adhoc", Importance::Low, 100.0, 0.05);
        assert!(c.control(&[hog], &snapshot(1, 0)).is_empty());
    }

    #[test]
    fn no_progress_hog_is_killed_with_resubmit() {
        let mut c = FuzzyExecController::default();
        let mut hog = running(1, "adhoc", Importance::Low, 100.0, 0.05);
        hog.weight = 10.0;
        hog.progress.work_total_us = 100_000_000; // a bowling ball
        let actions = c.control(&[hog], &busy_snap(1));
        assert!(
            matches!(
                actions.first(),
                Some(ControlAction::Kill { resubmit: true, .. })
            ),
            "got {actions:?}"
        );
    }

    #[test]
    fn nearly_done_hog_is_not_killed() {
        let mut c = FuzzyExecController::default();
        let mut hog = running(1, "adhoc", Importance::Low, 100.0, 0.95);
        hog.weight = 10.0;
        hog.progress.work_total_us = 100_000_000;
        let actions = c.control(&[hog], &busy_snap(1));
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ControlAction::Kill { .. })),
            "got {actions:?}"
        );
    }

    #[test]
    fn high_priority_is_shielded() {
        let mut c = FuzzyExecController::default();
        let mut vip = running(1, "oltp", Importance::Critical, 100.0, 0.05);
        vip.weight = 10.0;
        vip.progress.work_total_us = 100_000_000;
        let actions = c.control(&[vip], &busy_snap(1));
        assert!(actions.is_empty(), "got {actions:?}");
    }

    #[test]
    fn light_queries_are_left_alone() {
        let mut c = FuzzyExecController::default();
        let mut feather = running(1, "oltp_like", Importance::Low, 0.5, 0.3);
        feather.progress.work_total_us = 10_000; // tiny
        let actions = c.control(&[feather], &busy_snap(1));
        assert!(actions.is_empty(), "got {actions:?}");
    }
}
