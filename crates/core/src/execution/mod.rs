//! Execution control (taxonomy class 4).
//!
//! "Execution control aims to lessen the impact of executing work on other
//! requests that are running concurrently." Three subclasses, as in
//! Figure 1:
//!
//! * **Query reprioritization** — [`reprioritize`]: priority aging on
//!   threshold violation, and policy-driven resource reallocation via the
//!   economic market;
//! * **Query cancellation** — [`cancel`]: kill and kill-and-resubmit;
//! * **Request suspension** — [`throttle`] (request throttling: the
//!   self-imposed-sleep utility and query throttlers of Parekh and Powley)
//!   and [`suspend`] (query suspend-and-resume with DumpState/GoBack
//!   strategies and the optimal suspend plan of Chandramouli et al.).
//!
//! [`fuzzy_exec`] is Krompass et al.'s fuzzy-logic controller that picks
//! among reprioritize/kill/kill-and-resubmit; [`progress`] houses the
//! progress-indicator-guided controls that replace manual time thresholds.

pub mod cancel;
pub mod fuzzy_exec;
pub mod policy_enforcer;
pub mod progress;
pub mod reprioritize;
pub mod suspend;
pub mod throttle;

pub use cancel::ThresholdKiller;
pub use fuzzy_exec::FuzzyExecController;
pub use policy_enforcer::PolicyEnforcer;
pub use progress::ProgressGuidedKiller;
pub use reprioritize::{EconomicReallocator, PriorityAging};
pub use suspend::{optimal_suspend_plan, LoadShedSuspender, SuspendCosts};
pub use throttle::{QueryThrottler, ThrottleMethod, UtilityThrottler};
