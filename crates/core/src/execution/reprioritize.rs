//! Query reprioritization: priority aging and policy-driven resource
//! reallocation.
//!
//! *Priority aging* is "a typical reprioritization mechanism implemented in
//! commercial DBMSs": when a running request exceeds its allowed execution
//! time or row/work estimates, its service level is degraded (DB2 remaps
//! the query to a lower service subclass), shrinking its resource access.
//!
//! *Policy-driven resource reallocation* (Boughton et al., Zhang et al.)
//! allocates shared resources among competing workloads in proportion to
//! business importance through an economic market, re-clearing every control
//! cycle so a mid-run importance change immediately shifts resources.

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use std::collections::BTreeMap;
use wlm_control::economic::{Consumer, EconomicMarket};
use wlm_dbsim::engine::QueryId;

/// Priority aging: demote a query's resource-access weight when it violates
/// its execution thresholds; repeated violations demote it further.
#[derive(Debug, Clone)]
pub struct PriorityAging {
    /// Demote once elapsed time exceeds this, seconds.
    pub max_elapsed_secs: f64,
    /// Also demote when performed work exceeds the estimate by this factor
    /// (the "returns more rows than estimated" exception, in work terms).
    pub work_overrun_factor: f64,
    /// Each demotion multiplies the weight by this (< 1).
    pub demotion_factor: f64,
    /// Floor weight — the lowest service subclass.
    pub min_weight: f64,
    /// Seconds between successive demotions of the same query.
    pub redemote_every_secs: f64,
    demoted_at: BTreeMap<QueryId, f64>,
}

impl Default for PriorityAging {
    fn default() -> Self {
        PriorityAging {
            max_elapsed_secs: 30.0,
            work_overrun_factor: 3.0,
            demotion_factor: 0.25,
            min_weight: 0.05,
            redemote_every_secs: 30.0,
            demoted_at: BTreeMap::new(),
        }
    }
}

impl PriorityAging {
    /// New aging controller demoting after `max_elapsed_secs`.
    pub fn new(max_elapsed_secs: f64) -> Self {
        PriorityAging {
            max_elapsed_secs,
            ..Default::default()
        }
    }

    fn violates(&self, q: &RunningQuery) -> bool {
        let elapsed = q.progress.elapsed.as_secs_f64();
        let overrun =
            q.progress.work_done_us as f64 > q.request.estimate.timerons * self.work_overrun_factor;
        elapsed > self.max_elapsed_secs || overrun
    }
}

impl Classified for PriorityAging {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Reprioritization")
    }

    fn technique_name(&self) -> &'static str {
        "Priority Aging"
    }
}

impl ExecutionController for PriorityAging {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        let now = snap.now.as_secs_f64();
        let mut actions = Vec::new();
        let live: std::collections::BTreeSet<QueryId> = running.iter().map(|q| q.id).collect();
        self.demoted_at.retain(|id, _| live.contains(id));
        for q in running {
            if !self.violates(q) {
                continue;
            }
            if let Some(&last) = self.demoted_at.get(&q.id) {
                if now - last < self.redemote_every_secs {
                    continue;
                }
            }
            let new_weight = (q.weight * self.demotion_factor).max(self.min_weight);
            if new_weight < q.weight {
                actions.push(ControlAction::SetWeight(q.id, new_weight));
                self.demoted_at.insert(q.id, now);
            }
        }
        actions
    }
}

/// Policy-driven resource reallocation through the economic market: each
/// control cycle, workloads bid for the engine's fair-share weight budget
/// with wealth proportional to their importance, and every running query is
/// assigned its workload's cleared per-query weight.
#[derive(Debug, Clone)]
pub struct EconomicReallocator {
    /// Total weight budget distributed across all running queries.
    pub weight_budget: f64,
    /// Importance-weight override per workload (defaults to the request's
    /// importance weight) — flipping an entry here is a live policy change.
    pub importance_override: BTreeMap<String, f64>,
}

impl Default for EconomicReallocator {
    fn default() -> Self {
        EconomicReallocator {
            weight_budget: 100.0,
            importance_override: BTreeMap::new(),
        }
    }
}

impl EconomicReallocator {
    /// New reallocator with the given weight budget.
    pub fn new(weight_budget: f64) -> Self {
        EconomicReallocator {
            weight_budget,
            ..Default::default()
        }
    }

    /// Change a workload's importance weight at run time.
    pub fn set_importance(&mut self, workload: &str, weight: f64) {
        self.importance_override.insert(workload.into(), weight);
    }
}

impl Classified for EconomicReallocator {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Reprioritization")
    }

    fn technique_name(&self) -> &'static str {
        "Policy-driven Resource Allocation"
    }
}

impl ExecutionController for EconomicReallocator {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        if running.is_empty() {
            return Vec::new();
        }
        // Group running queries by workload.
        let mut groups: BTreeMap<&str, Vec<&RunningQuery>> = BTreeMap::new();
        for q in running {
            groups
                .entry(q.request.workload.as_str())
                .or_default()
                .push(q);
        }
        let consumers: Vec<Consumer> = groups
            .iter()
            .map(|(workload, queries)| {
                let imp = self
                    .importance_override
                    .get(*workload)
                    .copied()
                    .unwrap_or_else(|| queries[0].request.importance.default_weight());
                Consumer {
                    name: (*workload).to_string(),
                    // Wealth scales with importance and population so one
                    // important query doesn't starve a sibling of the same
                    // class.
                    wealth: imp * queries.len() as f64,
                    // Nobody can use more than proportionally-all of it.
                    demand: self.weight_budget,
                }
            })
            .collect();
        let outcome = EconomicMarket::new(self.weight_budget).clear(&consumers);
        let mut actions = Vec::new();
        for (consumer, alloc) in consumers.iter().zip(&outcome.allocations) {
            let queries = &groups[consumer.name.as_str()];
            let per_query = (alloc / queries.len() as f64).max(1e-3);
            for q in queries {
                if (q.weight - per_query).abs() / per_query > 0.05 {
                    actions.push(ControlAction::SetWeight(q.id, per_query));
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};
    use wlm_dbsim::engine::QueryId;
    use wlm_workload::request::Importance;

    #[test]
    fn aging_demotes_overdue_queries_once() {
        let mut aging = PriorityAging::new(10.0);
        let overdue = running(1, "adhoc", Importance::Medium, 60.0, 0.2);
        let fresh = running(2, "adhoc", Importance::Medium, 1.0, 0.1);
        let snap = snapshot(2, 0);
        let actions = aging.control(&[overdue.clone(), fresh], &snap);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ControlAction::SetWeight(id, w) => {
                assert_eq!(*id, QueryId(1));
                assert!(*w < Importance::Medium.default_weight());
            }
            other => panic!("unexpected action {other:?}"),
        }
        // Immediately after, the same query is not demoted again.
        let again = aging.control(std::slice::from_ref(&overdue), &snap);
        assert!(again.is_empty());
    }

    #[test]
    fn aging_redemotes_after_interval() {
        let mut aging = PriorityAging::new(10.0);
        aging.redemote_every_secs = 5.0;
        let q = running(1, "adhoc", Importance::Medium, 60.0, 0.2);
        let mut snap = snapshot(1, 0);
        assert_eq!(aging.control(std::slice::from_ref(&q), &snap).len(), 1);
        snap.now = wlm_dbsim::time::SimTime(6_000_000);
        // Weight in `q` is stale (the manager would have updated it); the
        // controller still fires on the threshold.
        assert_eq!(aging.control(&[q], &snap).len(), 1);
    }

    #[test]
    fn aging_respects_floor() {
        let mut aging = PriorityAging::new(1.0);
        aging.min_weight = 1.0;
        let mut q = running(1, "adhoc", Importance::Low, 100.0, 0.1);
        q.weight = 1.0; // already at the floor
        assert!(aging.control(&[q], &snapshot(1, 0)).is_empty());
    }

    #[test]
    fn market_gives_important_workloads_more_weight() {
        let mut realloc = EconomicReallocator::new(100.0);
        let queries = vec![
            running(1, "oltp", Importance::High, 1.0, 0.5),
            running(2, "adhoc", Importance::Low, 1.0, 0.5),
        ];
        let actions = realloc.control(&queries, &snapshot(2, 0));
        let mut weights: BTreeMap<u64, f64> = BTreeMap::new();
        for a in &actions {
            if let ControlAction::SetWeight(id, w) = a {
                weights.insert(id.0, *w);
            }
        }
        let high = weights[&1];
        let low = weights[&2];
        assert!(
            (high / low - 4.0).abs() < 0.2,
            "4x importance ≈ 4x weight: {high} vs {low}"
        );
    }

    #[test]
    fn importance_flip_shifts_allocation() {
        let mut realloc = EconomicReallocator::new(100.0);
        realloc.set_importance("adhoc", 100.0); // policy change: adhoc is king
        let queries = vec![
            running(1, "oltp", Importance::High, 1.0, 0.5),
            running(2, "adhoc", Importance::Low, 1.0, 0.5),
        ];
        let actions = realloc.control(&queries, &snapshot(2, 0));
        let mut weights: BTreeMap<u64, f64> = BTreeMap::new();
        for a in &actions {
            if let ControlAction::SetWeight(id, w) = a {
                weights.insert(id.0, *w);
            }
        }
        // adhoc (importance 100) buys nearly the whole budget; oltp may not
        // even get a SetWeight if its cleared weight is close to its old one.
        let adhoc = weights[&2];
        let oltp = weights.get(&1).copied().unwrap_or(queries[0].weight);
        assert!(adhoc > 50.0, "adhoc weight {adhoc}");
        assert!(adhoc > oltp);
    }

    #[test]
    fn empty_running_set_is_a_noop() {
        let mut realloc = EconomicReallocator::default();
        assert!(realloc.control(&[], &snapshot(0, 0)).is_empty());
    }
}
