//! Request throttling: slowing work down with self-imposed sleeps.
//!
//! Two published throttlers are implemented:
//!
//! * [`UtilityThrottler`] — Parekh et al. (DSOM'04): all work is divided
//!   into *utilities* and *production applications*; the controller watches
//!   production performance degradation against a baseline and a
//!   Proportional-Integral controller translates the policy ("degradation
//!   may not exceed x%") into a sleep fraction imposed on the utilities.
//! * [`QueryThrottler`] — Powley et al. (SMDB'10, CASCON'08): large queries
//!   are throttled so that high-priority workloads meet their goals, with a
//!   choice of a diminishing-step "simple controller" or a black-box model
//!   controller, and a choice of *constant* throttling (many short evenly
//!   distributed pauses → the engine's duty-cycle throttle) or *interrupt*
//!   throttling (one long pause → engine pause/resume).

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use std::collections::BTreeMap;
use wlm_control::blackbox::BlackBoxController;
use wlm_control::pi::PiController;
use wlm_control::step::DiminishingStepController;
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::plan::StatementType;

const TAXONOMY: TaxonomyPath = TaxonomyPath::with_variant(
    TechniqueClass::ExecutionControl,
    "Request Suspension",
    "Request Throttling",
);

/// Parekh et al.'s utility throttling.
#[derive(Debug, Clone)]
pub struct UtilityThrottler {
    /// The production workload whose performance is protected.
    pub production_workload: String,
    /// Baseline (uncontended) production response time, seconds.
    pub baseline_secs: f64,
    /// Allowed degradation, e.g. 0.3 = up to 30% over baseline.
    pub max_degradation: f64,
    pi: PiController,
    current_throttle: f64,
    last_seen: f64,
}

impl UtilityThrottler {
    /// New throttler protecting `production_workload`.
    pub fn new(production_workload: &str, baseline_secs: f64, max_degradation: f64) -> Self {
        UtilityThrottler {
            production_workload: production_workload.into(),
            baseline_secs,
            max_degradation,
            // Output is the sleep fraction in [0, 0.95].
            pi: PiController::new(0.4, 0.15, 0.0, 0.95),
            current_throttle: 0.0,
            last_seen: -1.0,
        }
    }

    /// The sleep fraction currently imposed on utilities.
    pub fn current_throttle(&self) -> f64 {
        self.current_throttle
    }
}

impl Classified for UtilityThrottler {
    fn taxonomy(&self) -> TaxonomyPath {
        TAXONOMY
    }

    fn technique_name(&self) -> &'static str {
        "Utility Throttling (PI)"
    }
}

impl ExecutionController for UtilityThrottler {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        if let Some(achieved) = snap.recent_response_of(&self.production_workload) {
            if achieved != self.last_seen {
                self.last_seen = achieved;
                let degradation = (achieved - self.baseline_secs) / self.baseline_secs.max(1e-9);
                // Error > 0 (too much degradation) raises the throttle.
                let error = degradation - self.max_degradation;
                self.current_throttle = self.pi.update(error);
            }
        }
        running
            .iter()
            .filter(|q| q.request.request.spec.statement == StatementType::Utility)
            .filter(|q| (q.throttle - self.current_throttle).abs() > 0.01)
            .map(|q| ControlAction::Throttle(q.id, self.current_throttle))
            .collect()
    }
}

/// Which feedback controller drives [`QueryThrottler`].
#[derive(Debug, Clone)]
pub enum ThrottleController {
    /// Powley's "simple controller" (diminishing step function).
    Step(DiminishingStepController),
    /// Powley's black-box model controller.
    BlackBox(BlackBoxController),
}

/// Constant vs. interrupt throttling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThrottleMethod {
    /// Many short, evenly distributed pauses (engine duty cycle).
    Constant,
    /// One long pause per episode; length scales with the throttle amount.
    Interrupt {
        /// Episode length over which the pause is scheduled, seconds.
        episode_secs: f64,
    },
}

/// Powley et al.'s autonomic query throttling of large queries.
#[derive(Debug)]
pub struct QueryThrottler {
    /// Workload whose goal is protected.
    pub protected_workload: String,
    /// Response-time goal of the protected workload, seconds.
    pub goal_secs: f64,
    /// Queries from these workloads are throttled.
    pub victim_workloads: Vec<String>,
    /// Feedback controller choice.
    pub controller: ThrottleController,
    /// Pause pattern.
    pub method: ThrottleMethod,
    current_throttle: f64,
    last_seen: f64,
    /// For interrupt throttling: queries currently paused and when to
    /// resume them (seconds timestamps).
    paused_until: BTreeMap<QueryId, f64>,
    episode_started: f64,
}

impl QueryThrottler {
    /// New query throttler with the step controller and constant method.
    pub fn new(protected_workload: &str, goal_secs: f64, victim_workloads: Vec<String>) -> Self {
        QueryThrottler {
            protected_workload: protected_workload.into(),
            goal_secs,
            victim_workloads,
            controller: ThrottleController::Step(DiminishingStepController::new(
                0.0, 0.3, 0.0, 0.95,
            )),
            method: ThrottleMethod::Constant,
            current_throttle: 0.0,
            last_seen: -1.0,
            paused_until: BTreeMap::new(),
            episode_started: 0.0,
        }
    }

    /// Use the black-box model controller instead of the step controller.
    pub fn with_blackbox(mut self) -> Self {
        self.controller = ThrottleController::BlackBox(BlackBoxController::new(0.2, 0.0, 0.95));
        self
    }

    /// Use interrupt throttling with the given episode length.
    pub fn with_interrupt(mut self, episode_secs: f64) -> Self {
        self.method = ThrottleMethod::Interrupt { episode_secs };
        self
    }

    /// The current throttle amount.
    pub fn current_throttle(&self) -> f64 {
        self.current_throttle
    }

    fn is_victim(&self, q: &RunningQuery) -> bool {
        self.victim_workloads.contains(&q.request.workload)
    }

    fn adapt(&mut self, snap: &SystemSnapshot) {
        let Some(achieved) = snap.recent_response_of(&self.protected_workload) else {
            return;
        };
        if achieved == self.last_seen {
            return;
        }
        self.last_seen = achieved;
        match &mut self.controller {
            ThrottleController::Step(step) => {
                let dir = if achieved > self.goal_secs {
                    1 // more throttling
                } else if achieved < self.goal_secs * 0.7 {
                    -1 // goal comfortably met: release resources
                } else {
                    0
                };
                self.current_throttle = step.update(dir);
            }
            ThrottleController::BlackBox(bb) => {
                self.current_throttle = bb.update(self.goal_secs * 0.9, achieved);
            }
        }
    }
}

impl Classified for QueryThrottler {
    fn taxonomy(&self) -> TaxonomyPath {
        TAXONOMY
    }

    fn technique_name(&self) -> &'static str {
        "Query Throttling"
    }
}

impl ExecutionController for QueryThrottler {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        self.adapt(snap);
        let now = snap.now.as_secs_f64();
        let mut actions = Vec::new();
        match self.method {
            ThrottleMethod::Constant => {
                for q in running {
                    if self.is_victim(q) && (q.throttle - self.current_throttle).abs() > 0.01 {
                        actions.push(ControlAction::Throttle(q.id, self.current_throttle));
                    }
                }
            }
            ThrottleMethod::Interrupt { episode_secs } => {
                // Resume queries whose single pause has elapsed.
                let due: Vec<QueryId> = self
                    .paused_until
                    .iter()
                    .filter(|(_, until)| now >= **until)
                    .map(|(id, _)| *id)
                    .collect();
                for id in due {
                    self.paused_until.remove(&id);
                    actions.push(ControlAction::Resume(id));
                }
                // New episode: pause victims for throttle × episode.
                if now - self.episode_started >= episode_secs {
                    self.episode_started = now;
                    if self.current_throttle > 0.01 {
                        let pause_len = episode_secs * self.current_throttle;
                        for q in running {
                            if self.is_victim(q) && !self.paused_until.contains_key(&q.id) {
                                self.paused_until.insert(q.id, now + pause_len);
                                actions.push(ControlAction::Pause(q.id));
                            }
                        }
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};
    use wlm_dbsim::time::SimTime;
    use wlm_workload::request::Importance;

    fn snap_with(production: &str, resp: f64, now_secs: f64) -> crate::api::SystemSnapshot {
        let mut s = snapshot(2, 0);
        s.now = SimTime((now_secs * 1e6) as u64);
        s.recent_response_by_workload
            .insert(production.into(), resp);
        s
    }

    fn utility_query(id: u64) -> RunningQuery {
        let mut q = running(id, "utility", Importance::Low, 5.0, 0.2);
        q.request.request.spec.statement = StatementType::Utility;
        q
    }

    #[test]
    fn utility_throttler_raises_throttle_under_degradation() {
        let mut t = UtilityThrottler::new("oltp", 1.0, 0.2);
        // Production badly degraded (5x baseline).
        let actions = t.control(&[utility_query(1)], &snap_with("oltp", 5.0, 1.0));
        assert_eq!(actions.len(), 1);
        match actions[0] {
            ControlAction::Throttle(_, amount) => assert!(amount > 0.3, "amount {amount}"),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn utility_throttler_releases_when_healthy() {
        let mut t = UtilityThrottler::new("oltp", 1.0, 0.3);
        // Drive the throttle up, then feed healthy measurements.
        t.control(&[utility_query(1)], &snap_with("oltp", 5.0, 1.0));
        for i in 0..30 {
            t.control(
                &[utility_query(1)],
                &snap_with("oltp", 1.0 + 0.001 * i as f64, 2.0 + i as f64),
            );
        }
        assert!(
            t.current_throttle() < 0.2,
            "released to {}",
            t.current_throttle()
        );
    }

    #[test]
    fn utility_throttler_ignores_non_utilities() {
        let mut t = UtilityThrottler::new("oltp", 1.0, 0.2);
        let normal = running(1, "bi", Importance::Low, 5.0, 0.2);
        let actions = t.control(&[normal], &snap_with("oltp", 5.0, 1.0));
        assert!(actions.is_empty());
    }

    #[test]
    fn query_throttler_constant_targets_victims() {
        let mut t = QueryThrottler::new("oltp", 1.0, vec!["bi".into()]);
        let victims = vec![
            running(1, "bi", Importance::Low, 5.0, 0.2),
            running(2, "oltp", Importance::High, 0.2, 0.5),
        ];
        let actions = t.control(&victims, &snap_with("oltp", 4.0, 1.0));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ControlAction::Throttle(id, _) if id.0 == 1));
    }

    #[test]
    fn interrupt_throttling_pauses_then_resumes() {
        let mut t = QueryThrottler::new("oltp", 1.0, vec!["bi".into()]).with_interrupt(10.0);
        let victim = running(1, "bi", Importance::Low, 5.0, 0.2);
        // First adapt pushes throttle up; episode starts at t=20 (past the
        // first 10s boundary from episode_started=0).
        let a1 = t.control(std::slice::from_ref(&victim), &snap_with("oltp", 4.0, 20.0));
        assert!(
            a1.iter()
                .any(|a| matches!(a, ControlAction::Pause(id) if id.0 == 1)),
            "victim should be paused: {a1:?}"
        );
        // Pause length = 10 * throttle (0.3) = 3s; at t=24 it must resume.
        let a2 = t.control(&[victim], &snap_with("oltp", 4.0001, 24.0));
        assert!(
            a2.iter()
                .any(|a| matches!(a, ControlAction::Resume(id) if id.0 == 1)),
            "victim should resume: {a2:?}"
        );
    }

    #[test]
    fn blackbox_variant_converges_on_goal() {
        let mut t = QueryThrottler::new("oltp", 1.0, vec!["bi".into()]).with_blackbox();
        // Plant: oltp response = 3 - 2.5*throttle.
        let mut resp = 3.0;
        for i in 0..40 {
            t.control(
                &[running(1, "bi", Importance::Low, 5.0, 0.2)],
                &snap_with("oltp", resp, i as f64),
            );
            resp = 3.0 - 2.5 * t.current_throttle();
        }
        assert!(
            resp <= 1.05,
            "black-box throttling should reach the goal: {resp}"
        );
    }
}
