//! Query cancellation: kill and kill-and-resubmit.
//!
//! "Query cancellation is widely used in workload management facilities of
//! commercial databases to kill the process of a running query. When a
//! running query is terminated, the shared system resources used by the
//! query are immediately released... The terminated query may be
//! re-submitted to the system for later execution based on a query
//! execution control policy."

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_workload::request::Importance;

/// Threshold-triggered cancellation of long-running, low-importance work.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdKiller {
    /// Kill once elapsed time exceeds this, seconds.
    pub max_elapsed_secs: f64,
    /// Also kill once performed work exceeds this, µs-equivalent.
    pub max_work_us: Option<u64>,
    /// Only queries below this importance are eligible victims.
    pub protect_at_or_above: Importance,
    /// Resubmit victims to the wait queue.
    pub resubmit: bool,
    /// Give up resubmitting after this many restarts (let it run).
    pub max_restarts: u32,
}

impl ThresholdKiller {
    /// Kill (no resubmit) after `max_elapsed_secs`.
    pub fn new(max_elapsed_secs: f64) -> Self {
        ThresholdKiller {
            max_elapsed_secs,
            max_work_us: None,
            protect_at_or_above: Importance::High,
            resubmit: false,
            max_restarts: 0,
        }
    }

    /// Kill-and-resubmit variant.
    pub fn with_resubmit(mut self, max_restarts: u32) -> Self {
        self.resubmit = true;
        self.max_restarts = max_restarts;
        self
    }
}

impl Classified for ThresholdKiller {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation")
    }

    fn technique_name(&self) -> &'static str {
        if self.resubmit {
            "Query Kill-and-Resubmit"
        } else {
            "Query Kill"
        }
    }
}

impl ExecutionController for ThresholdKiller {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        for q in running {
            if q.request.importance >= self.protect_at_or_above {
                continue;
            }
            let elapsed_violation = q.progress.elapsed.as_secs_f64() > self.max_elapsed_secs;
            let work_violation = self
                .max_work_us
                .is_some_and(|w| q.progress.work_done_us > w);
            if elapsed_violation || work_violation {
                let resubmit = self.resubmit && q.restarts < self.max_restarts;
                actions.push(ControlAction::Kill { id: q.id, resubmit });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};
    use wlm_workload::request::Importance;

    #[test]
    fn kills_overdue_low_priority_only() {
        let mut killer = ThresholdKiller::new(10.0);
        let victims = vec![
            running(1, "adhoc", Importance::Low, 60.0, 0.3),
            running(2, "oltp", Importance::High, 60.0, 0.3),
            running(3, "adhoc", Importance::Low, 2.0, 0.1),
        ];
        let actions = killer.control(&victims, &snapshot(3, 0));
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            ControlAction::Kill { id, resubmit: false } if id.0 == 1
        ));
    }

    #[test]
    fn work_threshold_triggers_too() {
        let mut killer = ThresholdKiller::new(1e9);
        killer.max_work_us = Some(10_000);
        let q = running(1, "adhoc", Importance::Low, 1.0, 0.9);
        let actions = killer.control(&[q], &snapshot(1, 0));
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn resubmit_until_restart_budget_spent() {
        let mut killer = ThresholdKiller::new(10.0).with_resubmit(2);
        let mut q = running(1, "adhoc", Importance::Low, 60.0, 0.3);
        let a = killer.control(&[q.clone()], &snapshot(1, 0));
        assert!(matches!(a[0], ControlAction::Kill { resubmit: true, .. }));
        q.restarts = 2;
        let a = killer.control(&[q], &snapshot(1, 0));
        assert!(
            matches!(
                a[0],
                ControlAction::Kill {
                    resubmit: false,
                    ..
                }
            ),
            "restart budget exhausted: plain kill"
        );
    }
}
