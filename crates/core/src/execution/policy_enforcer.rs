//! Declarative execution-policy enforcement.
//!
//! [`crate::policy::ExecutionPolicy`] expresses per-workload run-time rules
//! as data ("kill after 600 s", "demote at 3× work overrun", "suspend on
//! violation"); this controller interprets them. It is the generic form of
//! the DB2 threshold actions and Teradata exception handling: one
//! configured object instead of hand-wired controllers per workload.

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::policy::{ExecutionPolicy, ExecutionViolationAction, WorkloadPolicy};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use std::collections::BTreeMap;
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::suspend::SuspendStrategy;

/// Applies each workload's [`ExecutionPolicy`] to its running queries.
#[derive(Debug, Clone, Default)]
pub struct PolicyEnforcer {
    policies: BTreeMap<String, ExecutionPolicy>,
    /// Violations recorded for `CollectOnly` policies:
    /// `(workload, violations)`.
    collected: BTreeMap<String, u64>,
    /// Queries already acted upon (so Demote/Throttle fire once per query).
    acted: BTreeMap<QueryId, ()>,
}

impl PolicyEnforcer {
    /// Build from workload policies (ignores workloads with no execution
    /// rules).
    pub fn from_policies(policies: &[WorkloadPolicy]) -> Self {
        PolicyEnforcer {
            policies: policies
                .iter()
                .filter(|p| {
                    p.execution.max_elapsed_secs.is_some()
                        || p.execution.max_work_overrun_factor.is_some()
                })
                .map(|p| (p.workload.clone(), p.execution.clone()))
                .collect(),
            collected: BTreeMap::new(),
            acted: BTreeMap::new(),
        }
    }

    /// Add or replace one workload's execution policy.
    pub fn set_policy(&mut self, workload: &str, policy: ExecutionPolicy) {
        self.policies.insert(workload.into(), policy);
    }

    /// Violations recorded for `CollectOnly` workloads.
    pub fn collected_violations(&self, workload: &str) -> u64 {
        self.collected.get(workload).copied().unwrap_or(0)
    }

    fn violates(policy: &ExecutionPolicy, q: &RunningQuery) -> bool {
        let elapsed = policy
            .max_elapsed_secs
            .is_some_and(|limit| q.progress.elapsed.as_secs_f64() > limit);
        let overrun = policy.max_work_overrun_factor.is_some_and(|factor| {
            q.progress.work_done_us as f64 > q.request.estimate.timerons * factor
        });
        elapsed || overrun
    }
}

impl Classified for PolicyEnforcer {
    fn taxonomy(&self) -> TaxonomyPath {
        // Its action set spans the execution-control class; cancellation is
        // the decisive arm.
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation")
    }

    fn technique_name(&self) -> &'static str {
        "Execution Policy Enforcement"
    }
}

impl ExecutionController for PolicyEnforcer {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        let live: std::collections::BTreeSet<QueryId> = running.iter().map(|q| q.id).collect();
        self.acted.retain(|id, _| live.contains(id));
        for q in running {
            let Some(policy) = self.policies.get(&q.request.workload) else {
                continue;
            };
            if !Self::violates(policy, q) {
                continue;
            }
            match policy.on_violation {
                ExecutionViolationAction::CollectOnly => {
                    // Recorded once per query.
                    if self.acted.insert(q.id, ()).is_none() {
                        *self
                            .collected
                            .entry(q.request.workload.clone())
                            .or_insert(0) += 1;
                    }
                }
                ExecutionViolationAction::Demote => {
                    if self.acted.insert(q.id, ()).is_none() {
                        actions.push(ControlAction::SetWeight(q.id, (q.weight * 0.2).max(0.05)));
                    }
                }
                ExecutionViolationAction::Kill => {
                    actions.push(ControlAction::Kill {
                        id: q.id,
                        resubmit: false,
                    });
                }
                ExecutionViolationAction::KillAndResubmit => {
                    actions.push(ControlAction::Kill {
                        id: q.id,
                        resubmit: q.restarts < policy.max_restarts,
                    });
                }
                ExecutionViolationAction::Suspend => {
                    if q.progress.fraction < 0.9 {
                        actions.push(ControlAction::Suspend(q.id, SuspendStrategy::DumpState));
                    }
                }
                ExecutionViolationAction::Throttle(fraction) => {
                    if (q.throttle - fraction).abs() > 0.01 {
                        actions.push(ControlAction::Throttle(q.id, fraction));
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};
    use wlm_workload::request::Importance;

    fn policy(action: ExecutionViolationAction) -> ExecutionPolicy {
        ExecutionPolicy {
            max_elapsed_secs: Some(10.0),
            max_work_overrun_factor: None,
            on_violation: action,
            max_restarts: 1,
        }
    }

    fn overdue(id: u64) -> RunningQuery {
        running(id, "bi", Importance::Low, 60.0, 0.3)
    }

    #[test]
    fn kill_and_resubmit_honours_restart_budget() {
        let mut e = PolicyEnforcer::default();
        e.set_policy("bi", policy(ExecutionViolationAction::KillAndResubmit));
        let fresh = overdue(1);
        let a = e.control(std::slice::from_ref(&fresh), &snapshot(1, 0));
        assert!(matches!(a[0], ControlAction::Kill { resubmit: true, .. }));
        let mut spent = overdue(2);
        spent.restarts = 1;
        let a = e.control(&[spent], &snapshot(1, 0));
        assert!(matches!(
            a[0],
            ControlAction::Kill {
                resubmit: false,
                ..
            }
        ));
    }

    #[test]
    fn demote_fires_once_per_query() {
        let mut e = PolicyEnforcer::default();
        e.set_policy("bi", policy(ExecutionViolationAction::Demote));
        let q = overdue(1);
        assert_eq!(
            e.control(std::slice::from_ref(&q), &snapshot(1, 0)).len(),
            1
        );
        assert!(e
            .control(std::slice::from_ref(&q), &snapshot(1, 0))
            .is_empty());
    }

    #[test]
    fn collect_only_counts_without_acting() {
        let mut e = PolicyEnforcer::default();
        e.set_policy("bi", policy(ExecutionViolationAction::CollectOnly));
        let q = overdue(1);
        assert!(e
            .control(std::slice::from_ref(&q), &snapshot(1, 0))
            .is_empty());
        e.control(std::slice::from_ref(&q), &snapshot(1, 0));
        assert_eq!(e.collected_violations("bi"), 1, "counted exactly once");
    }

    #[test]
    fn throttle_and_suspend_actions() {
        let mut e = PolicyEnforcer::default();
        e.set_policy("bi", policy(ExecutionViolationAction::Throttle(0.7)));
        let q = overdue(1);
        let a = e.control(std::slice::from_ref(&q), &snapshot(1, 0));
        assert!(matches!(a[0], ControlAction::Throttle(_, f) if (f - 0.7).abs() < 1e-9));

        let mut e = PolicyEnforcer::default();
        e.set_policy("bi", policy(ExecutionViolationAction::Suspend));
        let a = e.control(&[overdue(2)], &snapshot(1, 0));
        assert!(matches!(a[0], ControlAction::Suspend(..)));
        // Nearly-done queries are never suspended.
        let nearly = running(3, "bi", Importance::Low, 60.0, 0.95);
        assert!(e.control(&[nearly], &snapshot(1, 0)).is_empty());
    }

    #[test]
    fn work_overrun_trigger() {
        let mut e = PolicyEnforcer::default();
        e.set_policy(
            "bi",
            ExecutionPolicy {
                max_elapsed_secs: None,
                max_work_overrun_factor: Some(2.0),
                on_violation: ExecutionViolationAction::Kill,
                ..Default::default()
            },
        );
        let mut q = running(1, "bi", Importance::Low, 1.0, 0.5);
        // The optimizer thought this was tiny; it has done 10x the estimate.
        q.request.estimate.timerons = q.progress.work_done_us as f64 / 10.0;
        let a = e.control(&[q], &snapshot(1, 0));
        assert!(matches!(a[0], ControlAction::Kill { .. }));
    }

    #[test]
    fn from_policies_filters_inert_entries() {
        let p1 = WorkloadPolicy::new("a", Importance::Low)
            .with_execution(policy(ExecutionViolationAction::Kill));
        let p2 = WorkloadPolicy::new("b", Importance::Low); // no rules
        let e = PolicyEnforcer::from_policies(&[p1, p2]);
        assert_eq!(e.policies.len(), 1);
    }
}
