//! Query suspend-and-resume control (Chandramouli, Bond, Babu & Yang,
//! SIGMOD'07).
//!
//! Two pieces:
//!
//! * [`optimal_suspend_plan`] — the paper finds "the optimal suspend plan
//!   that minimizes the total overhead of suspend/resume while meeting a
//!   given suspend cost constraint" with mixed-integer programming. For the
//!   per-query DumpState/GoBack choice that is a 0/1 knapsack-style dynamic
//!   program over a discretized suspend budget, solved exactly here.
//! * [`LoadShedSuspender`] — an execution controller that, when
//!   high-priority pressure appears, suspends long-running low-priority
//!   queries ("quickly suspend long-running and low-priority queries when
//!   high-priority queries arrive"), choosing each victim's strategy under a
//!   per-episode suspend-cost budget. The manager resumes the suspended
//!   queries once the system is quiet again.

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_workload::request::Importance;

const TAXONOMY: TaxonomyPath = TaxonomyPath::with_variant(
    TechniqueClass::ExecutionControl,
    "Request Suspension",
    "Query Suspend-and-Resume",
);

/// Suspend/resume cost pair for each strategy, for one query (µs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuspendCosts {
    /// DumpState: write the state now...
    pub dump_suspend_us: u64,
    /// ...and read it back at resume.
    pub dump_resume_us: u64,
    /// GoBack: near-free suspend...
    pub goback_suspend_us: u64,
    /// ...but redo the un-checkpointed work at resume.
    pub goback_resume_us: u64,
}

impl SuspendCosts {
    /// Total overhead of a strategy choice.
    pub fn total(&self, strategy: SuspendStrategy) -> u64 {
        match strategy {
            SuspendStrategy::DumpState => self.dump_suspend_us + self.dump_resume_us,
            SuspendStrategy::GoBack => self.goback_suspend_us + self.goback_resume_us,
        }
    }

    /// Suspend-time cost of a strategy choice.
    pub fn suspend_cost(&self, strategy: SuspendStrategy) -> u64 {
        match strategy {
            SuspendStrategy::DumpState => self.dump_suspend_us,
            SuspendStrategy::GoBack => self.goback_suspend_us,
        }
    }
}

/// Choose a strategy per query minimising total suspend+resume overhead
/// subject to `Σ suspend cost ≤ budget_us`. Exact DP over the budget
/// discretized into `resolution` steps (default callers use 256). Returns
/// one strategy per input. If even all-GoBack exceeds the budget, the
/// all-GoBack plan is returned (it is the cheapest possible suspend).
pub fn optimal_suspend_plan(costs: &[SuspendCosts], budget_us: u64) -> Vec<SuspendStrategy> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let min_total: u64 = costs.iter().map(|c| c.goback_suspend_us).sum();
    if min_total > budget_us {
        return vec![SuspendStrategy::GoBack; n];
    }
    // DP over the suspend budget, discretized onto a grid. Weights are
    // rounded *up*, so a plan the DP accepts never exceeds the true budget.
    const GRID: usize = 512;
    let scale = ((budget_us as f64) / GRID as f64).max(1.0);
    let cap = (budget_us as f64 / scale) as usize;
    let to_grid = |us: u64| -> usize { (us as f64 / scale).ceil() as usize };
    const INF: u64 = u64::MAX / 4;

    // tables[i][b] = min total overhead of the first i items using exactly
    // grid-budget b; picks[i][b] = the choice of item i that achieved it.
    let mut tables: Vec<Vec<u64>> = Vec::with_capacity(n + 1);
    let mut picks: Vec<Vec<u8>> = Vec::with_capacity(n);
    let mut cur = vec![INF; cap + 1];
    cur[0] = 0;
    tables.push(cur.clone());
    for c in costs {
        let mut next = vec![INF; cap + 1];
        let mut pick = vec![u8::MAX; cap + 1];
        let (g_w, g_v) = (
            to_grid(c.goback_suspend_us),
            c.total(SuspendStrategy::GoBack),
        );
        let (d_w, d_v) = (
            to_grid(c.dump_suspend_us),
            c.total(SuspendStrategy::DumpState),
        );
        for b in 0..=cap {
            if cur[b] >= INF {
                continue;
            }
            if b + g_w <= cap && cur[b] + g_v < next[b + g_w] {
                next[b + g_w] = cur[b] + g_v;
                pick[b + g_w] = 0;
            }
            if b + d_w <= cap && cur[b] + d_v < next[b + d_w] {
                next[b + d_w] = cur[b] + d_v;
                pick[b + d_w] = 1;
            }
        }
        cur = next.clone();
        tables.push(next);
        picks.push(pick);
    }
    let b_end = (0..=cap)
        .min_by_key(|&b| tables[n][b])
        .expect("non-empty table");
    let mut plan = vec![SuspendStrategy::GoBack; n];
    let mut b = b_end;
    let mut value = tables[n][b];
    for i in (0..n).rev() {
        let c = &costs[i];
        let strat = if picks[i][b] == 1 {
            SuspendStrategy::DumpState
        } else {
            SuspendStrategy::GoBack
        };
        plan[i] = strat;
        b -= to_grid(c.suspend_cost(strat));
        value -= c.total(strat);
        debug_assert_eq!(tables[i][b], value, "backtrack consistency");
    }
    plan
}

/// Execution controller that suspends low-priority long-runners when
/// high-priority pressure appears.
#[derive(Debug, Clone)]
pub struct LoadShedSuspender {
    /// Suspend victims when at least this many high-importance requests are
    /// queued or running.
    pub pressure_threshold: usize,
    /// Only queries below this importance are victims.
    pub protect_at_or_above: Importance,
    /// Victims must have at least this much work remaining, µs (suspending
    /// a nearly-done query is pure waste).
    pub min_remaining_us: u64,
    /// Per-episode suspend-cost budget, µs.
    pub suspend_budget_us: u64,
}

impl Default for LoadShedSuspender {
    fn default() -> Self {
        LoadShedSuspender {
            pressure_threshold: 4,
            protect_at_or_above: Importance::High,
            min_remaining_us: 2_000_000,
            suspend_budget_us: 5_000_000,
        }
    }
}

impl LoadShedSuspender {
    fn pressure(&self, running: &[RunningQuery], snap: &SystemSnapshot) -> usize {
        // Queued high-priority work is visible as total queue length here;
        // running high-priority is counted directly.
        let running_high = running
            .iter()
            .filter(|q| q.request.importance >= self.protect_at_or_above)
            .count();
        running_high + snap.queued
    }

    /// Estimate suspend costs of a running query from its progress. The
    /// engine computes exact costs at suspension; this pre-estimate only
    /// ranks strategies: state ≈ fraction of current op × state size is not
    /// visible here, so work-done serves as the proxy both costs scale with.
    fn estimate_costs(q: &RunningQuery) -> SuspendCosts {
        let op_work = q.progress.work_done_us / (q.progress.op_idx as u64 + 1).max(1);
        SuspendCosts {
            dump_suspend_us: op_work / 10,
            dump_resume_us: op_work / 10,
            goback_suspend_us: 100,
            goback_resume_us: op_work / 2,
        }
    }
}

impl Classified for LoadShedSuspender {
    fn taxonomy(&self) -> TaxonomyPath {
        TAXONOMY
    }

    fn technique_name(&self) -> &'static str {
        "Query Suspend-and-Resume"
    }
}

impl ExecutionController for LoadShedSuspender {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        if self.pressure(running, snap) < self.pressure_threshold {
            return Vec::new();
        }
        let victims: Vec<&RunningQuery> = running
            .iter()
            .filter(|q| q.request.importance < self.protect_at_or_above)
            .filter(|q| {
                q.progress
                    .work_total_us
                    .saturating_sub(q.progress.work_done_us)
                    >= self.min_remaining_us
            })
            .collect();
        if victims.is_empty() {
            return Vec::new();
        }
        let costs: Vec<SuspendCosts> = victims.iter().map(|q| Self::estimate_costs(q)).collect();
        let plan = optimal_suspend_plan(&costs, self.suspend_budget_us);
        victims
            .iter()
            .zip(plan)
            .map(|(q, strategy)| ControlAction::Suspend(q.id, strategy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};

    fn costs(dump_s: u64, dump_r: u64, goback_r: u64) -> SuspendCosts {
        SuspendCosts {
            dump_suspend_us: dump_s,
            dump_resume_us: dump_r,
            goback_suspend_us: 1,
            goback_resume_us: goback_r,
        }
    }

    #[test]
    fn plan_prefers_dump_when_budget_allows_and_redo_is_expensive() {
        // Dump total = 200, GoBack total = 1001: dump wins given budget.
        let plan = optimal_suspend_plan(&[costs(100, 100, 1000)], 1_000);
        assert_eq!(plan, vec![SuspendStrategy::DumpState]);
    }

    #[test]
    fn plan_falls_back_to_goback_under_tight_budget() {
        let plan = optimal_suspend_plan(&[costs(100_000, 100_000, 1000)], 10);
        assert_eq!(plan, vec![SuspendStrategy::GoBack]);
    }

    #[test]
    fn plan_spends_budget_where_it_saves_most() {
        // Two queries, budget for one dump. Query B's redo is catastrophic;
        // the budget must go to B.
        let a = costs(500, 500, 1_200); // dump saves ~200
        let b = costs(500, 500, 50_000); // dump saves ~49_000
        let plan = optimal_suspend_plan(&[a, b], 600);
        assert_eq!(plan[0], SuspendStrategy::GoBack);
        assert_eq!(plan[1], SuspendStrategy::DumpState);
    }

    #[test]
    fn plan_handles_empty_and_scales() {
        assert!(optimal_suspend_plan(&[], 100).is_empty());
        // Many items still solve exactly at grid scale.
        let many: Vec<SuspendCosts> = (0..50).map(|i| costs(100 + i, 100, 10_000)).collect();
        let plan = optimal_suspend_plan(&many, 50_000);
        assert_eq!(plan.len(), 50);
        assert!(plan.iter().all(|s| *s == SuspendStrategy::DumpState));
    }

    #[test]
    fn plan_goback_when_cheaper_overall() {
        // Redo is trivial (just checkpointed): GoBack total 11 beats dump 2000.
        let c = SuspendCosts {
            dump_suspend_us: 1000,
            dump_resume_us: 1000,
            goback_suspend_us: 1,
            goback_resume_us: 10,
        };
        let plan = optimal_suspend_plan(&[c], 1_000_000);
        assert_eq!(plan, vec![SuspendStrategy::GoBack]);
    }

    #[test]
    fn suspender_fires_only_under_pressure() {
        let mut s = LoadShedSuspender {
            min_remaining_us: 100_000,
            ..Default::default()
        };
        let victims = vec![
            running(1, "bi", Importance::Low, 30.0, 0.3),
            running(2, "oltp", Importance::High, 0.1, 0.5),
        ];
        // Calm: queue empty.
        assert!(s.control(&victims, &snapshot(2, 0)).is_empty());
        // Pressure: deep queue of (presumably important) work.
        let actions = s.control(&victims, &snapshot(2, 10));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ControlAction::Suspend(id, _) if id.0 == 1));
    }

    #[test]
    fn suspender_spares_nearly_done_queries() {
        let mut s = LoadShedSuspender::default();
        let almost_done = running(1, "bi", Importance::Low, 30.0, 0.999);
        let actions = s.control(&[almost_done], &snapshot(1, 10));
        assert!(actions.is_empty());
    }
}
