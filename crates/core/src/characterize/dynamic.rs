//! Dynamic workload characterization: learning what kind of workload is
//! present (Elnaffar, Martin & Horman, CIKM'02; Tran et al., SIGMOD'15).
//!
//! "The system learns the characteristics of sample workloads running on a
//! database server, builds a workload classifier and uses the workload
//! classifier to dynamically identify unknown arriving workloads." The
//! classifier here is Gaussian naive Bayes over *system snapshot features*
//! (mean request cost, write fraction, arrival rate, rows per request) —
//! small, interpretable and exactly sufficient to separate OLTP from
//! DSS/OLAP mixes.

use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};

/// Features summarising a short observation window of arriving work.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SnapshotFeatures {
    /// Mean estimated cost of requests in the window, log10 timerons.
    pub log_mean_cost: f64,
    /// Fraction of requests that write.
    pub write_fraction: f64,
    /// Arrivals per second.
    pub arrival_rate: f64,
    /// Mean estimated rows returned, log10.
    pub log_mean_rows: f64,
}

impl SnapshotFeatures {
    /// As a feature vector.
    pub fn as_vec(&self) -> [f64; 4] {
        [
            self.log_mean_cost,
            self.write_fraction,
            self.arrival_rate,
            self.log_mean_rows,
        ]
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    label: String,
    prior_log: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// Gaussian naive Bayes over fixed-length feature vectors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    classes: Vec<ClassModel>,
    dims: usize,
}

impl GaussianNb {
    /// Fit from labeled samples. Panics if samples are empty or ragged.
    pub fn fit(samples: &[(Vec<f64>, String)]) -> Self {
        assert!(!samples.is_empty(), "need training data");
        let dims = samples[0].0.len();
        assert!(samples.iter().all(|(x, _)| x.len() == dims), "ragged data");
        let mut labels: Vec<String> = samples.iter().map(|(_, l)| l.clone()).collect();
        labels.sort();
        labels.dedup();
        let n_total = samples.len() as f64;
        let classes = labels
            .into_iter()
            .map(|label| {
                let rows: Vec<&Vec<f64>> = samples
                    .iter()
                    .filter(|(_, l)| *l == label)
                    .map(|(x, _)| x)
                    .collect();
                let n = rows.len() as f64;
                let means: Vec<f64> = (0..dims)
                    .map(|d| rows.iter().map(|r| r[d]).sum::<f64>() / n)
                    .collect();
                let vars: Vec<f64> = (0..dims)
                    .map(|d| {
                        let v = rows.iter().map(|r| (r[d] - means[d]).powi(2)).sum::<f64>() / n;
                        v.max(1e-6) // variance floor keeps likelihoods finite
                    })
                    .collect();
                ClassModel {
                    label,
                    prior_log: (n / n_total).ln(),
                    means,
                    vars,
                }
            })
            .collect();
        GaussianNb { classes, dims }
    }

    /// Log-posterior (up to a constant) of each class for `x`.
    pub fn log_posteriors(&self, x: &[f64]) -> Vec<(String, f64)> {
        assert_eq!(x.len(), self.dims, "feature arity");
        self.classes
            .iter()
            .map(|c| {
                let ll: f64 = x
                    .iter()
                    .zip(c.means.iter().zip(&c.vars))
                    .map(|(&xi, (&m, &v))| {
                        -0.5 * ((xi - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln())
                    })
                    .sum();
                (c.label.clone(), c.prior_log + ll)
            })
            .collect()
    }

    /// Most likely class for `x`.
    pub fn predict(&self, x: &[f64]) -> String {
        self.log_posteriors(x)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
            .expect("fitted model has classes")
    }
}

/// The workload-type classifier: naive Bayes over [`SnapshotFeatures`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTypeClassifier {
    model: GaussianNb,
}

impl WorkloadTypeClassifier {
    /// Train from labeled snapshots.
    pub fn train(samples: &[(SnapshotFeatures, String)]) -> Self {
        let rows: Vec<(Vec<f64>, String)> = samples
            .iter()
            .map(|(f, l)| (f.as_vec().to_vec(), l.clone()))
            .collect();
        WorkloadTypeClassifier {
            model: GaussianNb::fit(&rows),
        }
    }

    /// Identify the workload type present in a snapshot.
    pub fn identify(&self, snapshot: &SnapshotFeatures) -> String {
        self.model.predict(&snapshot.as_vec())
    }
}

impl Classified for WorkloadTypeClassifier {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(
            TechniqueClass::WorkloadCharacterization,
            "Dynamic Characterization",
        )
    }

    fn technique_name(&self) -> &'static str {
        "ML Workload Classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn oltp_snapshot(rng: &mut SmallRng) -> SnapshotFeatures {
        SnapshotFeatures {
            log_mean_cost: 2.5 + rng.gen::<f64>(),
            write_fraction: 0.6 + 0.3 * rng.gen::<f64>(),
            arrival_rate: 50.0 + 100.0 * rng.gen::<f64>(),
            log_mean_rows: 1.0 + rng.gen::<f64>(),
        }
    }

    fn dss_snapshot(rng: &mut SmallRng) -> SnapshotFeatures {
        SnapshotFeatures {
            log_mean_cost: 6.0 + 1.5 * rng.gen::<f64>(),
            write_fraction: 0.05 * rng.gen::<f64>(),
            arrival_rate: 0.5 + 3.0 * rng.gen::<f64>(),
            log_mean_rows: 2.5 + 2.0 * rng.gen::<f64>(),
        }
    }

    #[test]
    fn separates_oltp_from_dss() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut train = Vec::new();
        for _ in 0..100 {
            train.push((oltp_snapshot(&mut rng), "OLTP".to_string()));
            train.push((dss_snapshot(&mut rng), "DSS".to_string()));
        }
        let clf = WorkloadTypeClassifier::train(&train);
        let mut correct = 0;
        let n = 200;
        for _ in 0..n / 2 {
            if clf.identify(&oltp_snapshot(&mut rng)) == "OLTP" {
                correct += 1;
            }
            if clf.identify(&dss_snapshot(&mut rng)) == "DSS" {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn nb_handles_zero_variance_features() {
        let samples = vec![
            (vec![1.0, 5.0], "a".to_string()),
            (vec![1.0, 5.1], "a".to_string()),
            (vec![1.0, 9.0], "b".to_string()),
            (vec![1.0, 9.2], "b".to_string()),
        ];
        let nb = GaussianNb::fit(&samples);
        assert_eq!(nb.predict(&[1.0, 5.05]), "a");
        assert_eq!(nb.predict(&[1.0, 9.1]), "b");
    }

    #[test]
    fn priors_matter_for_ambiguous_points() {
        // Class "common" has 9x the prior of "rare"; the midpoint between
        // their means should go to "common".
        let mut samples = Vec::new();
        for i in 0..90 {
            samples.push((vec![0.0 + (i % 3) as f64 * 0.01], "common".to_string()));
        }
        for i in 0..10 {
            samples.push((vec![2.0 + (i % 3) as f64 * 0.01], "rare".to_string()));
        }
        let nb = GaussianNb::fit(&samples);
        assert_eq!(nb.predict(&[1.0]), "common");
    }

    #[test]
    #[should_panic(expected = "need training data")]
    fn fit_rejects_empty() {
        GaussianNb::fit(&[]);
    }

    #[test]
    fn taxonomy_is_dynamic_characterization() {
        let c = WorkloadTypeClassifier::default();
        assert_eq!(c.taxonomy().subclass, "Dynamic Characterization");
        assert!(c.taxonomy().is_valid());
    }
}
