//! Workload characterization (taxonomy class 1).
//!
//! *Static characterization* defines workloads before requests arrive and
//! maps each arrival to a workload by its operational properties (origin,
//! statement type, estimated cost/cardinality) or user-written criteria
//! functions. *Dynamic characterization* learns to identify the type of a
//! workload from what it observes at run time (Elnaffar et al.'s
//! machine-learning classifier).

pub mod dynamic;
pub mod static_def;

pub use dynamic::{GaussianNb, SnapshotFeatures, WorkloadTypeClassifier};
pub use static_def::{Classification, Predicate, StaticCharacterizer, WorkloadDefinition};

use crate::taxonomy::Classified;
use wlm_dbsim::optimizer::CostEstimate;
use wlm_workload::request::Request;

/// Maps arriving requests to workloads.
pub trait Characterizer: Classified {
    /// Classify one arriving request.
    fn classify(&mut self, request: &Request, estimate: &CostEstimate) -> Classification;
}
