//! Static workload characterization: workload definitions.
//!
//! The approach every commercial facility uses (DB2 workloads + work
//! classes, SQL Server workload groups + classifier functions, Teradata
//! classification criteria): workloads are defined *before* requests
//! arrive, each with a predicate over the request's operational properties
//! — its origin ("who"), its statement type and estimates ("what") — and
//! arriving requests are mapped to the first matching definition.

use super::Characterizer;
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_dbsim::optimizer::CostEstimate;
use wlm_dbsim::plan::StatementType;
use wlm_workload::request::{Importance, Request};

/// Result of classifying one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The workload (service class) the request was mapped to.
    pub workload: String,
    /// Effective importance (definition override or the request's own).
    pub importance: Importance,
}

/// A predicate over request attributes — the classification criteria of the
/// commercial facilities ("who", "what") in composable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Application name equals.
    ApplicationIs(String),
    /// User name equals.
    UserIs(String),
    /// Client IP equals.
    ClientIpIs([u8; 4]),
    /// Statement type equals.
    StatementIs(StatementType),
    /// Estimated cost at least this many timerons (DB2's predictive work
    /// classes: "all large queries with an estimated cost over ...").
    EstCostAtLeast(f64),
    /// Estimated cost strictly below.
    EstCostBelow(f64),
    /// Estimated returned rows at least.
    EstRowsAtLeast(u64),
    /// Request importance at least.
    ImportanceAtLeast(Importance),
    /// Conjunction.
    All(Vec<Predicate>),
    /// Disjunction.
    Any(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (catch-all definitions).
    True,
}

impl Predicate {
    /// Evaluate against a request and its estimate.
    pub fn matches(&self, req: &Request, est: &CostEstimate) -> bool {
        match self {
            Predicate::ApplicationIs(a) => req.origin.application == *a,
            Predicate::UserIs(u) => req.origin.user == *u,
            Predicate::ClientIpIs(ip) => req.origin.client_ip == *ip,
            Predicate::StatementIs(s) => req.spec.statement == *s,
            Predicate::EstCostAtLeast(c) => est.timerons >= *c,
            Predicate::EstCostBelow(c) => est.timerons < *c,
            Predicate::EstRowsAtLeast(r) => est.rows >= *r,
            Predicate::ImportanceAtLeast(i) => req.importance >= *i,
            Predicate::All(ps) => ps.iter().all(|p| p.matches(req, est)),
            Predicate::Any(ps) => ps.iter().any(|p| p.matches(req, est)),
            Predicate::Not(p) => !p.matches(req, est),
            Predicate::True => true,
        }
    }
}

/// One workload definition: a name, a predicate and an optional importance
/// override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDefinition {
    /// Workload name.
    pub name: String,
    /// Matching criteria.
    pub predicate: Predicate,
    /// Importance assigned to matching requests (None keeps the request's
    /// own level).
    pub importance: Option<Importance>,
}

impl WorkloadDefinition {
    /// New definition.
    pub fn new(name: &str, predicate: Predicate) -> Self {
        WorkloadDefinition {
            name: name.into(),
            predicate,
            importance: None,
        }
    }

    /// Override the importance of matching requests.
    pub fn with_importance(mut self, importance: Importance) -> Self {
        self.importance = Some(importance);
        self
    }
}

/// User-written classifier logic (SQL Server's classification functions):
/// returns a workload-group name, or `None` to fall through to the
/// definitions.
pub type CriteriaFn = Box<dyn Fn(&Request, &CostEstimate) -> Option<String> + Send>;

/// The static characterizer: ordered definitions with first-match-wins
/// semantics, optional criteria functions evaluated first, and a default
/// workload for everything unmatched.
pub struct StaticCharacterizer {
    definitions: Vec<WorkloadDefinition>,
    criteria_fns: Vec<CriteriaFn>,
    default_workload: String,
}

impl std::fmt::Debug for StaticCharacterizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticCharacterizer")
            .field("definitions", &self.definitions)
            .field("criteria_fns", &self.criteria_fns.len())
            .field("default_workload", &self.default_workload)
            .finish()
    }
}

impl StaticCharacterizer {
    /// New characterizer with the given definitions.
    pub fn new(definitions: Vec<WorkloadDefinition>) -> Self {
        StaticCharacterizer {
            definitions,
            criteria_fns: Vec::new(),
            default_workload: "default".into(),
        }
    }

    /// Set the fall-through workload name (SQL Server's *default group*).
    pub fn with_default(mut self, name: &str) -> Self {
        self.default_workload = name.into();
        self
    }

    /// Register a classification function, evaluated before the
    /// definitions. A function that fails (returns a nonexistent behaviour)
    /// simply falls through, as Resource Governor classifies failed
    /// requests into the default group.
    pub fn with_criteria_fn(mut self, f: CriteriaFn) -> Self {
        self.criteria_fns.push(f);
        self
    }

    /// The defined workload names (plus the default).
    pub fn workload_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.definitions.iter().map(|d| d.name.clone()).collect();
        names.push(self.default_workload.clone());
        names
    }
}

impl Classified for StaticCharacterizer {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(
            TechniqueClass::WorkloadCharacterization,
            "Static Characterization",
        )
    }

    fn technique_name(&self) -> &'static str {
        "Workload Definition"
    }
}

impl Characterizer for StaticCharacterizer {
    fn classify(&mut self, request: &Request, estimate: &CostEstimate) -> Classification {
        for f in &self.criteria_fns {
            if let Some(group) = f(request, estimate) {
                return Classification {
                    workload: group,
                    importance: request.importance,
                };
            }
        }
        for def in &self.definitions {
            if def.predicate.matches(request, estimate) {
                return Classification {
                    workload: def.name.clone(),
                    importance: def.importance.unwrap_or(request.importance),
                };
            }
        }
        Classification {
            workload: self.default_workload.clone(),
            importance: request.importance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::optimizer::CostModel;
    use wlm_dbsim::plan::PlanBuilder;
    use wlm_dbsim::time::SimTime;
    use wlm_workload::request::{Origin, RequestId};

    fn request(app: &str, rows: u64) -> (Request, CostEstimate) {
        let spec = PlanBuilder::table_scan(rows).build().into_spec();
        let est = CostModel::oracle().estimate_spec(&spec);
        (
            Request {
                id: RequestId(1),
                arrival: SimTime::ZERO,
                origin: Origin::new(app, "u", 1),
                spec,
                importance: Importance::Medium,
                shard_key: None,
            },
            est,
        )
    }

    #[test]
    fn first_match_wins_with_default_fallthrough() {
        let mut c = StaticCharacterizer::new(vec![
            WorkloadDefinition::new("pos", Predicate::ApplicationIs("pos_terminal".into()))
                .with_importance(Importance::Critical),
            WorkloadDefinition::new("big", Predicate::EstCostAtLeast(1e6)),
        ])
        .with_default("other");

        let (req, est) = request("pos_terminal", 100);
        let cls = c.classify(&req, &est);
        assert_eq!(cls.workload, "pos");
        assert_eq!(cls.importance, Importance::Critical, "override applies");

        let (req, est) = request("sql_console", 50_000_000);
        assert_eq!(c.classify(&req, &est).workload, "big");

        let (req, est) = request("sql_console", 10);
        let cls = c.classify(&req, &est);
        assert_eq!(cls.workload, "other");
        assert_eq!(cls.importance, Importance::Medium, "no override");
    }

    #[test]
    fn criteria_functions_take_precedence() {
        let mut c =
            StaticCharacterizer::new(vec![WorkloadDefinition::new("everything", Predicate::True)])
                .with_criteria_fn(Box::new(|req, _| {
                    (req.origin.user == "ceo").then(|| "vip".to_string())
                }));
        let (mut req, est) = request("app", 100);
        req.origin.user = "ceo".into();
        assert_eq!(c.classify(&req, &est).workload, "vip");
        req.origin.user = "pleb".into();
        assert_eq!(c.classify(&req, &est).workload, "everything");
    }

    #[test]
    fn predicate_combinators() {
        let (req, est) = request("app", 1_000_000);
        let p = Predicate::All(vec![
            Predicate::ApplicationIs("app".into()),
            Predicate::Not(Box::new(Predicate::EstCostBelow(10.0))),
        ]);
        assert!(p.matches(&req, &est));
        let q = Predicate::Any(vec![
            Predicate::UserIs("nobody".into()),
            Predicate::EstRowsAtLeast(1),
        ]);
        assert!(q.matches(&req, &est));
        assert!(Predicate::StatementIs(StatementType::Read).matches(&req, &est));
        assert!(!Predicate::ImportanceAtLeast(Importance::High).matches(&req, &est));
    }

    #[test]
    fn workload_names_include_default() {
        let c = StaticCharacterizer::new(vec![WorkloadDefinition::new("a", Predicate::True)]);
        assert_eq!(c.workload_names(), vec!["a".to_string(), "default".into()]);
    }

    #[test]
    fn classified_as_static_characterization() {
        let c = StaticCharacterizer::new(vec![]);
        assert!(c.taxonomy().is_valid());
        assert_eq!(c.taxonomy().subclass, "Static Characterization");
    }
}
