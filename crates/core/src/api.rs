//! Shared interfaces of the workload management pipeline.
//!
//! The paper's three-step practice — understand objectives, identify
//! requests, impose controls — becomes three trait families here:
//! [`AdmissionController`] (control point: request arrival),
//! [`Scheduler`] (control point: before dispatch to the engine) and
//! [`ExecutionController`] (control point: during execution), each guided by
//! policies ([`crate::policy`]) and classified in the taxonomy
//! ([`crate::taxonomy::Classified`]).

use crate::characterize::Characterizer;
use crate::error::Error;
use crate::manager::{ManagerConfig, WorkloadManager};
use crate::policy::WorkloadPolicy;
use crate::resilience::ResilienceConfig;
use crate::scheduling::Restructurer;
use crate::taxonomy::Classified;
use serde::{Deserialize, Serialize};
use wlm_dbsim::engine::{EngineConfig, QueryId, QueryProgress};
use wlm_dbsim::optimizer::{CostEstimate, CostModel};
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::{Importance, Request};

/// A request after identification: the raw request plus everything the
/// workload manager derived about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedRequest {
    /// The arriving request.
    pub request: Request,
    /// Optimizer cost estimate (available before execution).
    pub estimate: CostEstimate,
    /// The workload (service class) it was mapped to.
    pub workload: String,
    /// Effective importance after classification (the workload definition
    /// may override the request's own level).
    pub importance: Importance,
    /// Fair-share weight the query will run with.
    pub weight: f64,
}

/// The monitor snapshot handed to every controller at each decision point.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Current simulated time.
    pub now: SimTime,
    /// Queries currently in the engine (the actual MPL).
    pub running: usize,
    /// Queries blocked on locks.
    pub blocked: usize,
    /// Requests waiting in the scheduler queue.
    pub queued: usize,
    /// Lock-manager conflict ratio.
    pub conflict_ratio: f64,
    /// Throughput of the last closed metrics interval, completions/s.
    pub last_throughput: f64,
    /// Throughput of the interval before that.
    pub prev_throughput: f64,
    /// Mean CPU utilization over recent intervals, `[0, 1]`.
    pub cpu_utilization: f64,
    /// Mean disk utilization over recent intervals, `[0, 1]`.
    pub io_utilization: f64,
    /// Sum of estimated costs (timerons) of queries now in the engine.
    pub running_cost: f64,
    /// Sum of estimated costs (timerons) of requests waiting in the
    /// scheduler queue or held at the admission gate — together with
    /// [`Self::running_cost`] the *outstanding* cost a router charges a
    /// shard with.
    #[serde(default)]
    pub queued_cost: f64,
    /// Running-query counts per workload (for per-workload MPL policies).
    pub running_by_workload: std::collections::BTreeMap<String, usize>,
    /// Wait-queue counts per workload (admitted but not yet dispatched) —
    /// throttles that meter a workload's *in-flight* total need both.
    pub queued_by_workload: std::collections::BTreeMap<String, usize>,
    /// Sum of estimated costs (timerons) of running queries per workload
    /// (cost-limit schedulers).
    pub running_cost_by_workload: std::collections::BTreeMap<String, f64>,
    /// Mean response time (seconds) per workload over the recent window
    /// (feedback schedulers and throttlers).
    pub recent_response_by_workload: std::collections::BTreeMap<String, f64>,
    /// Working memory held by running queries, MiB (memory-aware batch
    /// schedulers).
    pub running_mem_mb: u64,
    /// Engine memory capacity, MiB.
    pub memory_capacity_mb: u64,
}

impl SystemSnapshot {
    /// Running queries belonging to `workload`.
    pub fn running_in(&self, workload: &str) -> usize {
        self.running_by_workload.get(workload).copied().unwrap_or(0)
    }

    /// Admitted-but-queued requests belonging to `workload`.
    pub fn queued_in(&self, workload: &str) -> usize {
        self.queued_by_workload.get(workload).copied().unwrap_or(0)
    }

    /// Running plus queued requests of `workload` (in-flight total).
    pub fn in_flight(&self, workload: &str) -> usize {
        self.running_in(workload) + self.queued_in(workload)
    }

    /// Total admitted-but-undispatched requests (the wait queue only —
    /// excludes requests still held at the admission gate).
    pub fn admitted_queued(&self) -> usize {
        self.queued_by_workload.values().sum()
    }

    /// Estimated running cost of `workload`, timerons.
    pub fn running_cost_in(&self, workload: &str) -> f64 {
        self.running_cost_by_workload
            .get(workload)
            .copied()
            .unwrap_or(0.0)
    }

    /// Recent mean response of `workload`, seconds (`None` if unobserved).
    pub fn recent_response_of(&self, workload: &str) -> Option<f64> {
        self.recent_response_by_workload.get(workload).copied()
    }

    /// Total estimated cost this system is committed to: running plus
    /// queued, timerons. Least-outstanding-cost routing balances on this.
    pub fn outstanding_cost(&self) -> f64 {
        self.running_cost + self.queued_cost
    }
}

/// An admission verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Enter the scheduler's wait queue.
    Admit,
    /// Hold at the admission gate; the controller is asked again next cycle.
    Defer,
    /// Turn the request away with a message.
    Reject(String),
}

/// Control point 1: request arrival.
pub trait AdmissionController: Classified {
    /// Decide the fate of an arriving (or deferred) request.
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision;

    /// Called once per control cycle with the fresh monitor snapshot, before
    /// any [`decide`](Self::decide) calls — feedback controllers adapt their
    /// internal limits here.
    fn observe(&mut self, _snap: &SystemSnapshot) {}

    /// Learn from a completed query (prediction-based controllers train on
    /// these). `actual_secs` is the measured response time and
    /// `true_work_us` the work the engine actually performed.
    fn learn(&mut self, _req: &ManagedRequest, _actual_secs: f64, _true_work_us: u64) {}
}

/// Control point 2: ordering and releasing the wait queue.
pub trait Scheduler: Classified {
    /// Remove and return the requests to dispatch now. `queue` is ordered by
    /// arrival; implementations may reorder freely.
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest>;
}

/// What the execution controllers see about one running query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningQuery {
    /// Engine id.
    pub id: QueryId,
    /// The managed request it came from.
    pub request: ManagedRequest,
    /// Live progress from the engine.
    pub progress: QueryProgress,
    /// Current fair-share weight.
    pub weight: f64,
    /// Current throttle sleep fraction applied (0 = none).
    pub throttle: f64,
    /// Times this query has already been killed-and-resubmitted.
    pub restarts: u32,
}

/// An action an execution controller asks the manager to apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Change a query's resource-access weight (reprioritization).
    SetWeight(QueryId, f64),
    /// Set a query's duty-cycle throttle (0 = full speed).
    Throttle(QueryId, f64),
    /// Fully pause a query.
    Pause(QueryId),
    /// Resume a paused query.
    Resume(QueryId),
    /// Cancel a query; optionally re-queue it for later execution.
    Kill {
        /// The victim.
        id: QueryId,
        /// Whether to resubmit it to the wait queue.
        resubmit: bool,
    },
    /// Suspend a query to disk with the given strategy; the manager resumes
    /// it later per its policy.
    Suspend(QueryId, SuspendStrategy),
}

/// Control point 3: during execution.
pub trait ExecutionController: Classified {
    /// Inspect the running set and issue control actions.
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction>;
}

/// The typed facade for assembling a [`WorkloadManager`].
///
/// Every knob of the pipeline — engine sizing, the optimizer's error
/// level, workload policies, and the pluggable characterizer / admission /
/// scheduler / execution-control components — is a named builder method,
/// validated once in [`WlmBuilder::build`]. This replaces constructing a
/// [`ManagerConfig`] by hand and calling `set_*` mutators afterwards.
///
/// ```
/// use wlm_core::api::WlmBuilder;
/// use wlm_core::scheduling::PriorityScheduler;
/// use wlm_workload::generators::OltpSource;
/// use wlm_dbsim::time::SimDuration;
///
/// let mut manager = WlmBuilder::new()
///     .scheduler(Box::new(PriorityScheduler::new(16)))
///     .build()
///     .expect("valid configuration");
/// let mut source = OltpSource::new(20.0, 1);
/// let report = manager.run(&mut source, SimDuration::from_secs(5));
/// assert!(report.workload("oltp").is_some());
/// ```
pub struct WlmBuilder {
    config: ManagerConfig,
    characterizer: Option<Box<dyn Characterizer>>,
    admission: Option<Box<dyn AdmissionController>>,
    scheduler: Option<Box<dyn Scheduler>>,
    exec_controllers: Vec<Box<dyn ExecutionController>>,
    restructurer: Option<Restructurer>,
    resilience: Option<ResilienceConfig>,
}

impl Default for WlmBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WlmBuilder {
    /// A builder with pass-through defaults: a default engine, an oracle-free
    /// default cost model, label-based identification, admit-all, FCFS at
    /// effectively unlimited MPL and no execution control — the unmanaged
    /// baseline every technique is measured against.
    pub fn new() -> Self {
        WlmBuilder {
            config: ManagerConfig::default(),
            characterizer: None,
            admission: None,
            scheduler: None,
            exec_controllers: Vec::new(),
            restructurer: None,
            resilience: None,
        }
    }

    /// Size the simulated engine.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Set the optimizer cost model (estimation-error level).
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.config.cost_model = cost_model;
        self
    }

    /// Add one workload policy (repeatable; workload names must be unique).
    pub fn policy(mut self, policy: WorkloadPolicy) -> Self {
        self.config.policies.push(policy);
        self
    }

    /// Add several workload policies at once.
    pub fn policies(mut self, policies: impl IntoIterator<Item = WorkloadPolicy>) -> Self {
        self.config.policies.extend(policies);
        self
    }

    /// Auto-resume suspended queries when fewer than `n` queries run.
    pub fn resume_when_running_below(mut self, n: usize) -> Self {
        self.config.resume_when_running_below = n;
        self
    }

    /// Response samples per workload kept for the recent-performance window.
    pub fn response_window(mut self, samples: usize) -> Self {
        self.config.response_window = samples;
        self
    }

    /// Ignore business importance when assigning engine weights (the
    /// unmanaged baseline that cannot see request priority).
    pub fn uniform_weights(mut self, uniform: bool) -> Self {
        self.config.uniform_weights = uniform;
        self
    }

    /// Replace the characterizer (workload identification).
    pub fn characterizer(mut self, c: Box<dyn Characterizer>) -> Self {
        self.characterizer = Some(c);
        self
    }

    /// Replace the admission controller.
    pub fn admission(mut self, a: Box<dyn AdmissionController>) -> Self {
        self.admission = Some(a);
        self
    }

    /// Replace the scheduler.
    pub fn scheduler(mut self, s: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(s);
        self
    }

    /// Add an execution controller (repeatable; they run in insertion
    /// order).
    pub fn exec_controller(mut self, c: Box<dyn ExecutionController>) -> Self {
        self.exec_controllers.push(c);
        self
    }

    /// Enable query restructuring with the given policy.
    pub fn restructurer(mut self, r: Restructurer) -> Self {
        self.restructurer = Some(r);
        self
    }

    /// Enable the resilience layer (retry budgets, circuit breakers, the
    /// degradation ladder — each only if configured).
    pub fn resilience(mut self, cfg: ResilienceConfig) -> Self {
        self.resilience = Some(cfg);
        self
    }

    /// Validate the configuration and assemble the manager.
    pub fn build(self) -> Result<WorkloadManager, Error> {
        if self.config.engine.cores == 0 {
            return Err(Error::Config("engine must have at least one core".into()));
        }
        if self.config.engine.memory_mb == 0 {
            return Err(Error::Config("engine must have memory".into()));
        }
        if self.config.engine.quantum.as_micros() == 0 {
            return Err(Error::Config("engine quantum must be positive".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.config.policies {
            if p.workload.is_empty() {
                return Err(Error::Config("policy workload name is empty".into()));
            }
            if !seen.insert(p.workload.clone()) {
                return Err(Error::Config(format!(
                    "duplicate policy for workload `{}`",
                    p.workload
                )));
            }
        }
        let mut mgr = WorkloadManager::from_config(self.config);
        if let Some(c) = self.characterizer {
            mgr.set_characterizer(c);
        }
        if let Some(a) = self.admission {
            mgr.set_admission(a);
        }
        if let Some(s) = self.scheduler {
            mgr.set_scheduler(s);
        }
        for c in self.exec_controllers {
            mgr.add_exec_controller(c);
        }
        if let Some(r) = self.restructurer {
            mgr.set_restructurer(r);
        }
        if let Some(cfg) = self.resilience {
            mgr.set_resilience(cfg);
        }
        Ok(mgr)
    }
}

impl std::fmt::Debug for WlmBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WlmBuilder")
            .field("config", &self.config)
            .field("exec_controllers", &self.exec_controllers.len())
            .field("restructurer", &self.restructurer)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_decision_equality() {
        assert_eq!(AdmissionDecision::Admit, AdmissionDecision::Admit);
        assert_ne!(
            AdmissionDecision::Admit,
            AdmissionDecision::Reject("x".into())
        );
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let no_cores = WlmBuilder::new().engine(EngineConfig {
            cores: 0,
            ..Default::default()
        });
        assert!(matches!(no_cores.build(), Err(Error::Config(_))));

        let dup = WlmBuilder::new()
            .policy(WorkloadPolicy::new("oltp", Importance::High))
            .policy(WorkloadPolicy::new("oltp", Importance::Low));
        match dup.build() {
            Err(Error::Config(msg)) => assert!(msg.contains("oltp"), "{msg}"),
            other => panic!("expected config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn builder_applies_components() {
        let mgr = WlmBuilder::new()
            .engine(EngineConfig {
                cores: 2,
                ..Default::default()
            })
            .policy(WorkloadPolicy::new("oltp", Importance::High))
            .response_window(5)
            .build()
            .expect("valid configuration");
        assert_eq!(mgr.response_window(), 5);
        assert_eq!(mgr.engine().config().cores, 2);
    }

    #[test]
    fn outstanding_cost_sums_running_and_queued() {
        let snap = SystemSnapshot {
            running_cost: 10.0,
            queued_cost: 2.5,
            ..Default::default()
        };
        assert!((snap.outstanding_cost() - 12.5).abs() < 1e-12);
    }
}
