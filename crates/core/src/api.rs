//! Shared interfaces of the workload management pipeline.
//!
//! The paper's three-step practice — understand objectives, identify
//! requests, impose controls — becomes three trait families here:
//! [`AdmissionController`] (control point: request arrival),
//! [`Scheduler`] (control point: before dispatch to the engine) and
//! [`ExecutionController`] (control point: during execution), each guided by
//! policies ([`crate::policy`]) and classified in the taxonomy
//! ([`crate::taxonomy::Classified`]).

use crate::taxonomy::Classified;
use serde::{Deserialize, Serialize};
use wlm_dbsim::engine::{QueryId, QueryProgress};
use wlm_dbsim::optimizer::CostEstimate;
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::{Importance, Request};

/// A request after identification: the raw request plus everything the
/// workload manager derived about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagedRequest {
    /// The arriving request.
    pub request: Request,
    /// Optimizer cost estimate (available before execution).
    pub estimate: CostEstimate,
    /// The workload (service class) it was mapped to.
    pub workload: String,
    /// Effective importance after classification (the workload definition
    /// may override the request's own level).
    pub importance: Importance,
    /// Fair-share weight the query will run with.
    pub weight: f64,
}

/// The monitor snapshot handed to every controller at each decision point.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Current simulated time.
    pub now: SimTime,
    /// Queries currently in the engine (the actual MPL).
    pub running: usize,
    /// Queries blocked on locks.
    pub blocked: usize,
    /// Requests waiting in the scheduler queue.
    pub queued: usize,
    /// Lock-manager conflict ratio.
    pub conflict_ratio: f64,
    /// Throughput of the last closed metrics interval, completions/s.
    pub last_throughput: f64,
    /// Throughput of the interval before that.
    pub prev_throughput: f64,
    /// Mean CPU utilization over recent intervals, `[0, 1]`.
    pub cpu_utilization: f64,
    /// Mean disk utilization over recent intervals, `[0, 1]`.
    pub io_utilization: f64,
    /// Sum of estimated costs (timerons) of queries now in the engine.
    pub running_cost: f64,
    /// Running-query counts per workload (for per-workload MPL policies).
    pub running_by_workload: std::collections::BTreeMap<String, usize>,
    /// Wait-queue counts per workload (admitted but not yet dispatched) —
    /// throttles that meter a workload's *in-flight* total need both.
    pub queued_by_workload: std::collections::BTreeMap<String, usize>,
    /// Sum of estimated costs (timerons) of running queries per workload
    /// (cost-limit schedulers).
    pub running_cost_by_workload: std::collections::BTreeMap<String, f64>,
    /// Mean response time (seconds) per workload over the recent window
    /// (feedback schedulers and throttlers).
    pub recent_response_by_workload: std::collections::BTreeMap<String, f64>,
    /// Working memory held by running queries, MiB (memory-aware batch
    /// schedulers).
    pub running_mem_mb: u64,
    /// Engine memory capacity, MiB.
    pub memory_capacity_mb: u64,
}

impl SystemSnapshot {
    /// Running queries belonging to `workload`.
    pub fn running_in(&self, workload: &str) -> usize {
        self.running_by_workload.get(workload).copied().unwrap_or(0)
    }

    /// Admitted-but-queued requests belonging to `workload`.
    pub fn queued_in(&self, workload: &str) -> usize {
        self.queued_by_workload.get(workload).copied().unwrap_or(0)
    }

    /// Running plus queued requests of `workload` (in-flight total).
    pub fn in_flight(&self, workload: &str) -> usize {
        self.running_in(workload) + self.queued_in(workload)
    }

    /// Total admitted-but-undispatched requests (the wait queue only —
    /// excludes requests still held at the admission gate).
    pub fn admitted_queued(&self) -> usize {
        self.queued_by_workload.values().sum()
    }

    /// Estimated running cost of `workload`, timerons.
    pub fn running_cost_in(&self, workload: &str) -> f64 {
        self.running_cost_by_workload
            .get(workload)
            .copied()
            .unwrap_or(0.0)
    }

    /// Recent mean response of `workload`, seconds (`None` if unobserved).
    pub fn recent_response_of(&self, workload: &str) -> Option<f64> {
        self.recent_response_by_workload.get(workload).copied()
    }
}

/// An admission verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Enter the scheduler's wait queue.
    Admit,
    /// Hold at the admission gate; the controller is asked again next cycle.
    Defer,
    /// Turn the request away with a message.
    Reject(String),
}

/// Control point 1: request arrival.
pub trait AdmissionController: Classified {
    /// Decide the fate of an arriving (or deferred) request.
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision;

    /// Called once per control cycle with the fresh monitor snapshot, before
    /// any [`decide`](Self::decide) calls — feedback controllers adapt their
    /// internal limits here.
    fn observe(&mut self, _snap: &SystemSnapshot) {}

    /// Learn from a completed query (prediction-based controllers train on
    /// these). `actual_secs` is the measured response time and
    /// `true_work_us` the work the engine actually performed.
    fn learn(&mut self, _req: &ManagedRequest, _actual_secs: f64, _true_work_us: u64) {}
}

/// Control point 2: ordering and releasing the wait queue.
pub trait Scheduler: Classified {
    /// Remove and return the requests to dispatch now. `queue` is ordered by
    /// arrival; implementations may reorder freely.
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest>;
}

/// What the execution controllers see about one running query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningQuery {
    /// Engine id.
    pub id: QueryId,
    /// The managed request it came from.
    pub request: ManagedRequest,
    /// Live progress from the engine.
    pub progress: QueryProgress,
    /// Current fair-share weight.
    pub weight: f64,
    /// Current throttle sleep fraction applied (0 = none).
    pub throttle: f64,
    /// Times this query has already been killed-and-resubmitted.
    pub restarts: u32,
}

/// An action an execution controller asks the manager to apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Change a query's resource-access weight (reprioritization).
    SetWeight(QueryId, f64),
    /// Set a query's duty-cycle throttle (0 = full speed).
    Throttle(QueryId, f64),
    /// Fully pause a query.
    Pause(QueryId),
    /// Resume a paused query.
    Resume(QueryId),
    /// Cancel a query; optionally re-queue it for later execution.
    Kill {
        /// The victim.
        id: QueryId,
        /// Whether to resubmit it to the wait queue.
        resubmit: bool,
    },
    /// Suspend a query to disk with the given strategy; the manager resumes
    /// it later per its policy.
    Suspend(QueryId, SuspendStrategy),
}

/// Control point 3: during execution.
pub trait ExecutionController: Classified {
    /// Inspect the running set and issue control actions.
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_decision_equality() {
        assert_eq!(AdmissionDecision::Admit, AdmissionDecision::Admit);
        assert_ne!(
            AdmissionDecision::Admit,
            AdmissionDecision::Reject("x".into())
        );
    }
}
