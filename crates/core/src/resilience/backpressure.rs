//! Adaptive admission backpressure: tighten the door before queues go
//! metastable.
//!
//! Classic admission control in this repo is threshold-based (reject when
//! a static limit is crossed). Under a flash crowd that is too late: by
//! the time the queue hits a hard limit, every queued request is already
//! destined to miss its SLA and — with retries enabled — to come back as
//! even more load. [`BackpressureGate`] is the CoDel-flavoured
//! alternative: it tracks an EWMA of queue depth (a standing-queue proxy
//! for queueing delay) and, whenever the smoothed depth sits above target
//! *while goodput is no longer rising*, multiplicatively shrinks the
//! fraction of fresh arrivals admitted. When the standing queue drains
//! back below target the gate relaxes additively toward fully open —
//! AIMD, so the door reopens gently rather than re-admitting the crowd
//! at once.
//!
//! The gate only judges *fresh* arrivals: deferred requests and matured
//! retries already passed the door once (retries are governed separately
//! by the retry-budget token bucket in
//! [`ResilienceLayer`](super::ResilienceLayer)). Which arrivals pass is
//! decided by a deterministic per-request hash, so a run is byte-identical
//! for a given seed regardless of wall-clock scheduling.

use serde::{Deserialize, Serialize};
use wlm_workload::request::RequestId;

/// Tuning for the adaptive admission gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackpressureConfig {
    /// EWMA queue depth above which the door starts tightening (the
    /// CoDel "target": a standing queue longer than this is treated as
    /// excess delay, not burst absorption).
    pub queue_target: f64,
    /// EWMA smoothing factor for the queue-depth signal.
    pub ema_alpha: f64,
    /// Control cycles between gate adjustments.
    pub eval_cycles: u32,
    /// Multiplicative decrease applied to the admit fraction per
    /// tightening step.
    pub tighten_step: f64,
    /// Additive increase applied to the admit fraction per relaxing step.
    pub relax_step: f64,
    /// Floor on the admit fraction — the door never shuts completely.
    pub min_admit_fraction: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            queue_target: 48.0,
            ema_alpha: 0.2,
            eval_cycles: 10,
            tighten_step: 0.25,
            relax_step: 0.1,
            min_admit_fraction: 0.1,
        }
    }
}

/// The live gate state: smoothed queue signal plus the current admit
/// fraction.
#[derive(Debug, Clone)]
pub struct BackpressureGate {
    cfg: BackpressureConfig,
    ema_queue: f64,
    cycles_since_eval: u32,
    admit_fraction: f64,
    tighten_steps: u64,
    sheds: u64,
}

impl BackpressureGate {
    /// A fully open gate.
    pub fn new(cfg: BackpressureConfig) -> Self {
        BackpressureGate {
            cfg,
            ema_queue: 0.0,
            cycles_since_eval: 0,
            admit_fraction: 1.0,
            tighten_steps: 0,
            sheds: 0,
        }
    }

    /// Feed one control cycle's queue depth and goodput gradient. Every
    /// `eval_cycles` the gate re-judges the door; returns
    /// `(from, to)` admit fractions when the setting changed.
    pub fn observe(&mut self, queued: usize, goodput_rising: bool) -> Option<(f64, f64)> {
        let alpha = self.cfg.ema_alpha.clamp(0.0, 1.0);
        self.ema_queue = alpha * queued as f64 + (1.0 - alpha) * self.ema_queue;
        self.cycles_since_eval += 1;
        if self.cycles_since_eval < self.cfg.eval_cycles.max(1) {
            return None;
        }
        self.cycles_since_eval = 0;
        let from = self.admit_fraction;
        if self.ema_queue > self.cfg.queue_target && !goodput_rising {
            // Standing queue above target and goodput flat or falling:
            // more admissions only deepen the queue. Tighten.
            self.admit_fraction = (self.admit_fraction * (1.0 - self.cfg.tighten_step))
                .max(self.cfg.min_admit_fraction.clamp(0.0, 1.0));
            if self.admit_fraction < from {
                self.tighten_steps += 1;
            }
        } else if self.ema_queue <= self.cfg.queue_target {
            self.admit_fraction = (self.admit_fraction + self.cfg.relax_step).min(1.0);
        }
        (self.admit_fraction != from).then_some((from, self.admit_fraction))
    }

    /// Whether this fresh arrival passes the door. Deterministic: the
    /// verdict depends only on the seed, the request id, and the current
    /// admit fraction.
    pub fn admits(&mut self, seed: u64, id: RequestId) -> bool {
        if self.admit_fraction >= 1.0 {
            return true;
        }
        let draw = splitmix64(seed ^ id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Top 53 bits -> uniform in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.admit_fraction {
            true
        } else {
            self.sheds += 1;
            false
        }
    }

    /// The configuration this gate was built with.
    pub fn config(&self) -> &BackpressureConfig {
        &self.cfg
    }

    /// Current admit fraction (1.0 = door fully open).
    pub fn admit_fraction(&self) -> f64 {
        self.admit_fraction
    }

    /// Smoothed queue-depth signal.
    pub fn queue_ema(&self) -> f64 {
        self.ema_queue
    }

    /// Tightening steps taken over the run.
    pub fn tighten_steps(&self) -> u64 {
        self.tighten_steps
    }

    /// Fresh arrivals shed at the door over the run.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Serializable snapshot of the gate's runtime state (configuration
    /// excluded — the restarted controller re-installs it).
    pub fn checkpoint(&self) -> BackpressureCheckpoint {
        BackpressureCheckpoint {
            ema_queue: self.ema_queue,
            cycles_since_eval: self.cycles_since_eval,
            admit_fraction: self.admit_fraction,
            tighten_steps: self.tighten_steps,
            sheds: self.sheds,
        }
    }

    /// Replace the gate's runtime state with a checkpointed one, keeping
    /// the current configuration.
    pub fn restore(&mut self, ckpt: &BackpressureCheckpoint) {
        self.ema_queue = ckpt.ema_queue;
        self.cycles_since_eval = ckpt.cycles_since_eval;
        self.admit_fraction = ckpt.admit_fraction.clamp(0.0, 1.0);
        self.tighten_steps = ckpt.tighten_steps;
        self.sheds = ckpt.sheds;
    }
}

/// Serializable runtime state of a [`BackpressureGate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BackpressureCheckpoint {
    /// Smoothed queue-depth signal.
    pub ema_queue: f64,
    /// Cycles since the last gate adjustment.
    pub cycles_since_eval: u32,
    /// Current admit fraction.
    pub admit_fraction: f64,
    /// Tightening steps so far.
    pub tighten_steps: u64,
    /// Fresh arrivals shed at the door so far.
    pub sheds: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BackpressureConfig {
        BackpressureConfig {
            queue_target: 10.0,
            ema_alpha: 0.5,
            eval_cycles: 2,
            tighten_step: 0.5,
            relax_step: 0.25,
            min_admit_fraction: 0.2,
        }
    }

    #[test]
    fn tightens_under_standing_queue_and_relaxes_when_it_drains() {
        let mut gate = BackpressureGate::new(quick());
        // Deep queue, goodput flat: the door tightens multiplicatively.
        let mut steps = Vec::new();
        for _ in 0..6 {
            if let Some(step) = gate.observe(100, false) {
                steps.push(step);
            }
        }
        assert_eq!(steps.len(), 3, "one adjustment per eval window");
        assert!(gate.admit_fraction() < 0.3);
        assert!(gate.tighten_steps() >= 2);
        // Queue drains: the door relaxes additively back to fully open.
        for _ in 0..20 {
            gate.observe(0, true);
        }
        assert_eq!(gate.admit_fraction(), 1.0);
    }

    #[test]
    fn goodput_still_rising_defers_tightening() {
        let mut gate = BackpressureGate::new(quick());
        for _ in 0..10 {
            gate.observe(100, true);
        }
        assert_eq!(
            gate.admit_fraction(),
            1.0,
            "a deep queue with rising goodput is a burst being absorbed, not metastability"
        );
    }

    #[test]
    fn admit_fraction_floors_and_gate_is_deterministic() {
        let mut gate = BackpressureGate::new(quick());
        for _ in 0..100 {
            gate.observe(1_000, false);
        }
        assert_eq!(gate.admit_fraction(), 0.2, "floored at min_admit_fraction");
        let verdicts: Vec<bool> = (0..64).map(|i| gate.admits(7, RequestId(i))).collect();
        let mut replay = BackpressureGate::new(quick());
        for _ in 0..100 {
            replay.observe(1_000, false);
        }
        let again: Vec<bool> = (0..64).map(|i| replay.admits(7, RequestId(i))).collect();
        assert_eq!(verdicts, again, "verdicts are a pure function of seed+id");
        let admitted = verdicts.iter().filter(|v| **v).count();
        assert!(
            admitted > 0 && admitted < 40,
            "roughly the admit fraction passes"
        );
        assert_eq!(gate.sheds(), (64 - admitted) as u64);
    }

    #[test]
    fn checkpoint_round_trips() {
        let mut gate = BackpressureGate::new(quick());
        for _ in 0..9 {
            gate.observe(50, false);
        }
        gate.admits(3, RequestId(1));
        let ckpt = gate.checkpoint();
        let mut restored = BackpressureGate::new(quick());
        restored.restore(&ckpt);
        assert_eq!(restored.checkpoint(), ckpt, "round trip is lossless");
        assert_eq!(gate.observe(50, false), restored.observe(50, false));
    }
}
