//! The degradation ladder: staged load shedding under sustained pressure.
//!
//! Rather than a binary "overloaded" flag, the manager walks a ladder of
//! increasingly aggressive mitigations, one rung per sustained-pressure
//! window, and walks back down (in reverse order) once the system has been
//! calm long enough:
//!
//! | level | added mitigation |
//! |-------|------------------|
//! | 0     | none — normal service |
//! | 1     | shed incoming best-effort (`Low` importance) arrivals |
//! | 2     | also throttle running `Medium`-and-below queries |
//! | 3     | also suspend `Medium`-and-below queries to disk |
//!
//! With [`LadderConfig::brownout_medium_at`] set, the rung it names gains
//! a **brownout** mitigation: incoming `Medium`-and-below arrivals are
//! shed at the door too, so under deep overload only the most important
//! class is still admitted. Workload classes are always shed in
//! importance order — `Low` first (level 1), `Medium` only at the
//! brownout rung. The default (`None`) keeps the classic ladder.
//!
//! "Pressure" is judged by the exec-control stage from breaker state,
//! recent failure rate, and queue depth; the ladder itself only debounces
//! that boolean so a single bad cycle never sheds work.

use serde::{Deserialize, Serialize};

/// Degradation-ladder tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Recent failure fraction at which a cycle counts as pressured.
    pub failure_rate_trigger: f64,
    /// Queue depth at which a cycle counts as pressured.
    pub queue_depth_trigger: usize,
    /// Consecutive pressured cycles before stepping up one rung.
    pub sustain_cycles: u32,
    /// Consecutive calm cycles before stepping down one rung.
    pub calm_cycles: u32,
    /// Throttle applied to `Medium`-and-below queries at level >= 2.
    pub throttle_fraction: f64,
    /// Brownout rung: at this level and above, `Medium`-and-below
    /// arrivals are shed at the door as well (`None` = brownout off, the
    /// classic ladder).
    pub brownout_medium_at: Option<u8>,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            failure_rate_trigger: 0.5,
            queue_depth_trigger: 64,
            sustain_cycles: 25,
            calm_cycles: 150,
            throttle_fraction: 0.5,
            brownout_medium_at: None,
        }
    }
}

impl LadderConfig {
    /// Enable the brownout rung at `level` (clamped to the ladder's
    /// range): `Medium`-and-below arrivals are shed once the ladder
    /// reaches it.
    pub fn with_brownout(mut self, level: u8) -> Self {
        self.brownout_medium_at = Some(level.clamp(1, MAX_LEVEL));
        self
    }
}

/// The ladder's debounced position, stepped once per control cycle.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    cfg: LadderConfig,
    level: u8,
    pressured_for: u32,
    calm_for: u32,
    steps: u64,
}

/// The highest rung (shed + throttle + suspend).
pub const MAX_LEVEL: u8 = 3;

impl DegradationLadder {
    /// A ladder at level 0.
    pub fn new(cfg: LadderConfig) -> Self {
        DegradationLadder {
            cfg,
            level: 0,
            pressured_for: 0,
            calm_for: 0,
            steps: 0,
        }
    }

    /// The configuration this ladder was built with.
    pub fn config(&self) -> &LadderConfig {
        &self.cfg
    }

    /// Feed one control cycle's pressure verdict; returns `(from, to)`
    /// when the ladder moves a rung.
    pub fn observe(&mut self, pressured: bool) -> Option<(u8, u8)> {
        if pressured {
            self.calm_for = 0;
            self.pressured_for += 1;
            if self.pressured_for >= self.cfg.sustain_cycles.max(1) && self.level < MAX_LEVEL {
                self.pressured_for = 0;
                self.level += 1;
                self.steps += 1;
                return Some((self.level - 1, self.level));
            }
        } else {
            self.pressured_for = 0;
            self.calm_for += 1;
            if self.calm_for >= self.cfg.calm_cycles.max(1) && self.level > 0 {
                self.calm_for = 0;
                self.level -= 1;
                self.steps += 1;
                return Some((self.level + 1, self.level));
            }
        }
        None
    }

    /// Current rung, 0 (normal) through [`MAX_LEVEL`].
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Total rung moves (up or down) over the run.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Serializable snapshot of the ladder's position and debounce clocks
    /// (the configuration is not included: the restarted controller
    /// re-installs it).
    pub fn checkpoint(&self) -> LadderCheckpoint {
        LadderCheckpoint {
            level: self.level,
            pressured_for: self.pressured_for,
            calm_for: self.calm_for,
            steps: self.steps,
        }
    }

    /// Replace the ladder's position and debounce clocks with a
    /// checkpointed one, keeping the current configuration.
    pub fn restore(&mut self, ckpt: &LadderCheckpoint) {
        self.level = ckpt.level.min(MAX_LEVEL);
        self.pressured_for = ckpt.pressured_for;
        self.calm_for = ckpt.calm_for;
        self.steps = ckpt.steps;
    }
}

/// Serializable runtime state of a [`DegradationLadder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderCheckpoint {
    /// Current rung.
    pub level: u8,
    /// Consecutive pressured cycles so far.
    pub pressured_for: u32,
    /// Consecutive calm cycles so far.
    pub calm_for: u32,
    /// Total rung moves so far.
    pub steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LadderConfig {
        LadderConfig {
            sustain_cycles: 3,
            calm_cycles: 5,
            ..Default::default()
        }
    }

    #[test]
    fn steps_up_after_sustained_pressure_only() {
        let mut ladder = DegradationLadder::new(quick());
        // Blips shorter than sustain_cycles never move the ladder.
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(false), None);
        assert_eq!(ladder.level(), 0);
        // Three consecutive pressured cycles step up one rung.
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), Some((0, 1)));
        assert_eq!(ladder.level(), 1);
    }

    #[test]
    fn climbs_to_max_and_descends_in_reverse() {
        let mut ladder = DegradationLadder::new(quick());
        for _ in 0..40 {
            ladder.observe(true);
        }
        assert_eq!(ladder.level(), MAX_LEVEL, "ladder saturates at the top");
        let mut downs = Vec::new();
        for _ in 0..40 {
            if let Some(step) = ladder.observe(false) {
                downs.push(step);
            }
        }
        assert_eq!(downs, vec![(3, 2), (2, 1), (1, 0)]);
        assert_eq!(ladder.level(), 0);
        assert_eq!(ladder.steps(), 6, "three up plus three down");
    }

    /// Regression: rungs restore strictly in reverse order after the calm
    /// debounce — one rung per calm window, never skipping levels — and an
    /// in-progress restore interrupted by a new fault window resumes the
    /// climb from the rung it had reached, not from where it started.
    #[test]
    fn restores_rungs_in_reverse_even_when_interrupted() {
        let mut ladder = DegradationLadder::new(quick());
        let mut moves = Vec::new();
        let mut feed = |ladder: &mut DegradationLadder, pressured: bool, cycles: u32| {
            for _ in 0..cycles {
                if let Some(step) = ladder.observe(pressured) {
                    moves.push(step);
                }
            }
        };
        // Climb to the top...
        feed(&mut ladder, true, 9);
        assert_eq!(ladder.level(), MAX_LEVEL);
        // ...restore two rungs (each only after a full calm window)...
        feed(&mut ladder, false, 10);
        assert_eq!(ladder.level(), 1, "two calm windows, two rungs back");
        // ...a partial calm window, then a new fault window interrupts.
        feed(&mut ladder, false, 3);
        feed(&mut ladder, true, 6);
        assert_eq!(
            ladder.level(),
            3,
            "the interrupted restore resumes climbing from rung 1"
        );
        // Calm returns for good: the walk down revisits every rung.
        feed(&mut ladder, false, 15);
        assert_eq!(ladder.level(), 0);
        assert_eq!(
            moves,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 2),
                (2, 1),
                (1, 2),
                (2, 3),
                (3, 2),
                (2, 1),
                (1, 0),
            ],
            "descents are strictly reverse-ordered and never skip a rung"
        );
        assert!(
            moves.iter().all(|(from, to)| from.abs_diff(*to) == 1),
            "every move is exactly one rung"
        );
    }

    #[test]
    fn checkpoint_round_trips_debounce_clocks() {
        let mut ladder = DegradationLadder::new(quick());
        for _ in 0..4 {
            ladder.observe(true);
        }
        assert_eq!(ladder.level(), 1);
        assert_eq!(ladder.checkpoint().pressured_for, 1, "partial window");
        let ckpt = ladder.checkpoint();
        let mut restored = DegradationLadder::new(quick());
        restored.restore(&ckpt);
        assert_eq!(restored.checkpoint(), ckpt, "round trip is lossless");
        // Both ladders step up on the same future cycle.
        for _ in 0..2 {
            assert_eq!(ladder.observe(true), restored.observe(true));
        }
        assert_eq!(ladder.level(), restored.level());
        assert_eq!(ladder.level(), 2);
    }
}
