//! The degradation ladder: staged load shedding under sustained pressure.
//!
//! Rather than a binary "overloaded" flag, the manager walks a ladder of
//! increasingly aggressive mitigations, one rung per sustained-pressure
//! window, and walks back down (in reverse order) once the system has been
//! calm long enough:
//!
//! | level | added mitigation |
//! |-------|------------------|
//! | 0     | none — normal service |
//! | 1     | shed incoming best-effort (`Low` importance) arrivals |
//! | 2     | also throttle running `Medium`-and-below queries |
//! | 3     | also suspend `Medium`-and-below queries to disk |
//!
//! "Pressure" is judged by the exec-control stage from breaker state,
//! recent failure rate, and queue depth; the ladder itself only debounces
//! that boolean so a single bad cycle never sheds work.

/// Degradation-ladder tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Recent failure fraction at which a cycle counts as pressured.
    pub failure_rate_trigger: f64,
    /// Queue depth at which a cycle counts as pressured.
    pub queue_depth_trigger: usize,
    /// Consecutive pressured cycles before stepping up one rung.
    pub sustain_cycles: u32,
    /// Consecutive calm cycles before stepping down one rung.
    pub calm_cycles: u32,
    /// Throttle applied to `Medium`-and-below queries at level >= 2.
    pub throttle_fraction: f64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            failure_rate_trigger: 0.5,
            queue_depth_trigger: 64,
            sustain_cycles: 25,
            calm_cycles: 150,
            throttle_fraction: 0.5,
        }
    }
}

/// The ladder's debounced position, stepped once per control cycle.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    cfg: LadderConfig,
    level: u8,
    pressured_for: u32,
    calm_for: u32,
    steps: u64,
}

/// The highest rung (shed + throttle + suspend).
pub const MAX_LEVEL: u8 = 3;

impl DegradationLadder {
    /// A ladder at level 0.
    pub fn new(cfg: LadderConfig) -> Self {
        DegradationLadder {
            cfg,
            level: 0,
            pressured_for: 0,
            calm_for: 0,
            steps: 0,
        }
    }

    /// The configuration this ladder was built with.
    pub fn config(&self) -> &LadderConfig {
        &self.cfg
    }

    /// Feed one control cycle's pressure verdict; returns `(from, to)`
    /// when the ladder moves a rung.
    pub fn observe(&mut self, pressured: bool) -> Option<(u8, u8)> {
        if pressured {
            self.calm_for = 0;
            self.pressured_for += 1;
            if self.pressured_for >= self.cfg.sustain_cycles.max(1) && self.level < MAX_LEVEL {
                self.pressured_for = 0;
                self.level += 1;
                self.steps += 1;
                return Some((self.level - 1, self.level));
            }
        } else {
            self.pressured_for = 0;
            self.calm_for += 1;
            if self.calm_for >= self.cfg.calm_cycles.max(1) && self.level > 0 {
                self.calm_for = 0;
                self.level -= 1;
                self.steps += 1;
                return Some((self.level + 1, self.level));
            }
        }
        None
    }

    /// Current rung, 0 (normal) through [`MAX_LEVEL`].
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Total rung moves (up or down) over the run.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LadderConfig {
        LadderConfig {
            sustain_cycles: 3,
            calm_cycles: 5,
            ..Default::default()
        }
    }

    #[test]
    fn steps_up_after_sustained_pressure_only() {
        let mut ladder = DegradationLadder::new(quick());
        // Blips shorter than sustain_cycles never move the ladder.
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(false), None);
        assert_eq!(ladder.level(), 0);
        // Three consecutive pressured cycles step up one rung.
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), None);
        assert_eq!(ladder.observe(true), Some((0, 1)));
        assert_eq!(ladder.level(), 1);
    }

    #[test]
    fn climbs_to_max_and_descends_in_reverse() {
        let mut ladder = DegradationLadder::new(quick());
        for _ in 0..40 {
            ladder.observe(true);
        }
        assert_eq!(ladder.level(), MAX_LEVEL, "ladder saturates at the top");
        let mut downs = Vec::new();
        for _ in 0..40 {
            if let Some(step) = ladder.observe(false) {
                downs.push(step);
            }
        }
        assert_eq!(downs, vec![(3, 2), (2, 1), (1, 0)]);
        assert_eq!(ladder.level(), 0);
        assert_eq!(ladder.steps(), 6, "three up plus three down");
    }
}
