//! The manager's resilience layer: what keeps SLOs alive while the
//! infrastructure underneath is failing.
//!
//! Five cooperating mechanisms, each independently switchable (so the
//! ablation experiments can compare stacks):
//!
//! * **Retry budgets** ([`retry::RetryPolicy`]) — killed or timed-out
//!   queries are re-queued after an exponential backoff with deterministic
//!   jitter, up to a per-workload attempt budget.
//! * **Circuit breakers** ([`breaker::CircuitBreaker`]) — a per-workload
//!   closed → open → half-open state machine driven by the failure and
//!   timeout rates observed on the event bus; an open breaker holds the
//!   workload's dispatches so a struggling backend is not hammered.
//! * **Degradation ladder** ([`ladder::DegradationLadder`]) — under
//!   sustained pressure the exec-control stage walks a ladder of
//!   increasingly drastic measures: shed best-effort arrivals, throttle
//!   medium-importance queries, suspend them outright (and, with the
//!   brownout rung enabled, shed `Medium`-and-below arrivals too) — and
//!   walks back down in reverse as calm returns.
//! * **Admission backpressure** ([`backpressure::BackpressureGate`]) —
//!   a CoDel-style adaptive door that sheds a growing fraction of fresh
//!   arrivals while the standing queue sits above target and goodput has
//!   stopped rising, before the queue goes metastable.
//! * **Retry-storm suppression** ([`RetryBudgetConfig`]) — a token
//!   bucket that caps the rate matured retries re-enter the queue as a
//!   fraction of fresh admissions, so a post-surge retry backlog drains
//!   gradually instead of crowding out new work and re-collapsing
//!   goodput.
//!
//! The layer lives inside the
//! [`WorkloadManager`](crate::manager::WorkloadManager) (enable with
//! [`WorkloadManager::set_resilience`](crate::manager::WorkloadManager::set_resilience))
//! and publishes every decision as [`WlmEvent`](crate::events::WlmEvent)
//! variants: `RetryScheduled`, `RetryExhausted`, `BreakerTransition`,
//! `LadderStep`.

pub mod backpressure;
pub mod breaker;
pub mod ladder;
pub mod quarantine;
pub mod retry;

pub use backpressure::{BackpressureCheckpoint, BackpressureConfig, BackpressureGate};
pub use breaker::{
    BreakerBank, BreakerBankCheckpoint, BreakerConfig, BreakerState, CircuitBreaker,
};
pub use ladder::{DegradationLadder, LadderCheckpoint, LadderConfig};
pub use quarantine::{QuarantineConfig, QuarantineList};
pub use retry::RetryPolicy;

use crate::api::ManagedRequest;
use crate::events::{EventSubscriber, WlmEvent};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use wlm_dbsim::engine::QueryId;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::RequestId;

/// Configuration for the resilience layer. Each mechanism is `Option`al;
/// `None` disables it, so the same scenario can run with any subset of the
/// stack (the E16 ablation).
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
    /// Default retry policy for every workload (`None` = retries off).
    pub retry: Option<RetryPolicy>,
    /// Per-workload retry policies overriding the default.
    pub retry_overrides: BTreeMap<String, RetryPolicy>,
    /// Per-workload query timeout, seconds of engine residence. Queries
    /// over their timeout are killed by the resilience layer (and then
    /// retried, if a budget allows).
    pub timeouts: BTreeMap<String, f64>,
    /// Timeout for workloads absent from `timeouts` (`None` = no timeout).
    pub default_timeout_secs: Option<f64>,
    /// Circuit-breaker configuration (`None` = breakers off).
    pub breaker: Option<BreakerConfig>,
    /// Degradation-ladder configuration (`None` = ladder off).
    pub ladder: Option<LadderConfig>,
    /// Runaway-query quarantine configuration (`None` = watchdog off).
    pub quarantine: Option<QuarantineConfig>,
    /// Adaptive admission backpressure (`None` = gate off).
    pub backpressure: Option<BackpressureConfig>,
    /// Retry-storm suppression (`None` = matured retries always release).
    pub retry_budget: Option<RetryBudgetConfig>,
}

/// Retry-storm suppression tuning: a token bucket replenished by fresh
/// admissions and drained by retry releases, capping the cluster-wide
/// retry rate at a fraction of the fresh-admission rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Tokens added per fresh admission — the steady-state ceiling on
    /// retries per fresh request.
    pub max_retry_fraction: f64,
    /// Token-bucket burst capacity (how many retries may release back to
    /// back after a quiet stretch).
    pub burst: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            max_retry_fraction: 0.5,
            burst: 8.0,
        }
    }
}

impl ResilienceConfig {
    /// An empty configuration (everything off) with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        ResilienceConfig {
            seed,
            ..Default::default()
        }
    }

    /// Enable retries with the given default policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the retry policy for one workload.
    pub fn with_retry_override(mut self, workload: impl Into<String>, policy: RetryPolicy) -> Self {
        self.retry_overrides.insert(workload.into(), policy);
        self
    }

    /// Set a query timeout for one workload.
    pub fn with_timeout(mut self, workload: impl Into<String>, secs: f64) -> Self {
        self.timeouts.insert(workload.into(), secs);
        self
    }

    /// Enable per-workload circuit breakers.
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(cfg);
        self
    }

    /// Enable the degradation ladder.
    pub fn with_ladder(mut self, cfg: LadderConfig) -> Self {
        self.ladder = Some(cfg);
        self
    }

    /// Enable the runaway-query watchdog and poison quarantine.
    pub fn with_quarantine(mut self, cfg: QuarantineConfig) -> Self {
        self.quarantine = Some(cfg);
        self
    }

    /// Enable the adaptive admission backpressure gate.
    pub fn with_backpressure(mut self, cfg: BackpressureConfig) -> Self {
        self.backpressure = Some(cfg);
        self
    }

    /// Enable retry-storm suppression with the given budget.
    pub fn with_retry_budget(mut self, cfg: RetryBudgetConfig) -> Self {
        self.retry_budget = Some(cfg);
        self
    }
}

/// A retry waiting out its backoff before re-entering the wait queue.
#[derive(Debug, Clone)]
struct PendingRetry {
    due: SimTime,
    req: ManagedRequest,
    attempt: u32,
}

/// Snapshot of the resilience layer's state for reports and experiments.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceReport {
    /// Retries scheduled over the run.
    pub retries_scheduled: u64,
    /// Requests dropped after exhausting their budget.
    pub retries_exhausted: u64,
    /// Retries still waiting out their backoff.
    pub pending_retries: usize,
    /// Current degradation-ladder level (0 = normal service).
    pub ladder_level: u8,
    /// Total ladder transitions (up and down).
    pub ladder_steps: u64,
    /// Current breaker state per workload that has seen traffic.
    pub breaker_states: BTreeMap<String, &'static str>,
    /// Total breaker state transitions.
    pub breaker_transitions: u64,
    /// Requests currently in the poison quarantine.
    pub quarantined: usize,
    /// Admissions rejected because the request was quarantined.
    pub quarantine_rejections: u64,
    /// Retry-release slots denied by the suppression bucket (cumulative
    /// over hold cycles).
    pub retries_suppressed: u64,
    /// The backpressure gate's current admit fraction (1.0 = open or off).
    pub backpressure_fraction: f64,
    /// Fresh arrivals shed by the backpressure gate.
    pub backpressure_sheds: u64,
}

/// The live resilience state owned by the manager. Constructed from a
/// [`ResilienceConfig`]; driven by the manager's pipeline stages.
pub struct ResilienceLayer {
    seed: u64,
    retry: Option<RetryPolicy>,
    retry_overrides: BTreeMap<String, RetryPolicy>,
    timeouts: BTreeMap<String, f64>,
    default_timeout_secs: Option<f64>,
    /// Shared with the bus-subscribed [`BreakerFeed`].
    pub(crate) breakers: Rc<RefCell<BreakerBank>>,
    ladder: Option<DegradationLadder>,
    retry_queue: Vec<PendingRetry>,
    /// Queries the ladder throttled (to restore on step-down).
    pub(crate) throttled: BTreeSet<QueryId>,
    retries_scheduled: u64,
    retries_exhausted: u64,
    quarantine_cfg: Option<QuarantineConfig>,
    quarantine: QuarantineList,
    backpressure: Option<BackpressureGate>,
    retry_budget: Option<RetryBudgetConfig>,
    /// Token bucket for retry-storm suppression: fresh admissions add
    /// `max_retry_fraction`, each retry release consumes 1.0.
    retry_tokens: f64,
    /// Retry-release slots denied by the suppression bucket (cumulative
    /// over hold cycles — one matured retry held for N cycles counts N).
    retries_suppressed: u64,
}

impl ResilienceLayer {
    /// Build the layer from a configuration.
    pub fn new(cfg: ResilienceConfig) -> Self {
        ResilienceLayer {
            seed: cfg.seed,
            retry: cfg.retry,
            retry_overrides: cfg.retry_overrides,
            timeouts: cfg.timeouts.clone(),
            default_timeout_secs: cfg.default_timeout_secs,
            breakers: Rc::new(RefCell::new(BreakerBank::new(cfg.breaker))),
            ladder: cfg.ladder.map(DegradationLadder::new),
            retry_queue: Vec::new(),
            throttled: BTreeSet::new(),
            retries_scheduled: 0,
            retries_exhausted: 0,
            quarantine_cfg: cfg.quarantine,
            quarantine: QuarantineList::default(),
            backpressure: cfg.backpressure.map(BackpressureGate::new),
            retry_budget: cfg.retry_budget,
            // Start at burst so early kills (before any fresh admissions
            // replenish the bucket) can still retry.
            retry_tokens: cfg.retry_budget.map_or(0.0, |b| b.burst.max(0.0)),
            retries_suppressed: 0,
        }
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The retry policy applying to `workload`, if retries are enabled.
    pub fn retry_policy(&self, workload: &str) -> Option<&RetryPolicy> {
        self.retry_overrides.get(workload).or(self.retry.as_ref())
    }

    /// The query timeout for `workload`, if any.
    pub fn timeout_for(&self, workload: &str) -> Option<f64> {
        self.timeouts
            .get(workload)
            .copied()
            .or(self.default_timeout_secs)
    }

    /// Whether circuit breakers are enabled.
    pub fn breaker_enabled(&self) -> bool {
        self.breakers.borrow().enabled()
    }

    /// The bus subscriber that feeds query outcomes into this layer's
    /// breaker bank (subscribed by the manager when breakers are enabled).
    pub(crate) fn breaker_feed(&self) -> BreakerFeed {
        BreakerFeed::new(
            Rc::clone(&self.breakers),
            self.timeouts.clone(),
            self.default_timeout_secs,
        )
    }

    /// The ladder configuration, if the ladder is enabled.
    pub(crate) fn ladder_config(&self) -> Option<LadderConfig> {
        self.ladder.as_ref().map(|l| *l.config())
    }

    /// Observe one cycle of pressure for the ladder, returning the
    /// transition `(from, to)` if the level changed.
    pub(crate) fn ladder_observe(&mut self, pressured: bool) -> Option<(u8, u8)> {
        self.ladder.as_mut().and_then(|l| l.observe(pressured))
    }

    /// Current ladder level (0 when the ladder is disabled).
    pub fn ladder_level(&self) -> u8 {
        self.ladder.as_ref().map_or(0, |l| l.level())
    }

    /// The ladder's brownout rung, when one is configured.
    pub(crate) fn brownout_level(&self) -> Option<u8> {
        self.ladder
            .as_ref()
            .and_then(|l| l.config().brownout_medium_at)
    }

    /// Park a request until `due`, when it re-enters the wait queue as
    /// attempt number `attempt`.
    pub(crate) fn push_retry(&mut self, due: SimTime, req: ManagedRequest, attempt: u32) {
        self.retries_scheduled += 1;
        self.retry_queue.push(PendingRetry { due, req, attempt });
    }

    /// Count one budget exhaustion.
    pub(crate) fn note_exhausted(&mut self) {
        self.retries_exhausted += 1;
    }

    /// Remove and return the retries due at or before `now`, in the order
    /// they were scheduled. With a retry budget configured, releases stop
    /// once the token bucket runs dry — the remaining matured retries stay
    /// parked (still due, so they compete again next cycle) and are
    /// counted in `held`, the second element of the return.
    pub(crate) fn take_due(&mut self, now: SimTime) -> (Vec<(ManagedRequest, u32)>, usize) {
        let mut due = Vec::new();
        let mut held = 0usize;
        let mut rest = Vec::with_capacity(self.retry_queue.len());
        for pr in self.retry_queue.drain(..) {
            if pr.due > now {
                rest.push(pr);
                continue;
            }
            if self.retry_budget.is_some() && self.retry_tokens < 1.0 {
                held += 1;
                rest.push(pr);
                continue;
            }
            if self.retry_budget.is_some() {
                self.retry_tokens -= 1.0;
            }
            due.push((pr.req, pr.attempt));
        }
        self.retry_queue = rest;
        self.retries_suppressed += held as u64;
        (due, held)
    }

    /// Credit the suppression bucket for one fresh admission.
    pub(crate) fn note_fresh_admission(&mut self) {
        if let Some(budget) = self.retry_budget {
            self.retry_tokens =
                (self.retry_tokens + budget.max_retry_fraction.max(0.0)).min(budget.burst.max(0.0));
        }
    }

    /// Feed the backpressure gate one cycle's queue depth and goodput
    /// gradient; returns the `(from, to)` admit fractions when the door
    /// setting changed.
    pub(crate) fn backpressure_observe(
        &mut self,
        queued: usize,
        goodput_rising: bool,
    ) -> Option<(f64, f64)> {
        self.backpressure
            .as_mut()
            .and_then(|g| g.observe(queued, goodput_rising))
    }

    /// Whether the backpressure gate admits this fresh arrival (always
    /// true with the gate off). The seed makes the verdict deterministic.
    pub(crate) fn backpressure_admits(&mut self, id: RequestId) -> bool {
        let seed = self.seed;
        self.backpressure
            .as_mut()
            .is_none_or(|g| g.admits(seed, id))
    }

    /// The gate's current admit fraction (1.0 when the gate is off).
    pub fn backpressure_fraction(&self) -> f64 {
        self.backpressure
            .as_ref()
            .map_or(1.0, |g| g.admit_fraction())
    }

    /// The gate's smoothed queue signal (0.0 when the gate is off).
    pub(crate) fn backpressure_queue_ema(&self) -> f64 {
        self.backpressure.as_ref().map_or(0.0, |g| g.queue_ema())
    }

    /// Whether the runaway-query watchdog is enabled, and if so its kill
    /// threshold.
    pub(crate) fn quarantine_threshold(&self) -> Option<u32> {
        self.quarantine_cfg.map(|c| c.kill_threshold)
    }

    /// Record one kill strike. Returns the strike count if this kill
    /// newly quarantined the request; `None` when the watchdog is off or
    /// the request stays below the threshold.
    pub(crate) fn note_kill_strike(&mut self, id: RequestId, workload: &str) -> Option<u32> {
        let threshold = self.quarantine_threshold()?;
        self.quarantine.note_kill(id, workload, threshold)
    }

    /// Whether `id` is in the poison quarantine.
    pub fn is_quarantined(&self, id: RequestId) -> bool {
        self.quarantine.is_quarantined(id)
    }

    /// Count one admission turned away because the request was
    /// quarantined.
    pub(crate) fn note_quarantine_rejection(&mut self) {
        self.quarantine.note_rejection();
    }

    /// Serializable snapshot of every piece of layer state that must
    /// survive a controller crash. Configuration (policies, timeouts,
    /// breaker/ladder tuning) is *not* captured: the restarted controller
    /// is constructed with the same [`ResilienceConfig`] and the
    /// checkpoint only re-fills its runtime state.
    pub fn checkpoint(&self) -> ResilienceCheckpoint {
        ResilienceCheckpoint {
            retry_queue: self
                .retry_queue
                .iter()
                .map(|pr| RetryCheckpoint {
                    due: pr.due,
                    req: pr.req.clone(),
                    attempt: pr.attempt,
                })
                .collect(),
            throttled: self.throttled.iter().copied().collect(),
            retries_scheduled: self.retries_scheduled,
            retries_exhausted: self.retries_exhausted,
            breakers: self.breakers.borrow().checkpoint(),
            ladder: self.ladder.as_ref().map(|l| l.checkpoint()),
            quarantine: self.quarantine.clone(),
            backpressure: self.backpressure.as_ref().map(|g| g.checkpoint()),
            retry_tokens: self.retry_tokens,
            retries_suppressed: self.retries_suppressed,
        }
    }

    /// Re-fill the layer's runtime state from a checkpoint, keeping the
    /// configuration it was constructed with. The breaker bank is
    /// restored in place so the bus-subscribed [`BreakerFeed`] keeps
    /// feeding the same bank.
    pub fn restore(&mut self, ckpt: &ResilienceCheckpoint) {
        self.retry_queue = ckpt
            .retry_queue
            .iter()
            .map(|rc| PendingRetry {
                due: rc.due,
                req: rc.req.clone(),
                attempt: rc.attempt,
            })
            .collect();
        self.throttled = ckpt.throttled.iter().copied().collect();
        self.retries_scheduled = ckpt.retries_scheduled;
        self.retries_exhausted = ckpt.retries_exhausted;
        self.breakers.borrow_mut().restore(&ckpt.breakers);
        if let Some(ladder) = self.ladder.as_mut() {
            match ckpt.ladder.as_ref() {
                Some(l_ckpt) => ladder.restore(l_ckpt),
                // A checkpoint with no ladder state (a cold restart from
                // the empty ControllerState) resets the ladder to level 0
                // with fresh debounce clocks.
                None => *ladder = DegradationLadder::new(*ladder.config()),
            }
        }
        self.quarantine = ckpt.quarantine.clone();
        if let Some(gate) = self.backpressure.as_mut() {
            match ckpt.backpressure.as_ref() {
                Some(g_ckpt) => gate.restore(g_ckpt),
                // A checkpoint with no gate state (cold restart) reopens
                // the door with fresh signal clocks.
                None => *gate = BackpressureGate::new(*gate.config()),
            }
        }
        self.retry_tokens = ckpt.retry_tokens;
        self.retries_suppressed = ckpt.retries_suppressed;
    }

    /// Snapshot for reports.
    pub fn report(&self) -> ResilienceReport {
        let bank = self.breakers.borrow();
        ResilienceReport {
            retries_scheduled: self.retries_scheduled,
            retries_exhausted: self.retries_exhausted,
            pending_retries: self.retry_queue.len(),
            ladder_level: self.ladder_level(),
            ladder_steps: self.ladder.as_ref().map_or(0, |l| l.steps()),
            breaker_states: bank.states(),
            breaker_transitions: bank.transitions(),
            quarantined: self.quarantine.len(),
            quarantine_rejections: self.quarantine.rejections(),
            retries_suppressed: self.retries_suppressed,
            backpressure_fraction: self.backpressure_fraction(),
            backpressure_sheds: self.backpressure.as_ref().map_or(0, |g| g.sheds()),
        }
    }
}

/// One parked retry as captured in a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryCheckpoint {
    /// When the retry re-enters the wait queue.
    pub due: SimTime,
    /// The request being retried.
    pub req: ManagedRequest,
    /// Attempt number it will re-enter as.
    pub attempt: u32,
}

/// Serializable runtime state of a [`ResilienceLayer`] — the part of the
/// [`ControllerState`](crate::manager::ControllerState) checkpoint that
/// belongs to the resilience stack.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCheckpoint {
    /// Retries waiting out their backoff ("aging clocks": each carries its
    /// absolute due time, so backoff age survives the crash).
    pub retry_queue: Vec<RetryCheckpoint>,
    /// Queries throttled by the ladder (restored so a later step-down can
    /// un-throttle them).
    pub throttled: Vec<QueryId>,
    /// Retries scheduled over the run so far.
    pub retries_scheduled: u64,
    /// Requests dropped after exhausting their budget so far.
    pub retries_exhausted: u64,
    /// Per-workload breaker state machines, mid-episode.
    pub breakers: BreakerBankCheckpoint,
    /// Ladder rung and debounce clocks, when the ladder is enabled.
    pub ladder: Option<LadderCheckpoint>,
    /// The poison quarantine — deliberately durable across crashes.
    pub quarantine: QuarantineList,
    /// The admission backpressure gate, when enabled.
    #[serde(default)]
    pub backpressure: Option<BackpressureCheckpoint>,
    /// Retry-suppression token bucket level.
    #[serde(default)]
    pub retry_tokens: f64,
    /// Retry-release slots denied by the suppression bucket so far.
    #[serde(default)]
    pub retries_suppressed: u64,
}

impl std::fmt::Debug for ResilienceLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilienceLayer")
            .field("retries_scheduled", &self.retries_scheduled)
            .field("retries_exhausted", &self.retries_exhausted)
            .field("pending_retries", &self.retry_queue.len())
            .field("ladder_level", &self.ladder_level())
            .finish_non_exhaustive()
    }
}

/// The bus subscriber feeding query outcomes into the breaker bank: every
/// `Killed` counts as a failure; a `Completed` counts as a failure when the
/// response exceeded the workload's timeout (a timeout the layer did not
/// get to enforce) and as a success otherwise.
///
/// Transitions triggered inside the bank during delivery are queued there
/// and drained (and published) by the exec-control stage — a subscriber
/// must not emit back into the bus it is subscribed to.
pub(crate) struct BreakerFeed {
    bank: Rc<RefCell<BreakerBank>>,
    timeouts: BTreeMap<String, f64>,
    default_timeout_secs: Option<f64>,
}

impl BreakerFeed {
    pub(crate) fn new(
        bank: Rc<RefCell<BreakerBank>>,
        timeouts: BTreeMap<String, f64>,
        default_timeout_secs: Option<f64>,
    ) -> Self {
        BreakerFeed {
            bank,
            timeouts,
            default_timeout_secs,
        }
    }

    fn timeout_for(&self, workload: &str) -> Option<f64> {
        self.timeouts
            .get(workload)
            .copied()
            .or(self.default_timeout_secs)
    }
}

impl EventSubscriber for BreakerFeed {
    fn on_event(&mut self, event: &WlmEvent) {
        match event {
            WlmEvent::Killed { at, workload, .. } => {
                self.bank.borrow_mut().record(workload, false, *at);
            }
            WlmEvent::Completed {
                at,
                workload,
                response_secs,
                ..
            } => {
                let success = self
                    .timeout_for(workload)
                    .is_none_or(|t| *response_secs <= t);
                self.bank.borrow_mut().record(workload, success, *at);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_workload::request::Importance;

    #[test]
    fn config_builder_composes() {
        let cfg = ResilienceConfig::new(7)
            .with_retry(RetryPolicy::default())
            .with_retry_override("oltp", RetryPolicy::aggressive())
            .with_timeout("oltp", 3.0)
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default());
        let layer = ResilienceLayer::new(cfg);
        assert_eq!(layer.seed(), 7);
        assert!(layer.breaker_enabled());
        assert_eq!(layer.timeout_for("oltp"), Some(3.0));
        assert_eq!(layer.timeout_for("bi"), None);
        assert!(
            layer.retry_policy("oltp").unwrap().max_attempts >= RetryPolicy::default().max_attempts,
            "override applies"
        );
        assert_eq!(layer.ladder_level(), 0);
    }

    #[test]
    fn retry_queue_releases_in_schedule_order() {
        let mut layer = ResilienceLayer::new(ResilienceConfig::new(1));
        let req = crate::testutil::managed("w", 1, Importance::Medium);
        layer.push_retry(SimTime(100), req.clone(), 1);
        layer.push_retry(SimTime(50), req.clone(), 1);
        layer.push_retry(SimTime(500), req, 2);
        assert_eq!(layer.take_due(SimTime(0)).0.len(), 0);
        let (due, held) = layer.take_due(SimTime(100));
        assert_eq!(due.len(), 2, "both matured retries release");
        assert_eq!(held, 0, "no suppression without a retry budget");
        assert_eq!(layer.report().pending_retries, 1);
        assert_eq!(layer.report().retries_scheduled, 3);
    }

    #[test]
    fn retry_budget_caps_releases_as_a_fraction_of_fresh_admissions() {
        let mut layer = ResilienceLayer::new(ResilienceConfig::new(1).with_retry_budget(
            RetryBudgetConfig {
                max_retry_fraction: 0.5,
                burst: 2.0,
            },
        ));
        let req = crate::testutil::managed("w", 1, Importance::Medium);
        for _ in 0..6 {
            layer.push_retry(SimTime(10), req.clone(), 1);
        }
        // The bucket starts at burst: exactly two release, four are held.
        let (due, held) = layer.take_due(SimTime(10));
        assert_eq!(due.len(), 2);
        assert_eq!(held, 4);
        // Dry bucket: nothing releases until fresh admissions replenish.
        let (due, held) = layer.take_due(SimTime(10));
        assert_eq!(due.len(), 0);
        assert_eq!(held, 4);
        // Two fresh admissions buy one retry slot (fraction 0.5).
        layer.note_fresh_admission();
        layer.note_fresh_admission();
        let (due, held) = layer.take_due(SimTime(10));
        assert_eq!(due.len(), 1);
        assert_eq!(held, 3);
        assert_eq!(
            layer.report().retries_suppressed,
            11,
            "4 + 4 + 3 hold slots"
        );
        // The held retries are still parked, not dropped.
        assert_eq!(layer.report().pending_retries, 3);
    }

    #[test]
    fn layer_checkpoint_round_trips_runtime_state() {
        let cfg = ResilienceConfig::new(11)
            .with_retry(RetryPolicy::default())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default())
            .with_quarantine(QuarantineConfig { kill_threshold: 2 })
            .with_backpressure(BackpressureConfig::default())
            .with_retry_budget(RetryBudgetConfig::default());
        let mut layer = ResilienceLayer::new(cfg.clone());
        layer.backpressure_observe(100, false);
        layer.note_fresh_admission();
        let req = crate::testutil::managed("w", 1, Importance::Medium);
        layer.push_retry(SimTime(400), req.clone(), 2);
        layer.note_exhausted();
        layer.throttled.insert(QueryId(9));
        layer
            .breakers
            .borrow_mut()
            .record("w", false, SimTime(1_000));
        layer.ladder_observe(true);
        assert_eq!(layer.note_kill_strike(RequestId(5), "w"), None);
        assert_eq!(layer.note_kill_strike(RequestId(5), "w"), Some(2));
        layer.note_quarantine_rejection();

        let ckpt = layer.checkpoint();
        let mut restored = ResilienceLayer::new(cfg);
        restored.restore(&ckpt);
        assert_eq!(restored.checkpoint(), ckpt, "round trip is lossless");
        assert!(restored.is_quarantined(RequestId(5)));
        assert_eq!(restored.report().quarantine_rejections, 1);
        assert_eq!(restored.take_due(SimTime(400)).0.len(), 1, "retry survived");
        // And the checkpoint itself survives serde.
        let bytes = serde_json::to_vec(&ckpt).expect("serializes");
        let back: ResilienceCheckpoint = serde_json::from_slice(&bytes).expect("deserializes");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn feed_classifies_timeouts_as_failures() {
        let bank = Rc::new(RefCell::new(BreakerBank::new(Some(BreakerConfig {
            min_outcomes: 1,
            window: 4,
            failure_threshold: 0.9,
            ..Default::default()
        }))));
        let mut timeouts = BTreeMap::new();
        timeouts.insert("oltp".to_string(), 1.0);
        let mut feed = BreakerFeed::new(Rc::clone(&bank), timeouts, None);
        // A completion over the timeout is a failure -> breaker opens.
        feed.on_event(&WlmEvent::Completed {
            at: SimTime(1),
            query: QueryId(1),
            request: wlm_workload::request::RequestId(1),
            workload: "oltp".to_string(),
            response_secs: 5.0,
        });
        assert_eq!(bank.borrow().state("oltp"), BreakerState::Open);
        // Without a timeout configured, any completion is a success.
        feed.on_event(&WlmEvent::Completed {
            at: SimTime(2),
            query: QueryId(2),
            request: wlm_workload::request::RequestId(2),
            workload: "bi".to_string(),
            response_secs: 500.0,
        });
        assert_eq!(bank.borrow().state("bi"), BreakerState::Closed);
    }
}
