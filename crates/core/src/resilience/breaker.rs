//! Per-workload circuit breakers: closed → open → half-open.
//!
//! The breaker watches a sliding window of query outcomes (fed from the
//! event bus by the resilience layer). When the failure fraction crosses a
//! threshold the breaker *opens* and the schedule stage stops dispatching
//! that workload — queued requests wait rather than hammer a failing
//! backend. After a cooldown the breaker goes *half-open* and lets a small
//! probe quota through; probe successes close it, a probe failure re-opens
//! it.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use wlm_dbsim::time::SimTime;

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service: all dispatches pass.
    Closed,
    /// Tripped: dispatches are held until the cooldown elapses.
    Open,
    /// Probing: a bounded number of dispatches pass to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// The state's name, as used in `BreakerTransition` events.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Inverse of [`BreakerState::name`], used when restoring a
    /// checkpointed bank. Unknown names map to `Closed` (fail safe: a
    /// wrongly-closed breaker re-trips from live traffic within one
    /// window, a wrongly-open one would hold a healthy workload).
    pub fn from_name(name: &str) -> BreakerState {
        match name {
            "open" => BreakerState::Open,
            "half_open" => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Outcomes kept in the sliding window.
    pub window: usize,
    /// Open when the window's failure fraction reaches this.
    pub failure_threshold: f64,
    /// Don't trip before this many outcomes are in the window.
    pub min_outcomes: usize,
    /// Seconds the breaker stays open before probing.
    pub cooldown_secs: f64,
    /// Dispatches allowed through while half-open.
    pub probe_quota: u32,
    /// Probe successes needed to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            failure_threshold: 0.6,
            min_outcomes: 6,
            cooldown_secs: 3.0,
            probe_quota: 2,
            probe_successes: 2,
        }
    }
}

/// One workload's breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    window: VecDeque<bool>,
    opened_at: SimTime,
    probes_in_flight: u32,
    probe_successes: u32,
}

impl CircuitBreaker {
    fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at: SimTime::ZERO,
            probes_in_flight: 0,
            probe_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn failure_fraction(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let failures = self.window.iter().filter(|ok| !**ok).count();
        failures as f64 / self.window.len() as f64
    }

    /// Record one outcome; returns the transition if the state changed.
    fn record(
        &mut self,
        success: bool,
        at: SimTime,
        cfg: &BreakerConfig,
    ) -> Option<(BreakerState, BreakerState)> {
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(success);
                while self.window.len() > cfg.window.max(1) {
                    self.window.pop_front();
                }
                if self.window.len() >= cfg.min_outcomes.max(1)
                    && self.failure_fraction() >= cfg.failure_threshold
                {
                    self.trip(at);
                    return Some((BreakerState::Closed, BreakerState::Open));
                }
                None
            }
            BreakerState::Open => None, // stragglers finishing; ignore
            BreakerState::HalfOpen => {
                // Only probe outcomes are judged here. A straggler
                // dispatched before the trip that finishes while we are
                // half-open with no probe in flight must be ignored: a
                // straggler failure would otherwise re-trip the breaker
                // and re-arm the full cooldown a second time, doubling
                // the recovery debounce for one stale outcome.
                if self.probes_in_flight == 0 {
                    return None;
                }
                self.probes_in_flight -= 1;
                if success {
                    self.probe_successes += 1;
                    if self.probe_successes >= cfg.probe_successes.max(1) {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        return Some((BreakerState::HalfOpen, BreakerState::Closed));
                    }
                    None
                } else {
                    self.trip(at);
                    Some((BreakerState::HalfOpen, BreakerState::Open))
                }
            }
        }
    }

    fn trip(&mut self, at: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = at;
        self.window.clear();
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }

    /// Cooldown check; returns the transition if the breaker went
    /// half-open.
    fn poll(&mut self, now: SimTime, cfg: &BreakerConfig) -> Option<(BreakerState, BreakerState)> {
        if self.state == BreakerState::Open
            && now.since(self.opened_at).as_secs_f64() >= cfg.cooldown_secs
        {
            self.state = BreakerState::HalfOpen;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
            return Some((BreakerState::Open, BreakerState::HalfOpen));
        }
        None
    }

    /// Whether a dispatch may pass right now (half-open consumes probes).
    fn allow(&mut self, cfg: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < cfg.probe_quota.max(1) {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// All workloads' breakers plus the transition queue the exec-control
/// stage drains for event publication. With no configuration (`None`) the
/// bank is inert: everything passes, nothing is recorded.
pub struct BreakerBank {
    cfg: Option<BreakerConfig>,
    map: BTreeMap<String, CircuitBreaker>,
    pending_transitions: Vec<(String, &'static str, &'static str)>,
    transitions: u64,
}

impl BreakerBank {
    /// A bank; `None` disables breaking entirely.
    pub fn new(cfg: Option<BreakerConfig>) -> Self {
        BreakerBank {
            cfg,
            map: BTreeMap::new(),
            pending_transitions: Vec::new(),
            transitions: 0,
        }
    }

    /// Whether breaking is enabled.
    pub fn enabled(&self) -> bool {
        self.cfg.is_some()
    }

    /// Record one query outcome for `workload`.
    pub fn record(&mut self, workload: &str, success: bool, at: SimTime) {
        let Some(cfg) = self.cfg else { return };
        let breaker = self
            .map
            .entry(workload.to_string())
            .or_insert_with(CircuitBreaker::new);
        if let Some((from, to)) = breaker.record(success, at, &cfg) {
            self.transitions += 1;
            self.pending_transitions
                .push((workload.to_string(), from.name(), to.name()));
        }
    }

    /// Advance cooldowns (open → half-open where due).
    pub fn poll(&mut self, now: SimTime) {
        let Some(cfg) = self.cfg else { return };
        for (workload, breaker) in &mut self.map {
            if let Some((from, to)) = breaker.poll(now, &cfg) {
                self.transitions += 1;
                self.pending_transitions
                    .push((workload.clone(), from.name(), to.name()));
            }
        }
    }

    /// Whether a dispatch of `workload` may pass (consumes a probe when
    /// half-open).
    pub fn allow(&mut self, workload: &str) -> bool {
        let Some(cfg) = self.cfg else { return true };
        match self.map.get_mut(workload) {
            Some(breaker) => breaker.allow(&cfg),
            None => true,
        }
    }

    /// Current state of `workload`'s breaker (closed if never tripped).
    pub fn state(&self, workload: &str) -> BreakerState {
        self.map
            .get(workload)
            .map_or(BreakerState::Closed, |b| b.state())
    }

    /// Whether any breaker is currently open or half-open (pressure signal
    /// for the degradation ladder).
    pub fn any_open(&self) -> bool {
        self.map.values().any(|b| b.state() != BreakerState::Closed)
    }

    /// Aggregate failure fraction over every closed breaker's window.
    pub fn recent_failure_rate(&self) -> f64 {
        let mut failures = 0usize;
        let mut total = 0usize;
        for b in self.map.values() {
            total += b.window.len();
            failures += b.window.iter().filter(|ok| !**ok).count();
        }
        if total == 0 {
            0.0
        } else {
            failures as f64 / total as f64
        }
    }

    /// Drain the transitions recorded since the last drain.
    pub fn take_transitions(&mut self) -> Vec<(String, &'static str, &'static str)> {
        std::mem::take(&mut self.pending_transitions)
    }

    /// Total transitions over the run.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Each tracked workload's current state name.
    pub fn states(&self) -> BTreeMap<String, &'static str> {
        self.map
            .iter()
            .map(|(w, b)| (w.clone(), b.state().name()))
            .collect()
    }

    /// Serializable snapshot of the bank's runtime state (the
    /// configuration is not included: the restarted controller re-installs
    /// it). Deterministic: breakers iterate in workload order.
    pub fn checkpoint(&self) -> BreakerBankCheckpoint {
        BreakerBankCheckpoint {
            breakers: self
                .map
                .iter()
                .map(|(w, b)| {
                    (
                        w.clone(),
                        BreakerCheckpoint {
                            state: b.state.name().to_string(),
                            window: b.window.iter().copied().collect(),
                            opened_at: b.opened_at,
                            probes_in_flight: b.probes_in_flight,
                            probe_successes: b.probe_successes,
                        },
                    )
                })
                .collect(),
            pending_transitions: self
                .pending_transitions
                .iter()
                .map(|(w, from, to)| (w.clone(), from.to_string(), to.to_string()))
                .collect(),
            transitions: self.transitions,
        }
    }

    /// Replace the bank's runtime state with a checkpointed one, keeping
    /// the current configuration.
    pub fn restore(&mut self, ckpt: &BreakerBankCheckpoint) {
        self.map = ckpt
            .breakers
            .iter()
            .map(|(w, c)| {
                (
                    w.clone(),
                    CircuitBreaker {
                        state: BreakerState::from_name(&c.state),
                        window: c.window.iter().copied().collect(),
                        opened_at: c.opened_at,
                        probes_in_flight: c.probes_in_flight,
                        probe_successes: c.probe_successes,
                    },
                )
            })
            .collect();
        self.pending_transitions = ckpt
            .pending_transitions
            .iter()
            .map(|(w, from, to)| {
                (
                    w.clone(),
                    BreakerState::from_name(from).name(),
                    BreakerState::from_name(to).name(),
                )
            })
            .collect();
        self.transitions = ckpt.transitions;
    }
}

/// Serializable runtime state of one [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerCheckpoint {
    /// State name (`"closed"`, `"open"`, `"half_open"`).
    pub state: String,
    /// The outcome window, oldest first.
    pub window: Vec<bool>,
    /// When the breaker last tripped.
    pub opened_at: SimTime,
    /// Probes currently consuming half-open quota.
    pub probes_in_flight: u32,
    /// Probe successes since going half-open.
    pub probe_successes: u32,
}

/// Serializable runtime state of a [`BreakerBank`], including transitions
/// observed but not yet published (the feed records during event delivery
/// and the exec-control stage drains later — a crash can land in between).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BreakerBankCheckpoint {
    /// Per-workload breaker state.
    pub breakers: BTreeMap<String, BreakerCheckpoint>,
    /// Transitions recorded but not yet drained for publication.
    pub pending_transitions: Vec<(String, String, String)>,
    /// Total transitions so far.
    pub transitions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::time::SimDuration;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_outcomes: 4,
            cooldown_secs: 2.0,
            probe_quota: 2,
            probe_successes: 2,
        }
    }

    #[test]
    fn opens_on_failure_rate_and_recovers_via_probes() {
        let mut bank = BreakerBank::new(Some(cfg()));
        let t0 = SimTime::ZERO;
        // Not enough samples yet.
        bank.record("oltp", false, t0);
        bank.record("oltp", false, t0);
        assert_eq!(bank.state("oltp"), BreakerState::Closed);
        assert!(bank.allow("oltp"));
        // Cross min_outcomes with >= 50% failures -> open.
        bank.record("oltp", true, t0);
        bank.record("oltp", false, t0);
        assert_eq!(bank.state("oltp"), BreakerState::Open);
        assert!(!bank.allow("oltp"), "open breaker holds dispatches");
        assert!(bank.any_open());
        // Cooldown elapses -> half-open with a probe quota.
        let later = t0 + SimDuration::from_secs_f64(2.5);
        bank.poll(later);
        assert_eq!(bank.state("oltp"), BreakerState::HalfOpen);
        assert!(bank.allow("oltp"));
        assert!(bank.allow("oltp"));
        assert!(!bank.allow("oltp"), "probe quota exhausted");
        // Two probe successes close it.
        bank.record("oltp", true, later);
        bank.record("oltp", true, later);
        assert_eq!(bank.state("oltp"), BreakerState::Closed);
        let transitions = bank.take_transitions();
        assert_eq!(
            transitions
                .iter()
                .map(|(_, from, to)| (*from, *to))
                .collect::<Vec<_>>(),
            vec![
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]
        );
        assert_eq!(bank.transitions(), 3);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut bank = BreakerBank::new(Some(cfg()));
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            bank.record("bi", false, t0);
        }
        assert_eq!(bank.state("bi"), BreakerState::Open);
        bank.poll(t0 + SimDuration::from_secs_f64(3.0));
        assert_eq!(bank.state("bi"), BreakerState::HalfOpen);
        assert!(bank.allow("bi"));
        bank.record("bi", false, t0 + SimDuration::from_secs_f64(3.0));
        assert_eq!(
            bank.state("bi"),
            BreakerState::Open,
            "probe failure re-trips"
        );
    }

    #[test]
    fn checkpoint_round_trips_mid_episode() {
        let mut bank = BreakerBank::new(Some(cfg()));
        for _ in 0..4 {
            bank.record("bi", false, SimTime(5));
        }
        bank.poll(SimTime(2_500_000)); // cooldown elapsed -> half-open
        assert!(bank.allow("bi"), "one probe in flight");
        let ckpt = bank.checkpoint();
        assert_eq!(
            ckpt.pending_transitions.len(),
            2,
            "undrained transitions survive the checkpoint"
        );
        let mut restored = BreakerBank::new(Some(cfg()));
        restored.restore(&ckpt);
        assert_eq!(restored.state("bi"), BreakerState::HalfOpen);
        assert_eq!(restored.checkpoint(), ckpt, "round trip is lossless");
        // The restored bank continues the probe episode identically.
        bank.record("bi", true, SimTime(2_600_000));
        restored.record("bi", true, SimTime(2_600_000));
        assert!(bank.allow("bi"), "second probe in flight");
        assert!(restored.allow("bi"));
        bank.record("bi", true, SimTime(2_700_000));
        restored.record("bi", true, SimTime(2_700_000));
        assert_eq!(bank.state("bi"), BreakerState::Closed);
        assert_eq!(bank.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn half_open_straggler_failure_does_not_rearm_cooldown() {
        let mut bank = BreakerBank::new(Some(cfg()));
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            bank.record("bi", false, t0);
        }
        assert_eq!(bank.state("bi"), BreakerState::Open);
        let probing = t0 + SimDuration::from_secs_f64(2.5);
        bank.poll(probing);
        assert_eq!(bank.state("bi"), BreakerState::HalfOpen);
        // A straggler dispatched before the trip fails now, with no probe
        // in flight: it must not re-trip (which would restart the full
        // cooldown debounce a second time).
        bank.record("bi", false, probing);
        assert_eq!(
            bank.state("bi"),
            BreakerState::HalfOpen,
            "straggler outcome is not a probe verdict"
        );
        // Straggler successes are equally ignored — they must not close
        // the breaker without a real probe round trip.
        bank.record("bi", true, probing);
        bank.record("bi", true, probing);
        assert_eq!(bank.state("bi"), BreakerState::HalfOpen);
        // A genuine probe failure still re-trips exactly once.
        assert!(bank.allow("bi"));
        bank.record("bi", false, probing);
        assert_eq!(bank.state("bi"), BreakerState::Open);
        assert_eq!(
            bank.transitions(),
            3,
            "closed->open, open->half, half->open"
        );
    }

    #[test]
    fn disabled_bank_is_inert() {
        let mut bank = BreakerBank::new(None);
        for _ in 0..100 {
            bank.record("oltp", false, SimTime::ZERO);
        }
        assert!(bank.allow("oltp"));
        assert_eq!(bank.state("oltp"), BreakerState::Closed);
        assert!(!bank.enabled());
        assert_eq!(bank.transitions(), 0);
    }
}
