//! The runaway-query watchdog: poison quarantine.
//!
//! A *poison* request is one that repeatedly trips the kill path — a
//! timeout kill, a controller kill, a kill-and-resubmit — burning engine
//! work and retry budget on every lap. The paper's progress-guided
//! cancellation decides *when* to kill a long-runner but leaves open what
//! to do when the same request keeps coming back; retry budgets alone
//! don't close the loop because a controller crash resets them.
//!
//! The watchdog counts kill *strikes* per request id. At the configured
//! threshold the request is quarantined: its pending retries are dropped,
//! re-arrivals are admission-rejected (a distinct
//! [`WlmEvent::QuarantineRejected`](crate::events::WlmEvent) so dashboards
//! can tell a quarantine rejection from an ordinary shed), and — unlike
//! retry budgets — the list rides the controller checkpoint, so a poison
//! query cannot launder its history through a crash-restart.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wlm_workload::request::RequestId;

/// Watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// Kill strikes a request may accumulate before it is quarantined.
    pub kill_threshold: u32,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig { kill_threshold: 3 }
    }
}

/// The quarantine list: per-request kill strikes plus the requests that
/// crossed the threshold. Serializable so it survives controller restarts
/// inside the [`ControllerState`](crate::manager::ControllerState)
/// checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuarantineList {
    /// Kill strikes per request id (pruned when a request is quarantined:
    /// the verdict is final, the count no longer matters).
    strikes: BTreeMap<RequestId, u32>,
    /// Quarantined requests and the workload they belonged to.
    quarantined: BTreeMap<RequestId, String>,
    /// Requests turned away because they were quarantined.
    rejections: u64,
}

impl QuarantineList {
    /// Record one kill strike against `id`. Returns the strike count if
    /// this strike crossed the threshold (i.e. the request was *newly*
    /// quarantined), `None` otherwise.
    pub fn note_kill(&mut self, id: RequestId, workload: &str, threshold: u32) -> Option<u32> {
        if self.quarantined.contains_key(&id) {
            return None;
        }
        let strikes = self.strikes.entry(id).or_insert(0);
        *strikes += 1;
        if *strikes >= threshold.max(1) {
            let strikes = *strikes;
            self.strikes.remove(&id);
            self.quarantined.insert(id, workload.to_string());
            Some(strikes)
        } else {
            None
        }
    }

    /// Whether `id` is quarantined.
    pub fn is_quarantined(&self, id: RequestId) -> bool {
        self.quarantined.contains_key(&id)
    }

    /// Count one rejected re-entry attempt of a quarantined request.
    pub fn note_rejection(&mut self) {
        self.rejections += 1;
    }

    /// Re-entry attempts turned away so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Requests currently quarantined.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantines_at_the_threshold_and_holds() {
        let mut q = QuarantineList::default();
        let id = RequestId(7);
        assert_eq!(q.note_kill(id, "adhoc", 3), None);
        assert_eq!(q.note_kill(id, "adhoc", 3), None);
        assert!(!q.is_quarantined(id));
        assert_eq!(q.note_kill(id, "adhoc", 3), Some(3), "third strike");
        assert!(q.is_quarantined(id));
        assert_eq!(q.len(), 1);
        // Further strikes don't re-announce.
        assert_eq!(q.note_kill(id, "adhoc", 3), None);
        q.note_rejection();
        assert_eq!(q.rejections(), 1);
    }

    #[test]
    fn survives_a_serde_round_trip() {
        let mut q = QuarantineList::default();
        q.note_kill(RequestId(1), "poison", 1);
        q.note_kill(RequestId(2), "poison", 3);
        q.note_rejection();
        let bytes = serde_json::to_vec(&q).expect("serializes");
        let back: QuarantineList = serde_json::from_slice(&bytes).expect("deserializes");
        assert_eq!(back, q);
        assert!(back.is_quarantined(RequestId(1)));
        assert!(
            !back.is_quarantined(RequestId(2)),
            "strikes alone don't quarantine"
        );
    }
}
