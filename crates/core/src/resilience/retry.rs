//! Retry budgets with exponential backoff and deterministic jitter.
//!
//! A killed or timed-out query is not necessarily lost: within its
//! workload's attempt budget it re-enters the wait queue after a backoff
//! that doubles per attempt. The jitter that de-synchronizes retries is
//! *deterministic* — a hash of `(seed, request id, attempt)` — so a run
//! with a fixed seed replays byte-identically, which the chaos determinism
//! tests rely on.

use serde::Serialize;
use wlm_dbsim::time::SimDuration;
use wlm_workload::request::RequestId;

/// Retry policy for one workload (or the whole system).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Maximum retry attempts per request beyond its first run.
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_secs: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_secs: f64,
    /// Backoff growth per attempt (2.0 = doubling).
    pub multiplier: f64,
    /// Jitter as a fraction of the backoff (0.2 = ±20%).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 0.25,
            max_backoff_secs: 4.0,
            multiplier: 2.0,
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// A generous budget with fast initial backoff — suits short
    /// interactive queries that should survive a fault window.
    pub fn aggressive() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_secs: 0.25,
            max_backoff_secs: 4.0,
            multiplier: 2.0,
            jitter_frac: 0.2,
        }
    }

    /// The backoff before retry number `attempt` (1-based) of `request`,
    /// jittered deterministically from `seed`.
    pub fn backoff(&self, attempt: u32, seed: u64, request: RequestId) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(30);
        let raw = self.base_backoff_secs * self.multiplier.powi(exp as i32);
        let capped = raw.min(self.max_backoff_secs).max(0.0);
        // Map a mixed hash into [1 - jitter, 1 + jitter].
        let h = mix64(seed ^ request.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let jitter = 1.0 + self.jitter_frac.clamp(0.0, 1.0) * (2.0 * unit - 1.0);
        SimDuration::from_secs_f64((capped * jitter).max(0.0))
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..Default::default()
        };
        let b1 = p.backoff(1, 0, RequestId(1)).as_secs_f64();
        let b2 = p.backoff(2, 0, RequestId(1)).as_secs_f64();
        let b3 = p.backoff(3, 0, RequestId(1)).as_secs_f64();
        let b9 = p.backoff(9, 0, RequestId(1)).as_secs_f64();
        assert!((b1 - 0.25).abs() < 1e-9);
        assert!((b2 - 0.5).abs() < 1e-9);
        assert!((b3 - 1.0).abs() < 1e-9);
        assert!((b9 - 4.0).abs() < 1e-9, "capped at max_backoff: {b9}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.backoff(2, 42, RequestId(7));
        let b = p.backoff(2, 42, RequestId(7));
        assert_eq!(a, b, "same inputs, same backoff");
        let c = p.backoff(2, 43, RequestId(7));
        let base = 0.5;
        for d in [a, c] {
            let secs = d.as_secs_f64();
            assert!(
                (base * 0.8..=base * 1.2).contains(&secs),
                "jitter stays within ±20%: {secs}"
            );
        }
        // Different requests de-synchronize.
        let spread: Vec<u64> = (0..16)
            .map(|i| p.backoff(2, 42, RequestId(i)).as_micros())
            .collect();
        let distinct: std::collections::BTreeSet<_> = spread.iter().collect();
        assert!(distinct.len() > 8, "jitter spreads retries: {spread:?}");
    }
}
