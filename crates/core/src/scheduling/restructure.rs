//! Query restructuring (Bruno, Narasayya & Ramamurthy, PVLDB'10 "Slicing
//! Long-Running Queries"; Meng, Bird, Martin & Powley, CASCON'07).
//!
//! "Query restructuring techniques decompose a query into a set of small
//! queries ... a set of decomposed queries can then be put in a queue and
//! scheduled individually. In releasing these queries for execution, no
//! short queries will be stuck behind large queries." [`slice_spec`]
//! decomposes a plan into sub-plans whose results compose to the original
//! (each operator's work is partitioned; pieces execute in order), and
//! [`Restructurer`] decides which requests to slice and into how many
//! pieces. The manager dispatches piece *i+1* when piece *i* completes and
//! attributes the original arrival time to the final piece, so end-to-end
//! latency accounting is unchanged.

use crate::api::ManagedRequest;
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_dbsim::plan::{Plan, QuerySpec};

/// Slice a query into `pieces` sub-queries of roughly equal work. Returns
/// the original spec untouched when `pieces <= 1` or the plan is empty.
/// Lock-carrying (write) specs are never sliced: splitting a transaction
/// would change its atomicity.
pub fn slice_spec(spec: &QuerySpec, pieces: usize) -> Vec<QuerySpec> {
    if pieces <= 1 || spec.plan.ops.is_empty() || !spec.write_keys.is_empty() {
        return vec![spec.clone()];
    }
    let mut slices: Vec<QuerySpec> = (0..pieces)
        .map(|_| QuerySpec {
            plan: Plan { ops: Vec::new() },
            ..spec.clone()
        })
        .collect();
    for op in &spec.plan.ops {
        for (slice, part) in slices.iter_mut().zip(op.split(pieces)) {
            slice.plan.ops.push(part);
        }
    }
    // Pieces after the first touch data the first piece pulled in, so give
    // them the same working set but label them as continuations.
    for (i, s) in slices.iter_mut().enumerate() {
        s.label = format!("{}#{}", spec.label, i + 1);
    }
    slices
}

/// Policy for when and how much to slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Restructurer {
    /// Requests with estimated cost above this get sliced, timerons.
    pub slice_threshold_timerons: f64,
    /// Target work per piece, timerons; piece count is `ceil(cost/target)`.
    pub target_piece_timerons: f64,
    /// Upper bound on pieces per query.
    pub max_pieces: usize,
}

impl Default for Restructurer {
    fn default() -> Self {
        Restructurer {
            slice_threshold_timerons: 10_000_000.0, // ~10s of work
            target_piece_timerons: 5_000_000.0,
            max_pieces: 16,
        }
    }
}

impl Restructurer {
    /// How many pieces this request should become (1 = leave whole).
    pub fn pieces_for(&self, req: &ManagedRequest) -> usize {
        if req.estimate.timerons <= self.slice_threshold_timerons
            || !req.request.spec.write_keys.is_empty()
        {
            return 1;
        }
        ((req.estimate.timerons / self.target_piece_timerons).ceil() as usize)
            .clamp(2, self.max_pieces)
    }

    /// Slice a request's spec per this policy.
    pub fn restructure(&self, req: &ManagedRequest) -> Vec<QuerySpec> {
        slice_spec(&req.request.spec, self.pieces_for(req))
    }
}

impl Classified for Restructurer {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Query Restructuring")
    }

    fn technique_name(&self) -> &'static str {
        "Query Slicing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::managed;
    use wlm_dbsim::plan::PlanBuilder;
    use wlm_workload::request::Importance;

    #[test]
    fn slices_preserve_total_work() {
        let spec = PlanBuilder::table_scan(1_000_000)
            .filter(0.5)
            .aggregate(10)
            .build()
            .into_spec()
            .labeled("bi");
        let pieces = slice_spec(&spec, 4);
        assert_eq!(pieces.len(), 4);
        let total: u64 = pieces.iter().map(|p| p.plan.total_work()).sum();
        assert_eq!(total, spec.plan.total_work());
        // Pieces are roughly equal.
        let works: Vec<u64> = pieces.iter().map(|p| p.plan.total_work()).collect();
        let max = *works.iter().max().unwrap() as f64;
        let min = *works.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uneven pieces: {works:?}");
        assert_eq!(pieces[0].label, "bi#1");
    }

    #[test]
    fn one_piece_and_writes_are_untouched() {
        let spec = PlanBuilder::table_scan(1000).build().into_spec();
        assert_eq!(slice_spec(&spec, 1).len(), 1);
        let write = spec.clone().with_write_keys(vec![1]);
        assert_eq!(slice_spec(&write, 8).len(), 1, "transactions stay atomic");
    }

    #[test]
    fn policy_slices_only_big_queries() {
        let r = Restructurer::default();
        let small = managed("bi", 100_000, Importance::Low);
        assert_eq!(r.pieces_for(&small), 1);
        let big = managed("bi", 200_000_000, Importance::Low); // ~280M timerons
        let n = r.pieces_for(&big);
        assert!(n >= 2 && n <= r.max_pieces, "pieces {n}");
        assert_eq!(r.restructure(&big).len(), n);
    }

    #[test]
    fn taxonomy_is_query_restructuring() {
        assert_eq!(
            Restructurer::default().taxonomy().subclass,
            "Query Restructuring"
        );
    }
}
