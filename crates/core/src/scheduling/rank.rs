//! Rank-function scheduling (Gupta, Mehta, Wang & Dayal, EDBT'09).
//!
//! "Fair, Effective, Efficient and Differentiated" scheduling: every queued
//! query gets a rank combining its business priority (differentiation), its
//! time in the queue (fairness — long waiters age upward, so nothing
//! starves) and its estimated cost (efficiency — short work first improves
//! mean flow time). The scheduler dispatches in descending rank under an
//! MPL cap.

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_dbsim::time::SimTime;

/// Weights of the rank components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankWeights {
    /// Weight of business importance.
    pub priority: f64,
    /// Weight of queue-wait aging (per minute waited).
    pub wait: f64,
    /// Weight of (log) estimated cost, subtracted — cheap first.
    pub cost: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights {
            priority: 3.0,
            wait: 1.0,
            cost: 1.0,
        }
    }
}

/// The rank-function scheduler.
#[derive(Debug, Clone, Copy)]
pub struct RankScheduler {
    /// Dispatch while fewer than this many queries run.
    pub max_mpl: usize,
    /// Rank component weights.
    pub weights: RankWeights,
}

impl RankScheduler {
    /// New scheduler with default weights.
    pub fn new(max_mpl: usize) -> Self {
        RankScheduler {
            max_mpl,
            weights: RankWeights::default(),
        }
    }

    /// The rank of one queued request at time `now`. Higher dispatches
    /// sooner.
    pub fn rank(&self, req: &ManagedRequest, now: SimTime) -> f64 {
        let w = &self.weights;
        let waited_min = now.since(req.request.arrival).as_secs_f64() / 60.0;
        let log_cost = req.estimate.timerons.max(1.0).log10();
        w.priority * req.importance.default_weight() + w.wait * waited_min - w.cost * log_cost
    }
}

impl Classified for RankScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Rank Function (FEED)"
    }
}

impl Scheduler for RankScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        let slots = self.max_mpl.saturating_sub(snap.running);
        if slots == 0 || queue.is_empty() {
            return Vec::new();
        }
        let mut ranked: Vec<(f64, usize)> = queue
            .iter()
            .enumerate()
            .map(|(i, r)| (self.rank(r, snap.now), i))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut take: Vec<usize> = ranked.into_iter().take(slots).map(|(_, i)| i).collect();
        take.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
        let mut out: Vec<ManagedRequest> = take.into_iter().map(|i| queue.remove(i)).collect();
        out.reverse(); // restore rank order
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_dbsim::time::SimDuration;
    use wlm_workload::request::Importance;

    #[test]
    fn importance_dominates_at_equal_cost() {
        let mut s = RankScheduler::new(1);
        let mut q = vec![
            managed("low", 1000, Importance::Low),
            managed("high", 1000, Importance::High),
        ];
        let picked = s.select(&mut q, &snapshot(0, 0));
        assert_eq!(picked[0].workload, "high");
    }

    #[test]
    fn cheap_queries_outrank_expensive_at_equal_priority() {
        let mut s = RankScheduler::new(1);
        let mut q = vec![
            managed("huge", 50_000_000, Importance::Medium),
            managed("tiny", 1_000, Importance::Medium),
        ];
        let picked = s.select(&mut q, &snapshot(0, 0));
        assert_eq!(picked[0].workload, "tiny");
    }

    #[test]
    fn waiting_ages_a_query_past_priority() {
        let s = RankScheduler::new(1);
        let fresh_high = managed("high", 1000, Importance::High);
        let mut stale_low = managed("low", 1000, Importance::Low);
        stale_low.request.arrival = SimTime::ZERO;
        let now = SimTime::ZERO + SimDuration::from_secs(30 * 60); // 30 min
        let mut fresh = fresh_high.clone();
        fresh.request.arrival = now;
        assert!(
            s.rank(&stale_low, now) > s.rank(&fresh, now),
            "30 minutes of waiting must beat the priority gap"
        );
    }

    #[test]
    fn respects_slots_and_removes_from_queue() {
        let mut s = RankScheduler::new(3);
        let mut q = vec![
            managed("a", 100, Importance::Medium),
            managed("b", 100, Importance::Medium),
            managed("c", 100, Importance::Medium),
        ];
        let picked = s.select(&mut q, &snapshot(2, 0));
        assert_eq!(picked.len(), 1);
        assert_eq!(q.len(), 2);
    }
}
