//! Scheduling (taxonomy class 3).
//!
//! "Request scheduling determines the execution order of requests in batch
//! workloads or admitted requests in wait queues and decides when the
//! requests can be sent to the database execution engine." Two subclasses,
//! as in Figure 1:
//!
//! * **Queue management** — [`queues`] (FCFS and strict-priority),
//!   [`weighted`] (weighted fair queueing),
//!   [`rank`] (Gupta et al.'s rank-function scheduler),
//!   [`utility_sched`] (Niu et al.'s cost-limit/utility scheduler),
//!   [`batch_lp`] (Ahmad et al.-style interaction-aware batch ordering) and
//!   [`mpl_feedback`] (Schroeder et al.'s feedback-controlled MPL);
//! * **Query restructuring** — [`restructure`] (Bruno/Meng-style slicing of
//!   large plans into independently schedulable pieces).

pub mod batch_lp;
pub mod mpl_feedback;
pub mod queues;
pub mod rank;
pub mod restructure;
pub mod utility_sched;
pub mod weighted;

pub use batch_lp::BatchScheduler;
pub use mpl_feedback::MplFeedbackScheduler;
pub use queues::{FcfsScheduler, PriorityScheduler};
pub use rank::RankScheduler;
pub use restructure::{slice_spec, Restructurer};
pub use utility_sched::{ServiceClassConfig, UtilityScheduler};
pub use weighted::WeightedFairScheduler;
