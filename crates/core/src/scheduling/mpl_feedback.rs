//! Feedback-controlled multiprogramming level (Schroeder, Harchol-Balter,
//! Iyengar, Nahum & Wierman, ICDE'06).
//!
//! "How to determine a good multi-programming level for external
//! scheduling": keep a small, feedback-tuned number of queries inside the
//! DBMS and queue the rest outside. The controller seeds its MPL from a
//! closed queueing-network (MVA) prediction when demands are known, then
//! adapts it each metrics interval with an integral controller on the
//! observed response time of a target workload — dynamic where static MPLs
//! "can result in the database server running in an under-loaded or
//! over-loaded state" as the mix shifts.

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_control::queueing::ClosedNetwork;

/// The feedback-MPL scheduler (FCFS dispatch under a dynamic MPL).
#[derive(Debug, Clone)]
pub struct MplFeedbackScheduler {
    mpl: f64,
    /// Smallest MPL it will fall to.
    pub min_mpl: f64,
    /// Largest MPL it will climb to.
    pub max_mpl: f64,
    /// Workload whose response time is the control target.
    pub target_workload: String,
    /// Response-time setpoint, seconds.
    pub target_secs: f64,
    /// Integral gain (MPL change per relative error per interval).
    pub gain: f64,
    last_seen_response: f64,
}

impl MplFeedbackScheduler {
    /// New controller starting at `initial_mpl`, steering `workload` toward
    /// `target_secs`.
    pub fn new(initial_mpl: usize, workload: &str, target_secs: f64) -> Self {
        MplFeedbackScheduler {
            mpl: initial_mpl as f64,
            min_mpl: 1.0,
            max_mpl: 256.0,
            target_workload: workload.into(),
            target_secs,
            gain: 1.0,
            last_seen_response: -1.0,
        }
    }

    /// Seed the starting MPL from an MVA model of the workload (the
    /// "analytical models" the paper pairs with feedback controllers).
    pub fn seeded_from_model(workload: &str, target_secs: f64, model: &ClosedNetwork) -> Self {
        let seed = model.mpl_for_efficiency(128, 0.9);
        Self::new(seed as usize, workload, target_secs)
    }

    /// Current MPL.
    pub fn current_mpl(&self) -> usize {
        self.mpl.round().max(1.0) as usize
    }

    fn adapt(&mut self, snap: &SystemSnapshot) {
        let Some(achieved) = snap.recent_response_of(&self.target_workload) else {
            return;
        };
        if achieved == self.last_seen_response {
            return; // same interval
        }
        self.last_seen_response = achieved;
        // Positive error (meeting the goal with room) grows the MPL to buy
        // throughput; negative error shrinks it to protect response time.
        let error = (self.target_secs - achieved) / self.target_secs.max(1e-9);
        self.mpl =
            (self.mpl + self.gain * error.clamp(-1.0, 1.0)).clamp(self.min_mpl, self.max_mpl);
    }
}

impl Classified for MplFeedbackScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Feedback-controlled MPL"
    }
}

impl Scheduler for MplFeedbackScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        self.adapt(snap);
        let slots = self.current_mpl().saturating_sub(snap.running);
        let take = slots.min(queue.len());
        queue.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn snap_with_resp(running: usize, resp: f64) -> crate::api::SystemSnapshot {
        let mut s = snapshot(running, 0);
        s.recent_response_by_workload.insert("oltp".into(), resp);
        s
    }

    #[test]
    fn mpl_shrinks_when_goal_violated() {
        let mut s = MplFeedbackScheduler::new(10, "oltp", 1.0);
        let mut q = Vec::new();
        s.select(&mut q, &snap_with_resp(0, 3.0));
        assert!(s.current_mpl() < 10);
    }

    #[test]
    fn mpl_grows_when_goal_comfortably_met() {
        let mut s = MplFeedbackScheduler::new(10, "oltp", 1.0);
        let mut q = Vec::new();
        s.select(&mut q, &snap_with_resp(0, 0.1));
        s.select(&mut q, &snap_with_resp(0, 0.11));
        assert!(s.current_mpl() > 10);
    }

    #[test]
    fn adapts_once_per_interval_and_dispatches_fcfs() {
        let mut s = MplFeedbackScheduler::new(3, "oltp", 1.0);
        let snap = snap_with_resp(1, 5.0);
        let mut q = vec![
            managed("a", 10, Importance::Medium),
            managed("b", 10, Importance::Medium),
            managed("c", 10, Importance::Medium),
        ];
        let picked = s.select(&mut q, &snap);
        let mpl_after = s.current_mpl();
        assert_eq!(picked.len(), mpl_after.saturating_sub(1).min(3));
        // Same snapshot again: no further adaptation.
        s.select(&mut q, &snap);
        assert_eq!(s.current_mpl(), mpl_after);
    }

    #[test]
    fn model_seeding_lands_near_the_knee() {
        let model = ClosedNetwork::new(vec![0.05], 1.0);
        let s = MplFeedbackScheduler::seeded_from_model("oltp", 1.0, &model);
        assert!((15..=25).contains(&s.current_mpl()), "{}", s.current_mpl());
    }

    #[test]
    fn unobserved_workload_holds_mpl() {
        let mut s = MplFeedbackScheduler::new(7, "oltp", 1.0);
        let mut q = Vec::new();
        s.select(&mut q, &snapshot(0, 0));
        assert_eq!(s.current_mpl(), 7);
    }
}
