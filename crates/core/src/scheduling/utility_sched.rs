//! Utility-driven cost-limit scheduling (Niu, Martin, Powley, Horman &
//! Bird — CASCON'06 / JDM'09).
//!
//! Niu's query scheduler manages "the execution order of multiple classes
//! of queries in order to achieve the workload's service level objectives".
//! Mechanics reproduced here:
//!
//! * every service class has a **cost limit** — "the allowable total cost of
//!   all concurrently running queries belonging to the service class";
//!   queued queries are released while their class is under its limit;
//! * a **workload detection process** watches recent per-class performance
//!   against goals;
//! * a **workload control process** periodically re-plans the cost limits,
//!   searching for the division of the database's total cost capacity that
//!   maximises an importance-weighted utility objective, with a simple
//!   analytical model (response grows with allocated load share) predicting
//!   each candidate plan's effect.

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wlm_control::utility::sigmoid_utility;
use wlm_dbsim::time::{SimDuration, SimTime};

/// Configuration of one scheduled service class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceClassConfig {
    /// Workload name this class covers.
    pub workload: String,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// Business-importance weight in the objective function.
    pub importance_weight: f64,
}

/// The utility scheduler.
#[derive(Debug, Clone)]
pub struct UtilityScheduler {
    /// The service classes under management.
    pub classes: Vec<ServiceClassConfig>,
    /// The database system's total acceptable concurrent estimated cost
    /// (timerons) — its "currently acceptable cost limits".
    pub total_cost_budget: f64,
    /// Re-planning period.
    pub replan_every: SimDuration,
    /// Share of the budget reserved for workloads outside any class.
    pub best_effort_share: f64,
    limits: BTreeMap<String, f64>,
    last_replan: SimTime,
}

impl UtilityScheduler {
    /// New scheduler; the budget starts evenly divided.
    pub fn new(classes: Vec<ServiceClassConfig>, total_cost_budget: f64) -> Self {
        let n = classes.len().max(1) as f64;
        let best_effort_share = 0.1;
        let per = total_cost_budget * (1.0 - best_effort_share) / n;
        let limits = classes.iter().map(|c| (c.workload.clone(), per)).collect();
        UtilityScheduler {
            classes,
            total_cost_budget,
            replan_every: SimDuration::from_secs(5),
            best_effort_share,
            limits,
            last_replan: SimTime::ZERO,
        }
    }

    /// Current cost limit of a class (the best-effort pool for unknowns).
    pub fn limit_of(&self, workload: &str) -> f64 {
        self.limits
            .get(workload)
            .copied()
            .unwrap_or(self.total_cost_budget * self.best_effort_share)
    }

    /// The workload control process: re-divide the budget. Classes missing
    /// their goals get more of the budget, weighted by importance; classes
    /// comfortably under their goals cede budget. The per-class "urgency" is
    /// the predicted goal violation `achieved / goal`, clamped so one
    /// outlier cannot take everything.
    fn replan(&mut self, snap: &SystemSnapshot) {
        let mut scores: Vec<(String, f64)> = Vec::with_capacity(self.classes.len());
        for class in &self.classes {
            let achieved = snap
                .recent_response_of(&class.workload)
                .unwrap_or(class.goal_secs);
            let urgency = (achieved / class.goal_secs.max(1e-9)).clamp(0.25, 4.0);
            scores.push((class.workload.clone(), class.importance_weight * urgency));
        }
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return;
        }
        let plan_budget = self.total_cost_budget * (1.0 - self.best_effort_share);
        for (workload, score) in scores {
            self.limits.insert(workload, plan_budget * score / total);
        }
    }

    /// The objective function value of the current performance — exposed for
    /// experiments ("an objective function ... is used to measure if a
    /// scheduling plan is achieved").
    pub fn objective(&self, snap: &SystemSnapshot) -> f64 {
        self.classes
            .iter()
            .map(|c| {
                let achieved = snap.recent_response_of(&c.workload).unwrap_or(0.0);
                c.importance_weight * sigmoid_utility(achieved, c.goal_secs, 6.0)
            })
            .sum()
    }
}

impl Classified for UtilityScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Utility/Cost-Limit Scheduler"
    }
}

impl Scheduler for UtilityScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        if snap.now.since(self.last_replan) >= self.replan_every {
            self.last_replan = snap.now;
            self.replan(snap);
        }
        // Track budget consumption as we release queries this cycle.
        let mut used: BTreeMap<String, f64> = snap.running_cost_by_workload.clone();
        let mut picked = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            let workload = queue[i].workload.clone();
            let cost = queue[i].estimate.timerons;
            let used_now = used.get(&workload).copied().unwrap_or(0.0);
            let limit = self.limit_of(&workload);
            // A class with an empty slate may always run one query, however
            // big — otherwise a query costing more than the whole limit
            // would starve forever.
            if used_now + cost <= limit || used_now == 0.0 {
                *used.entry(workload).or_insert(0.0) += cost;
                picked.push(queue.remove(i));
            } else {
                i += 1;
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn classes() -> Vec<ServiceClassConfig> {
        vec![
            ServiceClassConfig {
                workload: "oltp".into(),
                goal_secs: 1.0,
                importance_weight: 8.0,
            },
            ServiceClassConfig {
                workload: "bi".into(),
                goal_secs: 60.0,
                importance_weight: 2.0,
            },
        ]
    }

    #[test]
    fn releases_within_cost_limits() {
        let mut s = UtilityScheduler::new(classes(), 1_000_000.0);
        // oltp limit = bi limit = 450k initially.
        let mut q = vec![
            managed("bi", 1_000_000, Importance::Medium), // ~1.2M+ timerons
            managed("bi", 1_000_000, Importance::Medium),
            managed("oltp", 100, Importance::High),
        ];
        let mut snap = snapshot(0, 3);
        snap.running_cost_by_workload.insert("bi".into(), 0.0);
        let picked = s.select(&mut q, &snap);
        // First bi query admitted (empty slate rule), second blocked by the
        // limit; oltp fits trivially.
        let labels: Vec<&str> = picked.iter().map(|r| r.workload.as_str()).collect();
        assert!(labels.contains(&"bi"));
        assert!(labels.contains(&"oltp"));
        assert_eq!(labels.iter().filter(|l| **l == "bi").count(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn replan_shifts_budget_to_violating_important_class() {
        let mut s = UtilityScheduler::new(classes(), 1_000_000.0);
        let before_oltp = s.limit_of("oltp");
        let mut snap = snapshot(0, 0);
        snap.now = SimTime(10_000_000); // past the replan period
                                        // oltp is violating its goal 5x; bi is comfortably fine.
        snap.recent_response_by_workload.insert("oltp".into(), 5.0);
        snap.recent_response_by_workload.insert("bi".into(), 10.0);
        let mut q = Vec::new();
        s.select(&mut q, &snap);
        let after_oltp = s.limit_of("oltp");
        let after_bi = s.limit_of("bi");
        assert!(after_oltp > before_oltp, "violating class gains budget");
        assert!(after_oltp > after_bi * 5.0, "importance*urgency dominates");
    }

    #[test]
    fn unknown_workloads_use_best_effort_pool() {
        let mut s = UtilityScheduler::new(classes(), 1_000_000.0);
        assert!((s.limit_of("mystery") - 100_000.0).abs() < 1.0);
        let mut q = vec![managed("mystery", 1_000, Importance::Low)];
        let picked = s.select(&mut q, &snapshot(0, 1));
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn objective_rewards_meeting_goals() {
        let s = UtilityScheduler::new(classes(), 1_000_000.0);
        let mut good = snapshot(0, 0);
        good.recent_response_by_workload.insert("oltp".into(), 0.2);
        good.recent_response_by_workload.insert("bi".into(), 20.0);
        let mut bad = snapshot(0, 0);
        bad.recent_response_by_workload.insert("oltp".into(), 10.0);
        bad.recent_response_by_workload.insert("bi".into(), 20.0);
        assert!(s.objective(&good) > s.objective(&bad));
    }
}
