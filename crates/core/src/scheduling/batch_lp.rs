//! Interaction-aware batch scheduling (after Ahmad, Aboulnaga, Babu &
//! Munagala, VLDBJ'11).
//!
//! Report-generation batches have no per-query deadlines; what matters is
//! total/mean completion time, and that depends on *query interactions* —
//! which queries run well together. The dominant interaction in the
//! simulated engine (as in real warehouses) is memory pressure: co-running
//! queries whose combined working memory overcommits RAM thrash. The
//! scheduler therefore solves, greedily per dispatch cycle, the
//! linear-programming relaxation's integral cousin: among queued queries,
//! release shortest-first (optimal for mean flow time) subject to the
//! memory capacity constraint and an MPL cap.

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};

/// Memory-aware shortest-first batch scheduler.
#[derive(Debug, Clone, Copy)]
pub struct BatchScheduler {
    /// Dispatch while fewer than this many queries run.
    pub max_mpl: usize,
    /// Fraction of engine memory the schedule may plan to use (headroom for
    /// estimation error).
    pub memory_headroom: f64,
}

impl BatchScheduler {
    /// New scheduler.
    pub fn new(max_mpl: usize) -> Self {
        BatchScheduler {
            max_mpl,
            memory_headroom: 0.9,
        }
    }
}

impl Classified for BatchScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Interaction-aware Batch Ordering"
    }
}

impl Scheduler for BatchScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        let mut slots = self.max_mpl.saturating_sub(snap.running);
        if slots == 0 || queue.is_empty() {
            return Vec::new();
        }
        let mem_capacity = (snap.memory_capacity_mb as f64 * self.memory_headroom) as u64;
        let mut mem_in_use = snap.running_mem_mb;
        // Shortest (estimated) first.
        queue.sort_by(|a, b| a.estimate.timerons.total_cmp(&b.estimate.timerons));
        let mut picked = Vec::new();
        let mut i = 0;
        while i < queue.len() && slots > 0 {
            let mem = queue[i].estimate.mem_mb;
            // A query whose memory alone exceeds capacity may only run on an
            // otherwise empty machine.
            let fits = mem_in_use + mem <= mem_capacity
                || (mem_in_use == 0 && snap.running == 0 && picked.is_empty());
            if fits {
                mem_in_use += mem;
                slots -= 1;
                picked.push(queue.remove(i));
            } else {
                i += 1;
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn snap_with_mem(running: usize, used_mb: u64, cap_mb: u64) -> crate::api::SystemSnapshot {
        let mut s = snapshot(running, 0);
        s.running_mem_mb = used_mb;
        s.memory_capacity_mb = cap_mb;
        s
    }

    #[test]
    fn shortest_first_ordering() {
        let mut s = BatchScheduler::new(2);
        let mut q = vec![
            managed("big", 10_000_000, Importance::Low),
            managed("small", 10_000, Importance::Low),
            managed("mid", 1_000_000, Importance::Low),
        ];
        let picked = s.select(&mut q, &snap_with_mem(0, 0, 100_000));
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].workload, "small");
        assert_eq!(picked[1].workload, "mid");
    }

    #[test]
    fn memory_constraint_blocks_overcommit() {
        let mut s = BatchScheduler::new(10);
        // hash_join gives real mem demands; craft via managed() scans have
        // small mem, so tweak directly.
        let mut a = managed("a", 1_000, Importance::Low);
        a.estimate.mem_mb = 600;
        let mut b = managed("b", 2_000, Importance::Low);
        b.estimate.mem_mb = 600;
        let mut q = vec![a, b];
        // Capacity 1000 * 0.9 = 900: only one fits.
        let picked = s.select(&mut q, &snap_with_mem(0, 0, 1000));
        assert_eq!(picked.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn oversized_query_runs_alone() {
        let mut s = BatchScheduler::new(4);
        let mut huge = managed("huge", 1_000, Importance::Low);
        huge.estimate.mem_mb = 5_000;
        let mut q = vec![huge];
        // Machine busy: must wait.
        let picked = s.select(&mut q, &snap_with_mem(1, 500, 1000));
        assert!(picked.is_empty());
        // Machine empty: may run solo despite exceeding planned capacity.
        let picked = s.select(&mut q, &snap_with_mem(0, 0, 1000));
        assert_eq!(picked.len(), 1);
    }
}
