//! Weighted fair queueing dispatch.
//!
//! Between strict priority (starves the unimportant) and FCFS (ignores
//! importance) sits weighted sharing of *dispatch slots*: each workload
//! receives dispatch opportunities in proportion to a configured weight.
//! The scheduler tracks per-workload virtual dispatch counts and always
//! releases the queued request whose workload has the smallest
//! `dispatched / weight` ratio — a start-time-fair-queueing approximation
//! that cannot starve anyone with a positive weight.

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use std::collections::BTreeMap;

/// Weighted fair queueing over workloads, under a dispatch MPL.
#[derive(Debug, Clone)]
pub struct WeightedFairScheduler {
    /// Dispatch while fewer than this many queries run.
    pub max_mpl: usize,
    /// Dispatch weight per workload; unlisted workloads get
    /// [`Self::default_weight`].
    pub weights: BTreeMap<String, f64>,
    /// Weight of workloads without an entry.
    pub default_weight: f64,
    virtual_dispatched: BTreeMap<String, f64>,
}

impl WeightedFairScheduler {
    /// New scheduler with the given per-workload weights.
    pub fn new(max_mpl: usize, weights: BTreeMap<String, f64>) -> Self {
        WeightedFairScheduler {
            max_mpl,
            weights,
            default_weight: 1.0,
            virtual_dispatched: BTreeMap::new(),
        }
    }

    /// Builder-style weight entry.
    pub fn with_weight(mut self, workload: &str, weight: f64) -> Self {
        self.weights.insert(workload.into(), weight.max(1e-6));
        self
    }

    fn weight_of(&self, workload: &str) -> f64 {
        self.weights
            .get(workload)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1e-6)
    }

    fn finish_tag(&self, workload: &str) -> f64 {
        let dispatched = self
            .virtual_dispatched
            .get(workload)
            .copied()
            .unwrap_or(0.0);
        dispatched / self.weight_of(workload)
    }
}

impl Classified for WeightedFairScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Weighted Fair Queue"
    }
}

impl Scheduler for WeightedFairScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        let mut slots = self.max_mpl.saturating_sub(snap.running);
        let mut picked = Vec::new();
        while slots > 0 && !queue.is_empty() {
            // The queued workload with the smallest virtual finish tag wins;
            // within a workload, arrival order (queue order) is preserved.
            let (idx, workload) = {
                let mut best: Option<(usize, f64)> = None;
                let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
                for (i, req) in queue.iter().enumerate() {
                    if !seen.insert(req.workload.as_str()) {
                        continue; // only each workload's head competes
                    }
                    let tag = self.finish_tag(&req.workload);
                    if best.is_none_or(|(_, t)| tag < t) {
                        best = Some((i, tag));
                    }
                }
                let (i, _) = best.expect("queue non-empty");
                (i, queue[i].workload.clone())
            };
            *self.virtual_dispatched.entry(workload).or_insert(0.0) += 1.0;
            picked.push(queue.remove(idx));
            slots -= 1;
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn scheduler() -> WeightedFairScheduler {
        WeightedFairScheduler::new(4, BTreeMap::new())
            .with_weight("gold", 3.0)
            .with_weight("bronze", 1.0)
    }

    #[test]
    fn dispatch_ratio_follows_weights() {
        let mut s = WeightedFairScheduler::new(1, BTreeMap::new())
            .with_weight("gold", 3.0)
            .with_weight("bronze", 1.0);
        let mut gold_dispatched = 0;
        let mut bronze_dispatched = 0;
        // Always-full backlogs of both workloads, one slot per round.
        for _ in 0..200 {
            let mut q = vec![
                managed("gold", 100, Importance::Medium),
                managed("bronze", 100, Importance::Medium),
            ];
            let picked = s.select(&mut q, &snapshot(0, 2));
            match picked[0].workload.as_str() {
                "gold" => gold_dispatched += 1,
                _ => bronze_dispatched += 1,
            }
        }
        let ratio = gold_dispatched as f64 / bronze_dispatched as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "3:1 weights should give ~3:1 dispatches, got {gold_dispatched}:{bronze_dispatched}"
        );
    }

    #[test]
    fn no_starvation_with_positive_weights() {
        let mut s = WeightedFairScheduler::new(1, BTreeMap::new())
            .with_weight("gold", 100.0)
            .with_weight("bronze", 0.5);
        let mut bronze_seen = false;
        for _ in 0..400 {
            let mut q = vec![
                managed("gold", 100, Importance::Medium),
                managed("bronze", 100, Importance::Medium),
            ];
            if s.select(&mut q, &snapshot(0, 2))[0].workload == "bronze" {
                bronze_seen = true;
            }
        }
        assert!(bronze_seen, "even tiny weights must eventually dispatch");
    }

    #[test]
    fn respects_mpl_and_arrival_order_within_workload() {
        let mut s = scheduler();
        s.max_mpl = 2;
        let mut q = vec![
            managed("gold", 1, Importance::Medium),
            managed("gold", 2, Importance::Medium),
            managed("gold", 3, Importance::Medium),
        ];
        let first_ids: Vec<u64> = {
            let picked = s.select(&mut q, &snapshot(0, 3));
            picked.iter().map(|r| r.request.id.0).collect()
        };
        assert_eq!(first_ids.len(), 2);
        assert!(first_ids[0] < first_ids[1], "arrival order kept");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn unknown_workloads_use_default_weight() {
        let mut s = scheduler();
        s.max_mpl = 1;
        let mut q = vec![managed("mystery", 1, Importance::Low)];
        assert_eq!(s.select(&mut q, &snapshot(0, 1)).len(), 1);
    }
}
